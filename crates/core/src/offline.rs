//! Offline client-to-client messages of the FAUST protocol (Section 6):
//! PROBE, VERSION, and FAILURE.
//!
//! These messages travel on the reliable offline channel, never through
//! the untrusted server. They are nevertheless signed (domain
//! [`SigContext::Offline`]) so that the channel needs no further
//! authentication assumptions; unverifiable messages are silently dropped
//! (they can only be noise — dropping preserves failure-detection
//! accuracy).

use faust_crypto::sig::{SigContext, Signature, Signer, Verifier};
use faust_types::wire::WireError;
use faust_types::{ClientId, Version, Wire};

/// An offline client-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfflineMsg {
    /// "Send me the maximal version you know."
    Probe {
        /// The probing client.
        from: ClientId,
        /// Signature over the message.
        sig: Signature,
    },
    /// The sender's maximal known version `VER_j[max_j]` (not necessarily
    /// committed by the sender itself).
    Version {
        /// The sending client.
        from: ClientId,
        /// The version being shared.
        version: Version,
        /// Signature over the message.
        sig: Signature,
    },
    /// The sender has proof of server misbehaviour; everyone should stop.
    Failure {
        /// The alerting client.
        from: ClientId,
        /// Signature over the message.
        sig: Signature,
    },
}

fn probe_bytes(from: ClientId) -> Vec<u8> {
    let mut out = b"faust-probe:".to_vec();
    out.extend_from_slice(&from.as_u32().to_be_bytes());
    out
}

fn version_bytes(from: ClientId, version: &Version) -> Vec<u8> {
    let mut out = b"faust-version:".to_vec();
    out.extend_from_slice(&from.as_u32().to_be_bytes());
    out.extend_from_slice(&version.signing_bytes());
    out
}

fn failure_bytes(from: ClientId) -> Vec<u8> {
    let mut out = b"faust-failure:".to_vec();
    out.extend_from_slice(&from.as_u32().to_be_bytes());
    out
}

impl OfflineMsg {
    /// Builds a signed PROBE.
    pub fn probe(signer: &impl Signer) -> Self {
        let from = ClientId::new(signer.signer_index());
        OfflineMsg::Probe {
            from,
            sig: signer.sign(SigContext::Offline, &probe_bytes(from)),
        }
    }

    /// Builds a signed VERSION.
    pub fn version(signer: &impl Signer, version: Version) -> Self {
        let from = ClientId::new(signer.signer_index());
        let sig = signer.sign(SigContext::Offline, &version_bytes(from, &version));
        OfflineMsg::Version { from, version, sig }
    }

    /// Builds a signed FAILURE.
    pub fn failure(signer: &impl Signer) -> Self {
        let from = ClientId::new(signer.signer_index());
        OfflineMsg::Failure {
            from,
            sig: signer.sign(SigContext::Offline, &failure_bytes(from)),
        }
    }

    /// The sending client.
    pub fn sender(&self) -> ClientId {
        match self {
            OfflineMsg::Probe { from, .. }
            | OfflineMsg::Version { from, .. }
            | OfflineMsg::Failure { from, .. } => *from,
        }
    }

    /// Verifies the message signature against its claimed sender.
    pub fn verify(&self, registry: &impl Verifier) -> bool {
        match self {
            OfflineMsg::Probe { from, sig } => {
                registry.verify(from.as_u32(), SigContext::Offline, &probe_bytes(*from), sig)
            }
            OfflineMsg::Version { from, version, sig } => registry.verify(
                from.as_u32(),
                SigContext::Offline,
                &version_bytes(*from, version),
                sig,
            ),
            OfflineMsg::Failure { from, sig } => registry.verify(
                from.as_u32(),
                SigContext::Offline,
                &failure_bytes(*from),
                sig,
            ),
        }
    }

    /// Exact wire size in bytes (tag + sender + signature + version
    /// payload if present).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Wire for OfflineMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            OfflineMsg::Probe { from, sig } => {
                out.push(0);
                from.encode_into(out);
                sig.encode_into(out);
            }
            OfflineMsg::Version { from, version, sig } => {
                out.push(1);
                from.encode_into(out);
                version.encode_into(out);
                sig.encode_into(out);
            }
            OfflineMsg::Failure { from, sig } => {
                out.push(2);
                from.encode_into(out);
                sig.encode_into(out);
            }
        }
    }

    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode_from(input)? {
            0 => Ok(OfflineMsg::Probe {
                from: ClientId::decode_from(input)?,
                sig: Signature::decode_from(input)?,
            }),
            1 => Ok(OfflineMsg::Version {
                from: ClientId::decode_from(input)?,
                version: Version::decode_from(input)?,
                sig: Signature::decode_from(input)?,
            }),
            2 => Ok(OfflineMsg::Failure {
                from: ClientId::decode_from(input)?,
                sig: Signature::decode_from(input)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }

    // The simulator calls `size_bytes` (→ this) on every offline send;
    // compute the size arithmetically instead of paying the default
    // encode-and-measure allocation each time.
    fn encoded_len(&self) -> usize {
        // tag + sender + signature (scheme tag + scheme-length bytes).
        let (sig, version) = match self {
            OfflineMsg::Probe { sig, .. } | OfflineMsg::Failure { sig, .. } => (sig, None),
            OfflineMsg::Version { version, sig, .. } => (sig, Some(version)),
        };
        1 + 4 + 1 + sig.as_bytes().len() + version.map_or(0, |v| v.encoded_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_crypto::sig::KeySet;

    #[test]
    fn messages_verify_under_their_sender() {
        let keys = KeySet::generate(2, b"offline");
        let reg = keys.registry();
        let signer = keys.keypair(0).unwrap();
        let msgs = [
            OfflineMsg::probe(signer),
            OfflineMsg::version(signer, Version::initial(2)),
            OfflineMsg::failure(signer),
        ];
        for m in &msgs {
            assert_eq!(m.sender(), ClientId::new(0));
            assert!(m.verify(&reg));
        }
    }

    #[test]
    fn spoofed_sender_rejected() {
        let keys = KeySet::generate(2, b"offline");
        let reg = keys.registry();
        let signer = keys.keypair(0).unwrap();
        let OfflineMsg::Probe { sig, .. } = OfflineMsg::probe(signer) else {
            unreachable!()
        };
        let spoofed = OfflineMsg::Probe {
            from: ClientId::new(1),
            sig,
        };
        assert!(!spoofed.verify(&reg));
    }

    #[test]
    fn tampered_version_rejected() {
        let keys = KeySet::generate(2, b"offline");
        let reg = keys.registry();
        let signer = keys.keypair(0).unwrap();
        let OfflineMsg::Version { from, sig, .. } =
            OfflineMsg::version(signer, Version::initial(2))
        else {
            unreachable!()
        };
        let mut other = Version::initial(2);
        other.v_mut().increment(ClientId::new(0));
        other
            .m_mut()
            .set(ClientId::new(0), faust_crypto::sha256(b"d"));
        let tampered = OfflineMsg::Version {
            from,
            version: other,
            sig,
        };
        assert!(!tampered.verify(&reg));
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use faust_crypto::sig::KeySet;
    use faust_types::wire::WireError;

    fn samples() -> Vec<OfflineMsg> {
        let keys = KeySet::generate(3, b"offline-wire");
        let signer = keys.keypair(1).unwrap();
        let mut version = Version::initial(3);
        version.v_mut().increment(ClientId::new(1));
        version
            .m_mut()
            .set(ClientId::new(1), faust_crypto::sha256(b"entry"));
        vec![
            OfflineMsg::probe(signer),
            OfflineMsg::version(signer, version),
            OfflineMsg::failure(signer),
        ]
    }

    #[test]
    fn offline_messages_roundtrip() {
        for msg in samples() {
            let bytes = msg.encode();
            assert_eq!(bytes.len(), msg.size_bytes());
            assert_eq!(OfflineMsg::decode(&bytes), Ok(msg));
        }
    }

    #[test]
    fn truncated_and_bad_tag_rejected() {
        for msg in samples() {
            let bytes = msg.encode();
            for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
                assert!(OfflineMsg::decode(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
        assert_eq!(OfflineMsg::decode(&[9]), Err(WireError::BadTag(9)));
    }

    #[test]
    fn decoded_messages_still_verify() {
        let keys = KeySet::generate(3, b"offline-wire");
        let reg = keys.registry();
        for msg in samples() {
            let decoded = OfflineMsg::decode(&msg.encode()).unwrap();
            assert!(decoded.verify(&reg));
        }
    }

    /// Property-style: offline messages framed back to back survive the
    /// incremental stream decoder regardless of how the byte stream is
    /// chunked.
    #[test]
    fn framed_offline_streams_roundtrip_across_arbitrary_splits() {
        use faust_sim::SmallRng;
        use faust_types::frame::{frame_bytes, FrameDecoder};

        for case in 0u64..128 {
            let mut rng = SmallRng::seed_from_u64(0x000F_F1CE ^ case);
            let pool = samples();
            let msgs: Vec<OfflineMsg> = (0..1 + rng.gen_index(6))
                .map(|_| pool[rng.gen_index(pool.len())].clone())
                .collect();
            let mut stream = Vec::new();
            for m in &msgs {
                stream.extend_from_slice(&frame_bytes(m));
            }
            let mut decoder = FrameDecoder::new();
            let mut decoded = Vec::new();
            let mut pos = 0;
            while pos < stream.len() {
                let chunk = 1 + rng.gen_index(13.min(stream.len() - pos));
                decoder.extend(&stream[pos..pos + chunk]);
                pos += chunk;
                while let Some(m) = decoder.next_frame::<OfflineMsg>().expect("valid stream") {
                    decoded.push(m);
                }
            }
            assert_eq!(decoded, msgs, "case {case}");
            assert_eq!(decoder.pending_bytes(), 0, "case {case}");
        }
    }
}
