//! Persistent client sessions: saving a [`SessionState`] to — and
//! restoring it from — a checksummed single-file container
//! (`faust-store`'s `"FAUSTSES"` format).
//!
//! The file holds the session's *resumable* state only: protocol
//! version vectors, the resend window (signed-but-unacknowledged
//! SUBMITs plus the latest COMMIT), queued work, and ticket
//! bookkeeping. Keys are never
//! written; the caller re-supplies the keypair and registry when
//! restoring (see [`SessionCore::from_state`]).
//!
//! # Staleness
//!
//! The container's checksum catches a *corrupt* file, not an *old* one.
//! A session file restored after the client ran further operations is
//! internally consistent but rolled back — resuming from it would
//! re-issue timestamps the server has already answered. Only the
//! protocol can tell: the restored client is created with its stale
//! guard armed, so the first mismatch against the live server surfaces
//! as an [`crate::Event::Violation`] with
//! [`faust_ustor::Fault::StaleClientState`] rather than being
//! misattributed to server misbehavior. Embeddings should call
//! [`SessionCore::probe_resume`] right after connecting so a stale file
//! is flagged immediately, not on the next user operation.

use crate::handle::{SessionCore, SessionState};
use faust_store::session::{read_session_file, write_session_file};
use faust_store::StoreError;
use faust_types::Wire;
use std::path::Path;

/// Saves `state` to the session file at `path` (atomic write: temp file,
/// fsync, rename). Overwrites any previous session file at that path.
///
/// # Errors
///
/// Propagates file-system errors; a failed save never disturbs an
/// existing session file.
pub fn save_session(path: &Path, state: &SessionState) -> Result<(), StoreError> {
    write_session_file(path, &state.encode(), true)
}

/// Loads and fully validates the session file at `path`; `Ok(None)` if
/// no file exists.
///
/// # Errors
///
/// Structured [`StoreError`]s for a bad magic, unknown version,
/// truncated or corrupt payload, or checksum mismatch. A file that
/// validates but holds rolled-back state loads *successfully* — that
/// staleness is detected by the protocol after resuming (see the module
/// docs).
pub fn load_session(path: &Path) -> Result<Option<SessionState>, StoreError> {
    let Some(payload) = read_session_file(path)? else {
        return Ok(None);
    };
    SessionState::decode(&payload)
        .map(Some)
        .map_err(StoreError::SessionCorrupt)
}

/// Convenience for embeddings: exports `core`'s state at protocol time
/// `now` and saves it to `path`. Returns `false` (writing nothing) when
/// the session has halted on a violation — a failed session must not be
/// resumed, and a pre-failure file left in place would itself be stale.
///
/// # Errors
///
/// Propagates [`save_session`] errors.
pub fn checkpoint_session(path: &Path, core: &SessionCore, now: u64) -> Result<bool, StoreError> {
    match core.export_state(now) {
        Some(state) => {
            save_session(path, &state)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{FaustClient, FaustConfig, UserOp};
    use crate::events::FailReason;
    use crate::handle::Event;
    use faust_crypto::sig::KeySet;
    use faust_store::testutil::scratch_dir;
    use faust_types::{ClientId, UstorMsg, Value};
    use faust_ustor::{Fault, Server, UstorServer};

    fn keys(n: usize) -> KeySet {
        KeySet::generate(n, b"persist-tests")
    }

    fn fresh_core(keys: &KeySet, i: u32, n: usize) -> SessionCore {
        SessionCore::new(FaustClient::new(
            ClientId::new(i),
            n,
            keys.keypair(i).unwrap().clone(),
            keys.registry(),
            FaustConfig {
                dummy_reads: false,
                ..FaustConfig::default()
            },
        ))
    }

    /// Feeds `msgs` to the server and pumps every reply back into the
    /// core until quiescent.
    fn pump(server: &mut UstorServer, core: &mut SessionCore, msgs: Vec<UstorMsg>, now: u64) {
        let mut queue = msgs;
        while let Some(msg) = queue.first().cloned() {
            queue.remove(0);
            let replies = match msg {
                UstorMsg::Submit(m) => server.on_submit(core.id(), m),
                UstorMsg::Commit(m) => server.on_commit(core.id(), m),
                UstorMsg::Reply(_) => Vec::new(),
            };
            for (_, reply) in replies {
                queue.extend(core.handle_reply(reply, now).to_server);
            }
        }
    }

    #[test]
    fn session_roundtrips_through_disk_and_completes_inflight_ops() {
        let dir = scratch_dir("persist-roundtrip");
        let path = dir.join("c0.session");
        let keys = keys(2);
        let mut server = UstorServer::new(2);
        let mut core = fresh_core(&keys, 0, 2);

        // One completed op, then one in flight (unacked) at save time.
        let (_, out) = core.submit(UserOp::Write(Value::from("first")), 1);
        pump(&mut server, &mut core, out.to_server, 1);
        let (t2, out) = core.submit(UserOp::Write(Value::from("second")), 2);
        assert_eq!(out.to_server.len(), 1, "second SUBMIT signed and sent");
        assert_eq!(core.unacked_submits(), 1);

        assert!(checkpoint_session(&path, &core, 2).unwrap());
        drop(core); // "process exit": the reply was never delivered

        // Restore in a fresh process and replay the resend window, as a
        // reconnect would.
        let state = load_session(&path).unwrap().expect("file exists");
        let (mut core, clock) =
            SessionCore::from_state(keys.keypair(0).unwrap().clone(), keys.registry(), state);
        assert_eq!(clock, 2, "resume the protocol clock where we left off");
        assert_eq!(core.unacked_submits(), 1, "resend window survived");
        let resend = core.resend_messages();
        pump(&mut server, &mut core, resend, 3);

        // The in-flight op completed under its original ticket; the
        // server served the replay from its duplicate cache or live path
        // — either way exactly once.
        let events = core.take_events();
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, Event::Completed { ticket, .. } if *ticket == t2)),
            "restored ticket completes: {events:?}"
        );
        assert!(core.failure().is_none());

        // The next op uses the next timestamp — no gap, no reuse.
        let (_, out) = core.submit(UserOp::Write(Value::from("third")), 4);
        pump(&mut server, &mut core, out.to_server, 4);
        assert!(core.failure().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rolled_back_session_file_flags_stale_client_state() {
        let dir = scratch_dir("persist-stale");
        let path = dir.join("c0.session");
        let keys = keys(2);
        let mut server = UstorServer::new(2);
        let mut core = fresh_core(&keys, 0, 2);

        // Save while idle at timestamp 1...
        let (_, out) = core.submit(UserOp::Write(Value::from("old")), 1);
        pump(&mut server, &mut core, out.to_server, 1);
        assert!(checkpoint_session(&path, &core, 1).unwrap());

        // ...then keep working: the server moves past the saved state.
        for t in 2..5 {
            let (_, out) = core.submit(UserOp::Write(Value::from("newer")), t);
            pump(&mut server, &mut core, out.to_server, t);
        }
        assert!(core.failure().is_none());
        drop(core);

        // Restore the rolled-back file; the resume probe re-issues an
        // already-used timestamp and the mismatch is blamed on the
        // snapshot, not the server.
        let state = load_session(&path).unwrap().expect("file exists");
        let (mut core, clock) =
            SessionCore::from_state(keys.keypair(0).unwrap().clone(), keys.registry(), state);
        let out = core.probe_resume(clock + 1);
        assert_eq!(out.to_server.len(), 1, "probe read issued");
        pump(&mut server, &mut core, out.to_server, clock + 1);
        assert!(
            matches!(
                core.failure(),
                Some(FailReason::Ustor(Fault::StaleClientState))
            ),
            "expected StaleClientState, got {:?}",
            core.failure()
        );
        let events = core.take_events();
        assert!(
            events.iter().any(|(_, e)| matches!(
                e,
                Event::Violation {
                    reason: FailReason::Ustor(Fault::StaleClientState)
                }
            )),
            "violation event delivered: {events:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn up_to_date_session_file_passes_the_resume_probe() {
        let dir = scratch_dir("persist-fresh");
        let path = dir.join("c0.session");
        let keys = keys(2);
        let mut server = UstorServer::new(2);
        let mut core = fresh_core(&keys, 0, 2);

        let (_, out) = core.submit(UserOp::Write(Value::from("v")), 1);
        pump(&mut server, &mut core, out.to_server, 1);
        assert!(checkpoint_session(&path, &core, 1).unwrap());
        drop(core);

        let state = load_session(&path).unwrap().expect("file exists");
        let (mut core, clock) =
            SessionCore::from_state(keys.keypair(0).unwrap().clone(), keys.registry(), state);
        let out = core.probe_resume(clock + 1);
        pump(&mut server, &mut core, out.to_server, clock + 1);
        assert!(core.failure().is_none(), "current state resumes cleanly");

        // And the session is fully live again.
        let (t, out) = core.submit(UserOp::Read(ClientId::new(0)), clock + 2);
        pump(&mut server, &mut core, out.to_server, clock + 2);
        assert!(core.is_complete(t));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn halted_session_refuses_to_export() {
        let keys = keys(2);
        let mut core = fresh_core(&keys, 0, 2);
        // Forge a failure report to halt the session.
        let report = crate::offline::OfflineMsg::failure(keys.keypair(1).unwrap());
        let _ = core.handle_offline(report, 1);
        assert!(core.failure().is_some());
        assert!(
            core.export_state(1).is_none(),
            "failed sessions do not persist"
        );

        let dir = scratch_dir("persist-halted");
        let path = dir.join("c0.session");
        assert!(!checkpoint_session(&path, &core, 1).unwrap());
        assert!(!path.exists(), "nothing written for a halted session");
        std::fs::remove_dir_all(&dir).ok();
    }
}
