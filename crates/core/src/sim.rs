//! Deterministic whole-system fault simulator: the full FAUST stack —
//! many sans-io [`SessionCore`] clients, a [`ServerEngine`] over any
//! [`Server`] (volatile, persistent, crash-restarting) — inside one
//! seeded virtual-time event loop, with a fault-plan DSL and oracles.
//!
//! This is the scenario-diversity engine in the FoundationDB style: no
//! threads, no sockets, no wall clock. Everything that happens — message
//! delivery, client ticks, group-commit flush deadlines, server crashes,
//! Byzantine reply substitution — happens at a virtual tick chosen by
//! the seeded scheduler, so a run is a pure function of its
//! [`SimScenario`] and any failure reproduces bit-identically from the
//! seed. On top sit:
//!
//! * a **fault-plan DSL** ([`FaultClause`]): link outages, connection
//!   kills and dropped replies (recovered exactly-once through the
//!   client's resend window and the server's duplicate-reply cache),
//!   frame reordering and duplication, crash/restart with WAL tamper
//!   hooks (reusing [`faust_ustor::CrashRestartServer`]), replayed and
//!   tampered replies;
//! * **oracles** ([`check_oracles`]): no `fail` notification unless an
//!   adversarial clause actually fired (no false positives), every
//!   guaranteed-observable fork detected (no false negatives), plus the
//!   `faust-consistency` checkers over the recorded history;
//! * a **shrinking failure reporter** ([`investigate`]): on any oracle
//!   violation the fault plan is minimized by delta debugging and the
//!   seed + minimized plan are rendered as a ready-to-run reproduction
//!   recipe.
//!
//! Group-commit flush timing — the one wall-clock dependency in the
//! server hot path — runs on [`faust_store::SimClock`]: the harness
//! advances the clock before every server interaction and arms a virtual
//! timer at [`ServerEngine::flush_deadline_at`], so held replies are
//! released at deterministic ticks.

use crate::client::{FaustClient, FaustConfig, UserOp};
use crate::driver::FaustWorkloadOp;
use crate::events::{FailReason, Notification};
use crate::handle::{Event as SessionEvent, SessionCore, SessionOutput};
use crate::offline::OfflineMsg;
use faust_crypto::sig::KeySet;
use faust_sim::{
    DelayModel, Event, MessageSize, NodeId, SimConfig, Simulation, TimeWindow, TimerId, Transport,
};
use faust_store::{
    Durability, LogRecord, PersistentBackend, PersistentServer, SimClock, StoreConfig,
};
use faust_types::{ClientId, History, OpId, OpKind, ReplyMsg, UstorMsg, Value, Wire};
use faust_ustor::{CrashRestartServer, MemoryBackend, Server, ServerBackend, ServerEngine};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Fault-plan DSL
// ---------------------------------------------------------------------------

/// What happens to the server's on-disk state while it is down (the
/// [`CrashRestartServer`] restart hook). Only meaningful for
/// [`ServerSpec::Persistent`]; a volatile server loses everything on
/// crash regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTamper {
    /// Honest restart: recover exactly what the log holds.
    None,
    /// Drop the last `k` log records — the paper's rollback attack (or a
    /// disk that lied about fsync). May or may not be observable: the
    /// cut tail can consist solely of COMMIT records whose loss the
    /// protocol tolerates.
    TruncateTail(usize),
    /// Delete the WAL and snapshot entirely: the restarted server serves
    /// a fork from the initial state. Guaranteed observable once any
    /// operation had completed before the crash.
    WipeState,
}

/// A scheduled server crash: the server dies after processing
/// `after_messages` SUBMITs/COMMITs, the tamper hook runs against its
/// store directory, and a new incarnation is recovered — all within one
/// virtual tick (restart latency is modeled by the messages that simply
/// keep flowing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Crash after this many protocol messages reach the server.
    pub after_messages: usize,
    /// State tamper applied while down.
    pub tamper: WalTamper,
}

/// Group-commit knobs in virtual ticks (1 tick = 1 ms of the store's
/// `max_wait`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimDurability {
    /// Fsync every append before replying.
    Always,
    /// Group commit: batch appends, withhold replies until the batch
    /// fsync, bounded by the two knobs (see [`Durability::Group`]).
    Group {
        /// Flush once this many records are waiting.
        max_records: u64,
        /// Flush once the oldest waiting record is this many ticks old.
        max_wait_ticks: u64,
    },
}

/// Which server the scenario runs against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerSpec {
    /// In-memory [`faust_ustor::UstorServer`]; a crash loses all state.
    Volatile,
    /// [`PersistentServer`] in a scratch directory, on the virtual clock.
    Persistent {
        /// Durability policy.
        durability: SimDurability,
        /// Snapshot/rotation threshold (`0` disables auto-snapshots).
        snapshot_every: u64,
    },
}

/// One clause of a fault plan. Clauses target the client↔server **link**
/// transport only; the offline channel is assumed reliable (the paper's
/// model — it stands in for out-of-band exchange).
///
/// When several clauses could match one delivery, the first matching
/// clause in plan order wins; [`gen_scenario`] keeps victims distinct so
/// random plans never depend on that tie-break.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultClause {
    /// Benign partition: all link traffic to and from `client` inside
    /// `window` is buffered and delivered, in order, when the window
    /// closes. FIFO per link is preserved, so this must never cause a
    /// failure notification.
    Outage {
        /// The partitioned client.
        client: ClientId,
        /// Activation window.
        window: TimeWindow,
    },
    /// Adversarial network: swap each pair of consecutive
    /// client→server frames from `client` inside `window` (the first is
    /// held until the second arrives, then delivered after it).
    Reorder {
        /// The client whose outbound frames are swapped.
        client: ClientId,
        /// Activation window.
        window: TimeWindow,
    },
    /// Adversarial network: every client→server frame from `client`
    /// inside `window` is delivered twice back-to-back.
    Duplicate {
        /// The client whose outbound frames are duplicated.
        client: ClientId,
        /// Activation window.
        window: TimeWindow,
    },
    /// Server crash/restart with optional state tamper — see
    /// [`CrashSpec`].
    CrashRestart(CrashSpec),
    /// Byzantine server: the first genuine reply to `client` inside
    /// `window` is replaced by a verbatim copy of an earlier reply the
    /// same client received (nothing happens if there was none yet).
    ReplyReplay {
        /// The victim client.
        client: ClientId,
        /// Activation window.
        window: TimeWindow,
    },
    /// Byzantine server: the first read reply to `client` inside
    /// `window` carrying a real value has that value's bytes flipped
    /// while keeping the original DATA-signature — the client's
    /// signature check must catch this immediately.
    TamperReadValue {
        /// The victim client.
        client: ClientId,
        /// Activation window.
        window: TimeWindow,
    },
    /// Benign connection kill: at `at` the victim's link connection is
    /// severed and immediately re-established. Every frame still in
    /// flight on the old connection — in either direction, including
    /// held group-commit replies the server force-flushes into the
    /// dying socket — is lost; the client then replays its resend
    /// window of signed-but-unacknowledged SUBMITs on the new
    /// connection. Resends the server already processed are answered
    /// byte-identically from its duplicate-reply cache, so a kill must
    /// never fail a client or lose or double an operation.
    KillConn {
        /// The client whose connection dies.
        client: ClientId,
        /// Virtual time of the kill.
        at: u64,
    },
    /// Benign-but-lossy network: every REPLY frame to `client`
    /// delivered inside `window` is dropped — the acknowledgements are
    /// lost while the client's SUBMITs keep reaching (and advancing)
    /// the server. When the window closes the connection is torn down
    /// and rebuilt as in [`FaultClause::KillConn`]; every replayed
    /// SUBMIT is then a duplicate the server must answer from its
    /// reply cache — the exactly-once resend path under maximum
    /// duplication pressure.
    DropReplies {
        /// The client whose replies are eaten.
        client: ClientId,
        /// Activation window; the reconnect runs at `window.end`.
        window: TimeWindow,
    },
}

impl FaultClause {
    /// Whether the clause can never violate the protocol's assumptions
    /// (reliable FIFO links, honest server): such clauses must never
    /// cause a failure notification.
    pub fn is_benign(&self, server: &ServerSpec) -> bool {
        match self {
            FaultClause::Outage { .. } => true,
            // A kill (or drop-then-reconnect) loses only frames the
            // client's resend window recovers; the server's duplicate
            // cache keeps the replay exactly-once.
            FaultClause::KillConn { .. } | FaultClause::DropReplies { .. } => true,
            FaultClause::CrashRestart(spec) => {
                // Only a synchronously-durable server restarts losslessly:
                // under group commit a crash destroys its *held* replies
                // and the affected clients stall, breaking wait-freedom.
                spec.tamper == WalTamper::None
                    && matches!(
                        server,
                        ServerSpec::Persistent {
                            durability: SimDurability::Always,
                            ..
                        }
                    )
            }
            _ => false,
        }
    }
}

/// An ordered list of fault clauses applied to one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The clauses, applied first-match-wins per delivery.
    pub clauses: Vec<FaultClause>,
}

impl FaultPlan {
    /// A plan with no faults at all.
    pub fn honest() -> Self {
        FaultPlan::default()
    }

    /// Whether every clause is benign against `server` — the
    /// no-false-positive oracle applies to the whole run regardless of
    /// which clauses fired.
    pub fn is_benign(&self, server: &ServerSpec) -> bool {
        self.clauses.iter().all(|c| c.is_benign(server))
    }

    /// The crash clause, if the plan has one. At most one is supported
    /// per plan ([`CrashRestartServer`] crashes once).
    pub fn crash(&self) -> Option<&CrashSpec> {
        self.clauses.iter().find_map(|c| match c {
            FaultClause::CrashRestart(spec) => Some(spec),
            _ => None,
        })
    }
}

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/// A complete, self-contained description of one simulated run. Equal
/// scenarios produce bit-identical [`SimRunReport`]s — that is the
/// reproducibility contract the failure reporter leans on.
#[derive(Debug, Clone)]
pub struct SimScenario {
    /// Seed for the network schedule (delays, event tie-breaks).
    pub seed: u64,
    /// Per-client workload scripts; the client count is the length.
    pub workloads: Vec<Vec<FaustWorkloadOp>>,
    /// Which server to run.
    pub server: ServerSpec,
    /// The fault plan.
    pub plan: FaultPlan,
    /// Virtual-time deadline of the run.
    pub deadline: u64,
    /// Client tick period (dummy reads, probe checks).
    pub tick_period: u64,
    /// Whether clients issue dummy reads when idle (the paper requires
    /// them for stability and fork detection; scripted scenarios may
    /// disable them for exact message accounting).
    pub dummy_reads: bool,
    /// Link delay distribution.
    pub link_delay: DelayModel,
    /// Offline-channel delay distribution.
    pub offline_delay: DelayModel,
}

impl SimScenario {
    /// Number of clients.
    pub fn n(&self) -> usize {
        self.workloads.len()
    }

    /// Number of user operations across all scripts.
    pub fn user_ops(&self) -> usize {
        self.workloads
            .iter()
            .flatten()
            .filter(|op| {
                matches!(op, FaustWorkloadOp::Write(_)) || matches!(op, FaustWorkloadOp::Read(_))
            })
            .count()
    }

    /// Virtual-time slack the oracles require between the last scheduled
    /// fault and the deadline, so detection has room to happen.
    pub fn detection_slack(&self) -> u64 {
        8 * self.tick_period + 200
    }
}

/// What one run produced — everything the oracles and the consistency
/// checkers need.
#[derive(Debug)]
pub struct SimRunReport {
    /// User-visible history (dummy reads excluded).
    pub history: History,
    /// Every notification per client, with its virtual time.
    pub notifications: Vec<Vec<(u64, Notification)>>,
    /// Clients that emitted `fail_i`, with reasons.
    pub failures: Vec<(ClientId, FailReason)>,
    /// Guaranteed-observable forks that actually fired: `(time, label,
    /// victim)` — victim is `None` for global forks (state wipe).
    pub fork_fired: Vec<(u64, &'static str, Option<ClientId>)>,
    /// Adversarial clauses that fired without a detection guarantee
    /// (reorder, duplicate, replay, truncate): `(time, label)`.
    pub dirty_fired: Vec<(u64, &'static str)>,
    /// Virtual time the scheduled crash fired, if it did.
    pub crash_time: Option<u64>,
    /// Snapshot taken at crash time: whether the wire was quiescent in
    /// both directions (no SUBMIT/COMMIT in flight that could re-teach
    /// the restarted server, and no REPLY in flight whose receiver
    /// would answer with a re-teaching COMMIT — including the replies
    /// to the very message that triggered the crash) *and* some live,
    /// connected, not-mid-op client with a completed op was positioned
    /// to observe the post-crash state. `None` when no crash fired. Detection of a
    /// state-wiping crash is guaranteed — and demanded by the oracle —
    /// only when this is `Some(true)`; otherwise in-flight COMMITs
    /// (which carry signed version vectors the server stores verbatim)
    /// can repair the wiped state before any client observes it.
    pub wipe_detector: Option<bool>,
    /// Traffic statistics.
    pub metrics: faust_sim::Metrics,
    /// Virtual time when the run stopped.
    pub final_time: u64,
    /// The run's encoded `FAUSTHIS` session history — the server-side
    /// record stream (a recording tap for volatile servers, the real
    /// snapshot + WAL for persistent ones) plus the client-observed
    /// history, ready for the offline auditor. `None` only if the store
    /// directory could not be exported (e.g. a `WipeState` tamper
    /// deleted it).
    pub exported_history: Option<Vec<u8>>,
}

impl SimRunReport {
    /// Completed user operations of `client`, in order.
    pub fn completions(&self, client: ClientId) -> Vec<crate::events::FaustCompletion> {
        self.notifications[client.index()]
            .iter()
            .filter_map(|(_, n)| match n {
                Notification::Completed(c) => Some(c.clone()),
                _ => None,
            })
            .collect()
    }

    /// The time `client` first emitted `fail_i`, if it did.
    pub fn failure_time(&self, client: ClientId) -> Option<u64> {
        self.notifications[client.index()]
            .iter()
            .find_map(|(t, n)| matches!(n, Notification::Failed(_)).then_some(*t))
    }

    /// Earliest failure time across all clients.
    pub fn first_failure_time(&self) -> Option<u64> {
        (0..self.notifications.len())
            .filter_map(|i| self.failure_time(ClientId::new(i as u32)))
            .min()
    }

    /// Number of completed operations recorded in the history.
    pub fn completed_ops(&self) -> usize {
        self.history.complete_ops().count()
    }

    /// The comparable core of the report, for bit-identical-rerun
    /// checks.
    fn fingerprint(&self) -> impl PartialEq + std::fmt::Debug + '_ {
        (
            &self.history,
            &self.notifications,
            &self.failures,
            &self.fork_fired,
            &self.dirty_fired,
            self.crash_time,
            self.wipe_detector,
            &self.metrics,
            self.final_time,
            &self.exported_history,
        )
    }
}

// ---------------------------------------------------------------------------
// The recording tap
// ---------------------------------------------------------------------------

/// The record stream shared between the harness and the recording tap.
type SharedRecording = Arc<Mutex<Vec<(u64, LogRecord)>>>;

/// A [`Server`] decorator that mirrors every accepted SUBMIT and COMMIT
/// into a shared record stream — exactly what a WAL would hold. It sits
/// *below* the [`ServerEngine`], so duplicate SUBMITs answered from the
/// reply cache never reach it, matching `faust-store` semantics.
struct RecordingServer {
    inner: Box<dyn Server + Send>,
    log: SharedRecording,
}

impl Server for RecordingServer {
    fn on_submit(
        &mut self,
        client: ClientId,
        msg: faust_types::SubmitMsg,
    ) -> Vec<(ClientId, ReplyMsg)> {
        {
            let mut log = self.log.lock().expect("recording lock");
            let seq = log.len() as u64;
            log.push((
                seq,
                LogRecord::Submit {
                    from: client,
                    msg: msg.clone(),
                },
            ));
        }
        self.inner.on_submit(client, msg)
    }

    fn on_commit(
        &mut self,
        client: ClientId,
        msg: faust_types::CommitMsg,
    ) -> Vec<(ClientId, ReplyMsg)> {
        {
            let mut log = self.log.lock().expect("recording lock");
            let seq = log.len() as u64;
            log.push((
                seq,
                LogRecord::Commit {
                    from: client,
                    msg: msg.clone(),
                },
            ));
        }
        self.inner.on_commit(client, msg)
    }

    fn flush(&mut self, force: bool) -> Vec<(ClientId, ReplyMsg)> {
        self.inner.flush(force)
    }

    fn flush_deadline(&self) -> Option<std::time::Instant> {
        self.inner.flush_deadline()
    }

    fn flush_deadline_at(&self) -> Option<u64> {
        self.inner.flush_deadline_at()
    }

    fn resume_sessions(&mut self) -> Vec<faust_ustor::SessionResume> {
        self.inner.resume_sessions()
    }
}

/// A [`ServerBackend`] decorator that taps every built server with a
/// [`RecordingServer`]. Each build *clears* the shared stream: a
/// volatile restart wipes the server, so the recording covers only the
/// final incarnation — records that honestly apply to the fresh state,
/// which is precisely what an auditor of the post-crash session sees.
struct RecordingBackend {
    inner: Box<dyn ServerBackend + Send>,
    log: SharedRecording,
}

impl ServerBackend for RecordingBackend {
    fn build(&self, n: usize) -> std::io::Result<Box<dyn Server + Send>> {
        self.log.lock().expect("recording lock").clear();
        let inner = self.inner.build(n)?;
        Ok(Box::new(RecordingServer {
            inner,
            log: self.log.clone(),
        }))
    }
}

// ---------------------------------------------------------------------------
// The harness
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum NetMsg {
    /// A link frame, stamped with the sending side's view of the
    /// client↔server connection epoch. [`FaultClause::KillConn`]-style
    /// clauses bump the victim's epoch; a frame whose stamp is stale at
    /// delivery was in flight on a connection that no longer exists and
    /// is dropped, exactly as a dead TCP socket loses its buffers.
    Ustor(UstorMsg, u64),
    Offline(OfflineMsg),
}

impl MessageSize for NetMsg {
    fn size_bytes(&self) -> usize {
        match self {
            NetMsg::Ustor(m, _) => m.encoded_len(),
            NetMsg::Offline(m) => m.size_bytes(),
        }
    }
}

const TICK_TAG: u64 = 1;
const RESUME_TAG: u64 = 2;
const RECONNECT_TAG: u64 = 3;
/// Server-node timer releasing group-commit batches at their virtual
/// flush deadline.
const FLUSH_TAG: u64 = 4;
/// `RELEASE_TAG_BASE + clause_index`: end-of-window release for clauses
/// that buffer traffic.
const RELEASE_TAG_BASE: u64 = 100;

struct Slot {
    core: SessionCore,
    script: VecDeque<FaustWorkloadOp>,
    ticket_ops: HashMap<u64, OpId>,
    notifications: Vec<(u64, Notification)>,
    crashed: bool,
    waiting: bool,
    /// Whether the client is currently script-disconnected (its link
    /// traffic is delayed until reconnection).
    disconnected: bool,
    /// SUBMITs on the wire without a reply yet — dummy reads included.
    /// Nonzero at a group-commit crash means this client's reply may be
    /// held by the dying server and lost (the client then stalls).
    in_flight: u64,
    /// Last genuine reply delivered to this client — the material a
    /// [`FaultClause::ReplyReplay`] substitutes.
    last_reply: Option<ReplyMsg>,
    /// The client's current link-connection epoch. Frames are stamped
    /// with the epoch at send time; [`FaultClause::KillConn`] and the
    /// end-of-window reconnect of [`FaultClause::DropReplies`] bump it,
    /// killing every frame still in flight on the old connection.
    link_epoch: u64,
}

/// Per-clause mutable state while the run executes.
enum ClauseState {
    /// Outage: traffic buffered in pop order.
    Buffer(Vec<(NodeId, NodeId, NetMsg)>),
    /// Reorder: the held first frame of the current pair.
    Stash(Option<(NodeId, NodeId, NetMsg)>),
    /// One-shot clauses (replay, tamper): whether they already fired.
    Fired(bool),
    /// Clauses with no delivery-time state (duplicate, crash).
    Stateless,
}

/// Scratch-directory counter so concurrent tests never collide without
/// consulting wall time or ambient randomness (which would break
/// reproducibility).
static SCRATCH_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> PathBuf {
    let id = SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("faust-simrun-{}-{id}", std::process::id()))
}

struct Harness {
    n: usize,
    sim: Simulation<NetMsg>,
    engine: ServerEngine,
    clock: SimClock,
    slots: Vec<Slot>,
    history: History,
    tick_period: u64,
    plan: FaultPlan,
    clause_state: Vec<ClauseState>,
    /// Mirror of [`CrashRestartServer`]'s message counter, so the
    /// harness knows *when* (in virtual time) the crash fired.
    server_messages: usize,
    crash_after: Option<usize>,
    crash_time: Option<u64>,
    /// Whether the server holds replies back for group commit — a crash
    /// can then destroy held replies and stall mid-op clients.
    group_commit: bool,
    dummy_reads: bool,
    /// Server-bound SUBMIT/COMMIT frames currently on the wire (or
    /// buffered by an outage clause). COMMITs carry signed version
    /// vectors the server stores verbatim, so frames in flight across a
    /// state-wiping crash can *re-teach* the restarted server its
    /// pre-crash versions and silently heal the fork.
    server_bound: usize,
    /// Client-bound REPLY frames currently on the wire. A reply in
    /// flight across a crash was produced by the *pre-crash* server;
    /// its receiver will answer with a COMMIT carrying its full current
    /// version vector — the other healing vector.
    replies_in_flight: usize,
    /// Set when the crash fires: whether some live client is positioned
    /// to observe the post-crash state (see
    /// [`Harness::crash_detector_present`]).
    wipe_detector: Option<bool>,
    fork_fired: Vec<(u64, &'static str, Option<ClientId>)>,
    dirty_fired: Vec<(u64, &'static str)>,
    /// The armed virtual flush timer: `(deadline_tick, timer_id)`.
    flush_timer: Option<(u64, TimerId)>,
    /// The recording tap's shared record stream (volatile servers only;
    /// persistent servers export their real WAL instead).
    recording: Option<SharedRecording>,
}

/// A backend that re-attaches the shared [`SimClock`] on every build —
/// including the rebuild [`CrashRestartServer`] performs after a crash.
struct VirtualPersistentBackend {
    inner: PersistentBackend,
    clock: SimClock,
}

impl ServerBackend for VirtualPersistentBackend {
    fn build(&self, n: usize) -> std::io::Result<Box<dyn Server + Send>> {
        let server = PersistentServer::open(&self.inner.dir, n, self.inner.config.clone())
            .map_err(std::io::Error::other)?
            .with_sim_clock(self.clock.clone());
        Ok(Box::new(server))
    }
}

impl Harness {
    fn new(scenario: &SimScenario, store_dir: Option<&PathBuf>) -> Self {
        let n = scenario.n();
        let clock = SimClock::new();
        let mut recording = None;
        let backend: Box<dyn ServerBackend + Send> = match &scenario.server {
            ServerSpec::Volatile => {
                let log: SharedRecording = Arc::new(Mutex::new(Vec::new()));
                recording = Some(log.clone());
                Box::new(RecordingBackend {
                    inner: Box::new(MemoryBackend),
                    log,
                })
            }
            ServerSpec::Persistent {
                durability,
                snapshot_every,
            } => {
                let config = StoreConfig {
                    durability: match *durability {
                        SimDurability::Always => Durability::Always,
                        SimDurability::Group {
                            max_records,
                            max_wait_ticks,
                        } => Durability::Group {
                            max_records,
                            max_wait: std::time::Duration::from_millis(max_wait_ticks),
                        },
                    },
                    snapshot_every: *snapshot_every,
                };
                Box::new(VirtualPersistentBackend {
                    inner: PersistentBackend::new(
                        store_dir.expect("persistent spec allocates a dir"),
                        config,
                    ),
                    clock: clock.clone(),
                })
            }
        };
        let server: Box<dyn Server + Send> = match scenario.plan.crash() {
            Some(spec) => {
                let mut crs = CrashRestartServer::new(n, backend, spec.after_messages)
                    .expect("initial build");
                if let Some(dir) = store_dir {
                    let dir = dir.clone();
                    match spec.tamper {
                        WalTamper::None => {}
                        WalTamper::TruncateTail(k) => {
                            crs = crs.with_hook(Box::new(move || {
                                faust_store::truncate_tail_records(&dir, k).ok();
                            }));
                        }
                        WalTamper::WipeState => {
                            crs = crs.with_hook(Box::new(move || {
                                std::fs::remove_dir_all(&dir).ok();
                            }));
                        }
                    }
                }
                Box::new(crs)
            }
            None => backend.build(n).expect("initial build"),
        };

        let keys = KeySet::generate_with(
            faust_crypto::SigScheme::Hmac,
            n,
            &scenario.seed.to_be_bytes(),
        );
        let faust_config = FaustConfig {
            dummy_reads: scenario.dummy_reads,
            ..FaustConfig::default()
        };
        let mut sim = Simulation::new(SimConfig {
            seed: scenario.seed,
            link_delay: scenario.link_delay,
            offline_delay: scenario.offline_delay,
        });
        for i in 0..n {
            sim.set_timer(NodeId(i as u32), scenario.tick_period, TICK_TAG);
        }
        // Pre-arm end-of-window release timers so buffered traffic is
        // handed back even if no other event lands on that tick.
        let server_node = NodeId(n as u32);
        let clause_state = scenario
            .plan
            .clauses
            .iter()
            .enumerate()
            .map(|(idx, clause)| match clause {
                FaultClause::Outage { window, .. } => {
                    sim.set_timer(server_node, window.end, RELEASE_TAG_BASE + idx as u64);
                    ClauseState::Buffer(Vec::new())
                }
                FaultClause::Reorder { window, .. } => {
                    sim.set_timer(server_node, window.end, RELEASE_TAG_BASE + idx as u64);
                    ClauseState::Stash(None)
                }
                FaultClause::ReplyReplay { .. } | FaultClause::TamperReadValue { .. } => {
                    ClauseState::Fired(false)
                }
                FaultClause::KillConn { at, .. } => {
                    sim.set_timer(server_node, *at, RELEASE_TAG_BASE + idx as u64);
                    ClauseState::Stateless
                }
                FaultClause::DropReplies { window, .. } => {
                    sim.set_timer(server_node, window.end, RELEASE_TAG_BASE + idx as u64);
                    ClauseState::Stateless
                }
                FaultClause::Duplicate { .. } | FaultClause::CrashRestart(_) => {
                    ClauseState::Stateless
                }
            })
            .collect();

        Harness {
            n,
            sim,
            engine: ServerEngine::new(n, server),
            clock,
            slots: (0..n)
                .map(|i| Slot {
                    core: SessionCore::new(FaustClient::new(
                        ClientId::new(i as u32),
                        n,
                        keys.keypair(i as u32).expect("generated").clone(),
                        keys.registry(),
                        faust_config,
                    )),
                    script: scenario.workloads[i].iter().cloned().collect(),
                    ticket_ops: HashMap::new(),
                    notifications: Vec::new(),
                    crashed: false,
                    waiting: false,
                    disconnected: false,
                    in_flight: 0,
                    last_reply: None,
                    link_epoch: 0,
                })
                .collect(),
            history: History::new(),
            tick_period: scenario.tick_period,
            plan: scenario.plan.clone(),
            clause_state,
            server_messages: 0,
            crash_after: scenario.plan.crash().map(|s| s.after_messages),
            crash_time: None,
            group_commit: matches!(
                scenario.server,
                ServerSpec::Persistent {
                    durability: SimDurability::Group { .. },
                    ..
                }
            ),
            dummy_reads: scenario.dummy_reads,
            server_bound: 0,
            replies_in_flight: 0,
            wipe_detector: None,
            fork_fired: Vec::new(),
            dirty_fired: Vec::new(),
            flush_timer: None,
            recording,
        }
    }

    fn server_node(&self) -> NodeId {
        NodeId(self.n as u32)
    }

    /// Whether, at the moment the crash fires, some client is positioned
    /// to *observe* the restarted server's state — one half of the
    /// precondition for the detection-guarantee oracle on a state-wiping
    /// crash (the other half is wire quiescence, checked at the call
    /// site: frames in flight across the crash can re-teach the
    /// restarted server and silently heal the fork).
    ///
    /// A fork is only observable through a post-crash reply reaching a
    /// client whose own version already advanced. That client must be
    /// live, connected, and running dummy reads; and under group commit
    /// it must not be mid-operation — a crash destroys the dying
    /// server's *held* replies, and a client whose reply died that way
    /// stalls forever (the accurate-detection property forbids flagging
    /// a merely mute server, so nothing more can be demanded of the run).
    fn crash_detector_present(&self, now: u64) -> bool {
        self.dummy_reads
            && self.slots.iter().any(|s| {
                !s.crashed
                    && !s.disconnected
                    && s.core.failure().is_none()
                    && (!self.group_commit || s.in_flight == 0)
                    && s.notifications
                        .iter()
                        .any(|(t, n)| matches!(n, Notification::Completed(_)) && *t < now)
            })
    }

    /// Routes one message to its destination, *without* fault
    /// interception (used for both normal routing after interception and
    /// for releasing buffered traffic).
    ///
    /// This is also where stale-epoch frames die: a frame stamped with
    /// an older connection epoch than its client endpoint's current one
    /// was in flight on a connection a [`FaultClause::KillConn`]-style
    /// clause has since severed, and never arrives.
    fn deliver(&mut self, from: NodeId, to: NodeId, msg: NetMsg, now: u64) {
        let server_node = self.server_node();
        if let NetMsg::Ustor(m, epoch) = &msg {
            let client_end = if to == server_node { from } else { to };
            let i = client_end.0 as usize;
            if i < self.n && *epoch < self.slots[i].link_epoch {
                match m {
                    UstorMsg::Submit(_) | UstorMsg::Commit(_) if to == server_node => {
                        self.server_bound = self.server_bound.saturating_sub(1);
                    }
                    UstorMsg::Reply(_) if to != server_node => {
                        self.replies_in_flight = self.replies_in_flight.saturating_sub(1);
                    }
                    _ => {}
                }
                return;
            }
        }
        if to == server_node {
            let NetMsg::Ustor(m, _) = msg else { return };
            self.server_receive(ClientId::new(from.0), m, now);
        } else {
            self.client_receive(to.0 as usize, msg, now);
        }
    }

    /// Feeds one protocol message to the engine and pumps outputs back
    /// into virtual time. Mirrors the crash counter so the harness knows
    /// the crash tick.
    fn server_receive(&mut self, from: ClientId, msg: UstorMsg, now: u64) {
        self.clock.set(now);
        let mut crashed_now = false;
        if matches!(msg, UstorMsg::Submit(_) | UstorMsg::Commit(_)) {
            self.server_bound = self.server_bound.saturating_sub(1);
            self.server_messages += 1;
            if self.crash_after == Some(self.server_messages) {
                crashed_now = true;
                self.crash_time = Some(now);
                if let Some(spec) = self.plan.crash() {
                    match spec.tamper {
                        WalTamper::WipeState => self.fork_fired.push((now, "crash-wipe", None)),
                        WalTamper::TruncateTail(_) => {
                            self.dirty_fired.push((now, "crash-truncate"))
                        }
                        WalTamper::None => {}
                    }
                }
            }
        }
        self.engine.enqueue(from, msg);
        self.engine.process_all();
        self.drain_server_outputs(now);
        if crashed_now {
            // Judged *after* the trigger message's own replies went out:
            // detection of the wipe is only guaranteed when nothing on
            // the wire — in either direction — can re-teach the
            // restarted server before a detector observes it.
            self.wipe_detector = Some(
                self.server_bound == 0
                    && self.replies_in_flight == 0
                    && self.crash_detector_present(now),
            );
        }
    }

    fn drain_server_outputs(&mut self, now: u64) {
        let server_node = self.server_node();
        while let Some((to, out)) = self.engine.poll_output() {
            if matches!(out, UstorMsg::Reply(_)) {
                self.replies_in_flight += 1;
            }
            let epoch = self.slots.get(to.index()).map_or(0, |s| s.link_epoch);
            self.sim
                .send(server_node, NodeId(to.as_u32()), NetMsg::Ustor(out, epoch));
        }
        self.update_flush_timer(now);
    }

    /// Keeps exactly one virtual timer armed at the engine's current
    /// flush deadline (group commit), cancelling stale ones.
    fn update_flush_timer(&mut self, now: u64) {
        let deadline = self.engine.flush_deadline_at();
        match (deadline, self.flush_timer) {
            (Some(at), Some((armed, _))) if armed == at => {}
            (Some(at), prev) => {
                if let Some((_, id)) = prev {
                    self.sim.cancel_timer(id);
                }
                let id = self
                    .sim
                    .set_timer(self.server_node(), at.saturating_sub(now), FLUSH_TAG);
                self.flush_timer = Some((at, id));
            }
            (None, Some((_, id))) => {
                self.sim.cancel_timer(id);
                self.flush_timer = None;
            }
            (None, None) => {}
        }
    }

    fn client_receive(&mut self, i: usize, msg: NetMsg, now: u64) {
        if matches!(msg, NetMsg::Ustor(UstorMsg::Reply(_), _)) {
            self.replies_in_flight = self.replies_in_flight.saturating_sub(1);
        }
        if i >= self.n || self.slots[i].crashed {
            return;
        }
        let out = match msg {
            NetMsg::Ustor(UstorMsg::Reply(reply), _) => {
                self.slots[i].in_flight = self.slots[i].in_flight.saturating_sub(1);
                self.slots[i].last_reply = Some(reply.clone());
                self.slots[i].core.handle_reply(reply, now)
            }
            NetMsg::Offline(m) => self.slots[i].core.handle_offline(m, now),
            _ => SessionOutput::default(),
        };
        self.apply_output(i, out, now);
    }

    fn apply_output(&mut self, i: usize, out: SessionOutput, now: u64) {
        let node = NodeId(i as u32);
        let server_node = self.server_node();
        for msg in out.to_server {
            if matches!(msg, UstorMsg::Submit(_)) {
                self.slots[i].in_flight += 1;
            }
            if matches!(msg, UstorMsg::Submit(_) | UstorMsg::Commit(_)) {
                self.server_bound += 1;
            }
            let epoch = self.slots[i].link_epoch;
            self.sim.send(node, server_node, NetMsg::Ustor(msg, epoch));
        }
        for (to, msg) in out.offline {
            self.sim
                .send_offline(node, NodeId(to.as_u32()), NetMsg::Offline(msg));
        }
        for (t, event) in self.slots[i].core.take_events() {
            let note = match event {
                SessionEvent::Completed { ticket, completion } => {
                    if let Some(op_id) = self.slots[i].ticket_ops.remove(&ticket.index()) {
                        match completion.kind {
                            OpKind::Write => {
                                self.history
                                    .complete_write(op_id, t, Some(completion.timestamp))
                            }
                            OpKind::Read => self.history.complete_read(
                                op_id,
                                t,
                                completion.read_value.clone().flatten(),
                                Some(completion.timestamp),
                            ),
                        }
                    }
                    Notification::Completed(completion)
                }
                SessionEvent::Stable { cut } => Notification::Stable(cut),
                SessionEvent::Violation { reason } => Notification::Failed(reason),
                SessionEvent::Disconnected { .. }
                | SessionEvent::Reconnecting { .. }
                | SessionEvent::Resumed => continue,
            };
            self.slots[i].notifications.push((t, note));
        }
        if self.slots[i].core.backlog() == 0 {
            self.advance_script(i, now);
        }
    }

    fn advance_script(&mut self, i: usize, now: u64) {
        loop {
            let slot = &mut self.slots[i];
            if slot.crashed
                || slot.waiting
                || slot.core.failure().is_some()
                || slot.core.backlog() > 0
            {
                return;
            }
            let Some(step) = slot.script.pop_front() else {
                return;
            };
            let client_id = ClientId::new(i as u32);
            let node = NodeId(i as u32);
            match step {
                FaustWorkloadOp::Crash => {
                    slot.crashed = true;
                    self.sim.crash(node);
                    return;
                }
                FaustWorkloadOp::Pause(ticks) => {
                    slot.waiting = true;
                    self.sim.set_timer(node, ticks, RESUME_TAG);
                    return;
                }
                FaustWorkloadOp::Disconnect(duration) => {
                    slot.waiting = true;
                    slot.disconnected = true;
                    self.sim.set_connected(node, false);
                    self.sim.set_timer(node, duration, RECONNECT_TAG);
                    return;
                }
                FaustWorkloadOp::Write(value) => {
                    let op_id = self.history.begin_write(client_id, value.clone(), now);
                    let (ticket, out) = self.slots[i].core.submit(UserOp::Write(value), now);
                    self.slots[i].ticket_ops.insert(ticket.index(), op_id);
                    self.apply_output(i, out, now);
                    return;
                }
                FaustWorkloadOp::Read(register) => {
                    if register.index() >= self.n {
                        continue;
                    }
                    let op_id = self.history.begin_read(client_id, register, now);
                    let (ticket, out) = self.slots[i].core.submit(UserOp::Read(register), now);
                    self.slots[i].ticket_ops.insert(ticket.index(), op_id);
                    self.apply_output(i, out, now);
                    return;
                }
            }
        }
    }

    /// Applies the fault plan to a popped link delivery. Returns the
    /// messages to route *now*, in order — empty when the delivery was
    /// consumed (buffered or stashed), possibly substituted or doubled.
    fn intercept(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: NetMsg,
        now: u64,
    ) -> Vec<(NodeId, NodeId, NetMsg)> {
        let server_node = self.server_node();
        for (idx, clause) in self.plan.clauses.clone().iter().enumerate() {
            match clause {
                FaultClause::Outage { client, window } if window.contains(now) => {
                    let victim = NodeId(client.as_u32());
                    if from == victim || to == victim {
                        if let ClauseState::Buffer(buf) = &mut self.clause_state[idx] {
                            buf.push((from, to, msg));
                            return Vec::new();
                        }
                    }
                }
                FaultClause::Reorder { client, window }
                    if window.contains(now)
                        && from == NodeId(client.as_u32())
                        && to == server_node =>
                {
                    if let ClauseState::Stash(stash) = &mut self.clause_state[idx] {
                        match stash.take() {
                            None => {
                                *stash = Some((from, to, msg));
                                return Vec::new();
                            }
                            Some(held) => {
                                self.dirty_fired.push((now, "reorder"));
                                return vec![(from, to, msg), held];
                            }
                        }
                    }
                }
                FaultClause::Duplicate { client, window }
                    if window.contains(now)
                        && from == NodeId(client.as_u32())
                        && to == server_node =>
                {
                    self.dirty_fired.push((now, "duplicate"));
                    if matches!(
                        msg,
                        NetMsg::Ustor(UstorMsg::Submit(_) | UstorMsg::Commit(_), _)
                    ) {
                        self.server_bound += 1;
                    }
                    return vec![(from, to, msg.clone()), (from, to, msg)];
                }
                FaultClause::DropReplies { client, window }
                    if window.contains(now)
                        && to == NodeId(client.as_u32())
                        && matches!(msg, NetMsg::Ustor(UstorMsg::Reply(_), _)) =>
                {
                    // The acknowledgement is eaten; its SUBMIT stays in
                    // the client's resend window and is replayed at the
                    // end-of-window reconnect.
                    self.replies_in_flight = self.replies_in_flight.saturating_sub(1);
                    return Vec::new();
                }
                FaultClause::ReplyReplay { client, window }
                    if window.contains(now) && to == NodeId(client.as_u32()) =>
                {
                    if let NetMsg::Ustor(UstorMsg::Reply(_), epoch) = &msg {
                        let already = matches!(self.clause_state[idx], ClauseState::Fired(true));
                        if !already {
                            if let Some(old) = self.slots[client.index()].last_reply.clone() {
                                let epoch = *epoch;
                                self.clause_state[idx] = ClauseState::Fired(true);
                                self.dirty_fired.push((now, "reply-replay"));
                                return vec![(
                                    from,
                                    to,
                                    NetMsg::Ustor(UstorMsg::Reply(old), epoch),
                                )];
                            }
                        }
                    }
                }
                FaultClause::TamperReadValue { client, window }
                    if window.contains(now) && to == NodeId(client.as_u32()) =>
                {
                    let already = matches!(self.clause_state[idx], ClauseState::Fired(true));
                    if !already {
                        if let NetMsg::Ustor(UstorMsg::Reply(reply), epoch) = &msg {
                            if let Some(read) = &reply.read {
                                if let Some(value) = &read.mem_value {
                                    let epoch = *epoch;
                                    let mut tampered = reply.clone();
                                    let flipped: Vec<u8> =
                                        value.as_bytes().iter().map(|b| b ^ 0xFF).collect();
                                    tampered.read.as_mut().expect("read is Some").mem_value =
                                        Some(Value::new(flipped));
                                    self.clause_state[idx] = ClauseState::Fired(true);
                                    self.fork_fired
                                        .push((now, "tamper-read-value", Some(*client)));
                                    return vec![(
                                        from,
                                        to,
                                        NetMsg::Ustor(UstorMsg::Reply(tampered), epoch),
                                    )];
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        vec![(from, to, msg)]
    }

    /// End-of-window release for clause `idx`: buffered/stashed traffic
    /// is handed to its destination in original order; for connection
    /// kills this is the kill-and-reconnect itself.
    fn release_clause(&mut self, idx: usize, now: u64) {
        match &self.plan.clauses[idx] {
            FaultClause::KillConn { client, .. } | FaultClause::DropReplies { client, .. } => {
                let victim = client.index();
                self.kill_and_replay(victim, now);
                return;
            }
            _ => {}
        }
        let pending = match &mut self.clause_state[idx] {
            ClauseState::Buffer(buf) => std::mem::take(buf),
            ClauseState::Stash(stash) => stash.take().into_iter().collect(),
            _ => Vec::new(),
        };
        for (from, to, msg) in pending {
            self.deliver(from, to, msg, now);
        }
    }

    /// Severs and rebuilds client `i`'s link connection. Mirrors what a
    /// real transport death does, in order:
    ///
    /// 1. the server force-flushes, so group-commit replies held for the
    ///    dying connection are released into it (and lost with it —
    ///    they are now in the duplicate-reply cache, which is what makes
    ///    step 3 exactly-once);
    /// 2. the victim's link epoch is bumped, so every frame still in
    ///    flight — in either direction — dies on arrival;
    /// 3. the client replays its resend window of unacknowledged
    ///    SUBMITs on the new connection, exactly as
    ///    [`crate::FaustHandle`]'s auto-reconnect does.
    fn kill_and_replay(&mut self, i: usize, now: u64) {
        if i >= self.n || self.slots[i].crashed || self.slots[i].core.failure().is_some() {
            return;
        }
        self.clock.set(now);
        self.engine.flush_server(true);
        // Drained before the epoch bump: the victim's flushed replies
        // carry the old epoch and die; other clients' merely arrive a
        // little early.
        self.drain_server_outputs(now);
        self.slots[i].link_epoch += 1;
        let epoch = self.slots[i].link_epoch;
        let node = NodeId(i as u32);
        let server_node = self.server_node();
        for msg in self.slots[i].core.resend_messages() {
            // The ops were counted in `in_flight` at first send and are
            // still unanswered — only the wire accounting is new.
            if matches!(msg, UstorMsg::Submit(_) | UstorMsg::Commit(_)) {
                self.server_bound += 1;
            }
            self.sim.send(node, server_node, NetMsg::Ustor(msg, epoch));
        }
    }

    fn run(mut self, deadline: u64) -> SimRunReport {
        for i in 0..self.n {
            self.advance_script(i, 0);
        }
        while let Some(ev) = self.sim.next() {
            if ev.time > deadline {
                break;
            }
            let now = ev.time;
            match ev.event {
                Event::Timer { node, tag, .. } => {
                    if tag >= RELEASE_TAG_BASE {
                        self.release_clause((tag - RELEASE_TAG_BASE) as usize, now);
                        continue;
                    }
                    if tag == FLUSH_TAG {
                        self.clock.set(now);
                        self.flush_timer = None;
                        self.engine.flush_server(false);
                        self.drain_server_outputs(now);
                        continue;
                    }
                    let i = node.0 as usize;
                    if i >= self.n || self.slots[i].crashed {
                        continue;
                    }
                    match tag {
                        TICK_TAG => {
                            self.sim.set_timer(node, self.tick_period, TICK_TAG);
                            let out = self.slots[i].core.tick(now);
                            self.apply_output(i, out, now);
                        }
                        RESUME_TAG => {
                            self.slots[i].waiting = false;
                            self.advance_script(i, now);
                        }
                        RECONNECT_TAG => {
                            self.slots[i].waiting = false;
                            self.slots[i].disconnected = false;
                            self.sim.set_connected(node, true);
                            self.advance_script(i, now);
                        }
                        _ => {}
                    }
                }
                Event::Message {
                    from,
                    to,
                    msg,
                    transport,
                } => {
                    let deliveries = if transport == Transport::Link {
                        self.intercept(from, to, msg, now)
                    } else {
                        vec![(from, to, msg)]
                    };
                    for (from, to, msg) in deliveries {
                        self.deliver(from, to, msg, now);
                    }
                }
            }
        }

        // Anything a clause still holds at the deadline stays undelivered
        // (the run is over), but the report records what fired.
        let failures = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.core
                    .failure()
                    .cloned()
                    .map(|f| (ClientId::new(i as u32), f))
            })
            .collect();
        // Volatile servers export straight from the recording tap; the
        // persistent path is filled in by `run_sim`, which still owns
        // the store directory at this point.
        let exported_history = self.recording.as_ref().map(|log| {
            let records = log.lock().expect("recording lock").clone();
            faust_audit::export_records(
                self.n,
                faust_crypto::SigScheme::Hmac,
                None,
                records,
                Some(self.history.clone()),
            )
            .encode()
        });
        SimRunReport {
            history: self.history,
            notifications: self.slots.into_iter().map(|s| s.notifications).collect(),
            failures,
            fork_fired: self.fork_fired,
            dirty_fired: self.dirty_fired,
            crash_time: self.crash_time,
            wipe_detector: self.wipe_detector,
            metrics: self.sim.metrics().clone(),
            final_time: self.sim.now(),
            exported_history,
        }
    }
}

/// Executes one scenario under virtual time and returns its report.
///
/// Persistent scenarios run in a scratch directory under the system temp
/// dir, removed before and after the run — every invocation starts from
/// a clean slate, which the reproducibility contract requires.
pub fn run_sim(scenario: &SimScenario) -> SimRunReport {
    let store_dir = match &scenario.server {
        ServerSpec::Volatile => None,
        ServerSpec::Persistent { .. } => Some(scratch_dir()),
    };
    if let Some(dir) = &store_dir {
        std::fs::remove_dir_all(dir).ok();
    }
    let harness = Harness::new(scenario, store_dir.as_ref());
    let mut report = harness.run(scenario.deadline);
    if let Some(dir) = &store_dir {
        // The harness (and with it every file handle) is gone; export
        // the real snapshot + WAL before wiping the scratch directory.
        report.exported_history = faust_audit::export_store_dir(
            dir,
            faust_crypto::SigScheme::Hmac,
            Some(report.history.clone()),
        )
        .ok()
        .map(|session| session.encode());
        std::fs::remove_dir_all(dir).ok();
    }
    report
}

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

/// Checks the run's oracles; `Err` carries a human-readable account of
/// the first violation.
///
/// * **No false positives**: if no adversarial clause actually fired,
///   there must be no failure notification, and no failure may precede
///   the first adversarial event; on a structurally benign plan
///   additionally every user op completes (wait-freedom) and the
///   history is linearizable.
/// * **No false negatives**: every guaranteed-observable fork that fired
///   with room to detect (slack before the deadline, and — for crash
///   forks — a detector client in position over a quiescent wire, see
///   [`SimRunReport::wipe_detector`]) must produce a failure
///   notification.
/// * **Universal safety**: the completed history is never weak-fork-lin
///   *violated* — the paper's guarantee holds under every adversary the
///   DSL can express.
pub fn check_oracles(scenario: &SimScenario, report: &SimRunReport) -> Result<(), String> {
    let adversarial_fired = !report.fork_fired.is_empty() || !report.dirty_fired.is_empty();

    // No false positives.
    if !adversarial_fired && !report.failures.is_empty() {
        return Err(format!(
            "false positive: no adversarial clause fired but clients failed: {:?}",
            report.failures
        ));
    }
    if scenario.plan.is_benign(&scenario.server) {
        let expected = scenario.user_ops();
        let completed = report.completed_ops();
        if completed != expected {
            return Err(format!(
                "wait-freedom: benign run completed {completed}/{expected} user ops"
            ));
        }
        if !faust_consistency::check_wait_freedom(&report.history, &[]) {
            return Err("wait-freedom checker rejected a benign run".into());
        }
        if expected <= faust_consistency::MAX_OPS {
            let verdict = faust_consistency::check_linearizability(
                &report.history,
                &faust_consistency::Budget::default(),
            );
            if let faust_consistency::Verdict::Violated(why) = verdict {
                return Err(format!("benign run's history is not linearizable: {why}"));
            }
        }
    }

    // Failures must not precede the first adversarial event of the run
    // (a refinement of the no-false-positive oracle: before anything
    // fired, the run is indistinguishable from an honest one).
    let first_adversarial = report
        .fork_fired
        .iter()
        .map(|&(t, _, _)| t)
        .chain(report.dirty_fired.iter().map(|&(t, _)| t))
        .min();
    if let (Some(adv), Some(fail)) = (first_adversarial, report.first_failure_time()) {
        if fail < adv {
            return Err(format!(
                "a client failed at t={fail}, before the first adversarial event at t={adv}"
            ));
        }
    }

    // No false negatives, for forks that are guaranteed observable.
    for &(at, label, victim) in &report.fork_fired {
        if at + scenario.detection_slack() > scenario.deadline {
            continue; // fired too close to the deadline to demand detection
        }
        match victim {
            // Value tamper: the DATA-signature check fires on the very
            // delivery, at the victim. (The victim may legitimately have
            // failed *before* this fork fired, through another clause or
            // a failure relayed over the offline channel — eventual
            // failure is all the guarantee promises.)
            Some(v) => {
                if report.failure_time(v).is_none() {
                    return Err(format!(
                        "false negative: {label} fired at t={at} against {v} but it never failed"
                    ));
                }
            }
            // Global fork (state wipe): detection is only guaranteed
            // when a detector client was in position at crash time and
            // no in-flight frame could re-teach the restarted server
            // (see `SimRunReport::wipe_detector`).
            None => {
                if report.wipe_detector != Some(true) {
                    continue;
                }
                if report.failures.is_empty() {
                    return Err(format!(
                        "false negative: {label} fired at t={at} with a detector in position \
                         but no client failed by t={}",
                        report.final_time
                    ));
                }
            }
        }
    }

    // Universal safety: completed ops are never weak-fork-lin violated.
    if report.history.complete_ops().count() <= faust_consistency::MAX_OPS {
        let verdict = faust_consistency::check_weak_fork_linearizability(
            &report.history,
            &faust_consistency::Budget::default(),
        );
        if let faust_consistency::Verdict::Violated(why) = verdict {
            return Err(format!("history violates weak fork-linearizability: {why}"));
        }
    }

    // Offline-auditor agreement: the exported session history is a
    // second, independent oracle that shares no code with the online
    // fail-aware machinery (see `faust-audit`).
    check_audit_agreement(scenario, report)?;
    Ok(())
}

/// Cross-checks the run against the offline auditor.
///
/// * The export must always decode and audit cleanly — any container
///   error or panic is a bug regardless of the plan.
/// * If no adversarial clause fired, the run is indistinguishable from
///   an honest one and the auditor must certify it.
/// * If a state wipe destroyed committed operations (a crash on a
///   volatile server, or a `WipeState` tamper, after some client
///   completed an op), the exported post-crash session cannot account
///   for the pre-crash schedule and the auditor must localize a
///   divergence — even when no online client happened to observe the
///   fork.
fn check_audit_agreement(scenario: &SimScenario, report: &SimRunReport) -> Result<(), String> {
    let Some(bytes) = &report.exported_history else {
        // Export is only allowed to be missing when the plan tampers
        // with the store directory out from under the server.
        if scenario.plan.crash().is_some() {
            return Ok(());
        }
        return Err("run produced no exported session history".into());
    };
    let session = faust_audit::SessionHistory::decode(bytes)
        .map_err(|err| format!("exported history does not decode: {err}"))?;
    let registry = KeySet::generate_with(
        faust_crypto::SigScheme::Hmac,
        scenario.n(),
        &scenario.seed.to_be_bytes(),
    )
    .registry();
    let audit_report = faust_audit::audit(&session, &registry)
        .map_err(|err| format!("auditor rejected the exported history outright: {err}"))?;

    let adversarial_fired = !report.fork_fired.is_empty() || !report.dirty_fired.is_empty();
    if !adversarial_fired && !audit_report.verdict.is_certified() {
        return Err(format!(
            "auditor diverged on a run with no adversarial event: {:?}",
            audit_report.verdict
        ));
    }

    // A wipe that destroyed a completed operation is always provable
    // offline: the completed op's timestamp cannot appear in the
    // surviving schedule.
    let wiped = match &scenario.server {
        ServerSpec::Volatile => report.crash_time,
        ServerSpec::Persistent { .. } => (scenario.plan.crash().map(|s| s.tamper)
            == Some(WalTamper::WipeState))
        .then_some(report.crash_time)
        .flatten(),
    };
    if let Some(crash_time) = wiped {
        let completed_before_crash = report.notifications.iter().any(|ns| {
            ns.iter()
                .any(|(t, n)| matches!(n, Notification::Completed(_)) && *t < crash_time)
        });
        if completed_before_crash && audit_report.verdict.is_certified() {
            return Err(format!(
                "auditor certified a session whose server lost committed state in a crash \
                 at t={crash_time}"
            ));
        }
    }
    Ok(())
}

/// Runs a scenario and checks its oracles in one step.
///
/// # Errors
///
/// The oracle violation, rendered for humans.
pub fn run_and_check(scenario: &SimScenario) -> Result<SimRunReport, String> {
    let report = run_sim(scenario);
    check_oracles(scenario, &report)?;
    Ok(report)
}

/// Runs a scenario twice and verifies the reports are bit-identical —
/// the reproducibility oracle.
///
/// # Errors
///
/// A description of the first diverging field.
pub fn check_determinism(scenario: &SimScenario) -> Result<(), String> {
    let a = run_sim(scenario);
    let b = run_sim(scenario);
    if a.fingerprint() != b.fingerprint() {
        return Err(format!(
            "non-deterministic rerun: first {:?}\n=== second {:?}",
            a.fingerprint(),
            b.fingerprint()
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scenario generation
// ---------------------------------------------------------------------------

/// Derives a full randomized scenario from one seed: client count,
/// scripts, server spec, and a fault plan drawn from benign, forking,
/// and adversarial-network families. `gen_scenario(seed)` is a pure
/// function — the seed alone reproduces the run.
pub fn gen_scenario(seed: u64) -> SimScenario {
    let mut rng = faust_sim::SmallRng::seed_from_u64(seed ^ 0x5eed_fa57_0000_0001);
    let n = rng.gen_range_inclusive(2, 4) as usize;
    let ops_per_client = rng.gen_range_inclusive(2, 4) as usize;
    let deadline = 6_000;
    let workloads = crate::driver::random_faust_workloads(n, ops_per_client, 0.6, seed);

    let server = match rng.gen_index(3) {
        0 => ServerSpec::Volatile,
        1 => ServerSpec::Persistent {
            durability: SimDurability::Always,
            snapshot_every: [0, 4][rng.gen_index(2)],
        },
        _ => ServerSpec::Persistent {
            durability: SimDurability::Group {
                max_records: rng.gen_range_inclusive(2, 16),
                max_wait_ticks: rng.gen_range_inclusive(5, 40),
            },
            snapshot_every: 0,
        },
    };

    // Fault windows sit in the first half of the run so detection (and
    // outage release + completion) always has slack before the deadline.
    let window = |rng: &mut faust_sim::SmallRng| {
        let start = rng.gen_range_inclusive(50, 2_000);
        let len = rng.gen_range_inclusive(100, 1_500);
        TimeWindow::new(start, (start + len).min(deadline / 2))
    };
    // Victims are kept distinct across clauses so plans never depend on
    // the first-match-wins tie-break.
    let mut free: Vec<u32> = (0..n as u32).collect();
    let pick_victim = |rng: &mut faust_sim::SmallRng, free: &mut Vec<u32>| {
        let i = rng.gen_index(free.len());
        ClientId::new(free.swap_remove(i))
    };

    let mut clauses = Vec::new();
    match rng.gen_index(4) {
        // Honest or benign-faults run: partitions that delay, kills
        // that lose frames (recovered by the client's resend window),
        // and reply drops that force the server's duplicate cache to
        // answer the whole replay. All must stay invisible.
        0 => {
            for _ in 0..rng.gen_index(3) {
                if free.is_empty() {
                    break;
                }
                let client = pick_victim(&mut rng, &mut free);
                clauses.push(match rng.gen_index(3) {
                    0 => FaultClause::Outage {
                        client,
                        window: window(&mut rng),
                    },
                    1 => FaultClause::KillConn {
                        client,
                        at: rng.gen_range_inclusive(50, deadline / 2),
                    },
                    _ => FaultClause::DropReplies {
                        client,
                        window: window(&mut rng),
                    },
                });
            }
            if matches!(
                server,
                ServerSpec::Persistent {
                    durability: SimDurability::Always,
                    ..
                }
            ) && rng.gen_bool(0.5)
            {
                // Honest crash/restart: invisible under Always (nothing
                // is ever held back or lost).
                clauses.push(FaultClause::CrashRestart(CrashSpec {
                    after_messages: rng.gen_range_inclusive(1, 12) as usize,
                    tamper: WalTamper::None,
                }));
            }
        }
        // Forking adversary: state wipe on restart.
        1 => {
            let after_messages = rng.gen_range_inclusive(2, 14) as usize;
            let tamper = match server {
                ServerSpec::Volatile => WalTamper::None, // volatile restart wipes anyway
                ServerSpec::Persistent { .. } => WalTamper::WipeState,
            };
            clauses.push(FaultClause::CrashRestart(CrashSpec {
                after_messages,
                tamper,
            }));
        }
        // Rollback adversary: tail truncation (observability depends on
        // what the tail held — universal-safety oracle only).
        2 => {
            let tamper = match server {
                ServerSpec::Volatile => WalTamper::None,
                ServerSpec::Persistent { .. } => {
                    WalTamper::TruncateTail(rng.gen_range_inclusive(1, 6) as usize)
                }
            };
            clauses.push(FaultClause::CrashRestart(CrashSpec {
                after_messages: rng.gen_range_inclusive(4, 16) as usize,
                tamper,
            }));
        }
        // Adversarial network / Byzantine replies.
        _ => {
            for _ in 0..(1 + rng.gen_index(2)) {
                if free.is_empty() {
                    break;
                }
                let client = pick_victim(&mut rng, &mut free);
                let w = window(&mut rng);
                clauses.push(match rng.gen_index(4) {
                    0 => FaultClause::Reorder { client, window: w },
                    1 => FaultClause::Duplicate { client, window: w },
                    2 => FaultClause::ReplyReplay { client, window: w },
                    _ => FaultClause::TamperReadValue { client, window: w },
                });
            }
        }
    }
    // A volatile server with a crash clause forks; mark it as such by
    // construction (handled in the harness via the crash mirror).
    let fork_on_volatile_crash = matches!(server, ServerSpec::Volatile)
        && clauses
            .iter()
            .any(|c| matches!(c, FaultClause::CrashRestart(_)));

    let mut scenario = SimScenario {
        seed,
        workloads,
        server,
        plan: FaultPlan { clauses },
        deadline,
        tick_period: 25,
        dummy_reads: true,
        link_delay: DelayModel::Uniform(1, rng.gen_range_inclusive(3, 12)),
        offline_delay: DelayModel::Uniform(20, 80),
    };
    if fork_on_volatile_crash {
        // Volatile + restart = guaranteed state wipe; encode it so the
        // harness records the fork.
        for clause in &mut scenario.plan.clauses {
            if let FaultClause::CrashRestart(spec) = clause {
                spec.tamper = WalTamper::WipeState;
            }
        }
    }
    scenario
}

// ---------------------------------------------------------------------------
// Shrinking failure reporter
// ---------------------------------------------------------------------------

/// A reproduced-and-minimized oracle violation, ready to render.
#[derive(Debug)]
pub struct SimFailure {
    /// The failing scenario as originally run.
    pub scenario: SimScenario,
    /// The oracle's account of the violation.
    pub error: String,
    /// The same scenario with a 1-minimal fault plan that still fails.
    pub minimized: SimScenario,
    /// The oracle error of the minimized run.
    pub minimized_error: String,
}

/// Minimizes a failing scenario's fault plan by delta debugging: clauses
/// are removed while the run (same seed, same everything else) still
/// violates an oracle. The result's plan is 1-minimal — dropping any
/// remaining clause makes the failure disappear. If the failure is
/// seed-only (no clause needed), the minimized plan is empty.
pub fn investigate(scenario: &SimScenario, error: String) -> SimFailure {
    let kept = faust_sim::shrink(&scenario.plan.clauses, |subset| {
        let mut candidate = scenario.clone();
        candidate.plan.clauses = subset.to_vec();
        run_and_check(&candidate).is_err()
    });
    let mut minimized = scenario.clone();
    minimized.plan.clauses = kept;
    let minimized_error = run_and_check(&minimized)
        .err()
        .unwrap_or_else(|| error.clone());
    SimFailure {
        scenario: scenario.clone(),
        error,
        minimized,
        minimized_error,
    }
}

impl SimFailure {
    /// Renders the failure as the reproduction recipe printed to the log
    /// and uploaded as a CI artifact: seed, oracle error, minimized
    /// plan, and the command to replay it.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "=== faust-sim oracle violation ===");
        let _ = writeln!(out, "seed:  {}", self.scenario.seed);
        let _ = writeln!(out, "error: {}", self.error);
        let _ = writeln!(
            out,
            "minimized fault plan ({} of {} clause(s), error: {}):",
            self.minimized.plan.clauses.len(),
            self.scenario.plan.clauses.len(),
            self.minimized_error,
        );
        for clause in &self.minimized.plan.clauses {
            let _ = writeln!(out, "  - {clause:?}");
        }
        let _ = writeln!(out, "server: {:?}", self.scenario.server);
        let _ = writeln!(out, "workloads: {:?}", self.scenario.workloads);
        let _ = writeln!(
            out,
            "reproduce: FAUST_SIM_SEED={} cargo test --release --test sim_faults \
             reproduce_seed -- --nocapture",
            self.scenario.seed
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    fn honest_scenario(seed: u64, server: ServerSpec) -> SimScenario {
        SimScenario {
            seed,
            workloads: crate::driver::random_faust_workloads(3, 3, 0.6, seed),
            server,
            plan: FaultPlan::honest(),
            deadline: 6_000,
            tick_period: 25,
            dummy_reads: true,
            link_delay: DelayModel::Uniform(1, 8),
            offline_delay: DelayModel::Uniform(20, 80),
        }
    }

    #[test]
    fn honest_volatile_run_passes_oracles() {
        let scenario = honest_scenario(1, ServerSpec::Volatile);
        let report = run_and_check(&scenario).expect("honest run");
        assert_eq!(report.completed_ops(), scenario.user_ops());
        assert!(report.failures.is_empty());
    }

    #[test]
    fn honest_group_commit_run_releases_replies_on_virtual_deadlines() {
        let scenario = honest_scenario(
            2,
            ServerSpec::Persistent {
                durability: SimDurability::Group {
                    max_records: 64,    // far larger than the traffic: only
                    max_wait_ticks: 15, // the virtual deadline releases
                },
                snapshot_every: 0,
            },
        );
        let report = run_and_check(&scenario).expect("honest group-commit run");
        assert_eq!(report.completed_ops(), scenario.user_ops());
    }

    #[test]
    fn outage_is_invisible_and_release_preserves_fifo() {
        let mut scenario = honest_scenario(3, ServerSpec::Volatile);
        scenario.plan.clauses.push(FaultClause::Outage {
            client: c(0),
            window: TimeWindow::new(100, 900),
        });
        let report = run_and_check(&scenario).expect("outage is benign");
        assert!(report.failures.is_empty());
        assert_eq!(report.completed_ops(), scenario.user_ops());
    }

    #[test]
    fn kill_conn_is_invisible_thanks_to_the_resend_window() {
        for seed in [12, 13, 14] {
            let mut scenario = honest_scenario(seed, ServerSpec::Volatile);
            // Kill while traffic is in full swing: frames die in both
            // directions and the resend window must recover every op.
            scenario.plan.clauses.push(FaultClause::KillConn {
                client: c(0),
                at: 120,
            });
            scenario.plan.clauses.push(FaultClause::KillConn {
                client: c(1),
                at: 300,
            });
            let report = run_and_check(&scenario).expect("connection kills are benign");
            assert!(report.failures.is_empty());
            assert_eq!(report.completed_ops(), scenario.user_ops());
        }
    }

    #[test]
    fn kill_conn_under_group_commit_recovers_held_replies_from_the_duplicate_cache() {
        // The nasty interleaving: a reply held back for group commit is
        // force-flushed into the dying connection and lost; the replay
        // must be answered from the duplicate cache, exactly once.
        let mut scenario = honest_scenario(
            15,
            ServerSpec::Persistent {
                durability: SimDurability::Group {
                    max_records: 64,
                    max_wait_ticks: 20,
                },
                snapshot_every: 0,
            },
        );
        scenario.plan.clauses.push(FaultClause::KillConn {
            client: c(0),
            at: 140,
        });
        let report = run_and_check(&scenario).expect("kill under group commit is benign");
        assert!(report.failures.is_empty());
        assert_eq!(report.completed_ops(), scenario.user_ops());
    }

    #[test]
    fn dropped_replies_are_recovered_by_the_end_of_window_resend() {
        for seed in [16, 17] {
            let mut scenario = honest_scenario(seed, ServerSpec::Volatile);
            // A long ack-blackout: SUBMITs keep advancing the server
            // while every reply is eaten, so the reconnect's replay is
            // answered entirely from the duplicate cache.
            scenario.plan.clauses.push(FaultClause::DropReplies {
                client: c(0),
                window: TimeWindow::new(100, 1_200),
            });
            let report = run_and_check(&scenario).expect("dropped replies are recovered");
            assert!(report.failures.is_empty());
            assert_eq!(report.completed_ops(), scenario.user_ops());
        }
    }

    #[test]
    fn kill_conn_scenarios_rerun_bit_identically() {
        let mut scenario = honest_scenario(18, ServerSpec::Volatile);
        scenario.plan.clauses.push(FaultClause::KillConn {
            client: c(2),
            at: 200,
        });
        scenario.plan.clauses.push(FaultClause::DropReplies {
            client: c(0),
            window: TimeWindow::new(150, 700),
        });
        check_determinism(&scenario).expect("bit-identical rerun");
    }

    #[test]
    fn honest_persistent_crash_restart_is_invisible() {
        let mut scenario = honest_scenario(
            4,
            ServerSpec::Persistent {
                durability: SimDurability::Always,
                snapshot_every: 0,
            },
        );
        scenario
            .plan
            .clauses
            .push(FaultClause::CrashRestart(CrashSpec {
                after_messages: 5,
                tamper: WalTamper::None,
            }));
        let report = run_and_check(&scenario).expect("honest restart is invisible");
        assert!(report.crash_time.is_some(), "the crash must actually fire");
        assert!(report.failures.is_empty());
    }

    #[test]
    fn volatile_crash_fork_is_detected() {
        let mut scenario = honest_scenario(5, ServerSpec::Volatile);
        scenario
            .plan
            .clauses
            .push(FaultClause::CrashRestart(CrashSpec {
                after_messages: 6,
                tamper: WalTamper::WipeState,
            }));
        let report = run_sim(&scenario);
        assert!(report.crash_time.is_some());
        check_oracles(&scenario, &report).expect("fork detected");
        assert!(
            !report.failures.is_empty(),
            "state wipe after completed ops must be flagged"
        );
    }

    #[test]
    fn tampered_read_value_is_detected_at_the_victim() {
        let mut scenario = honest_scenario(6, ServerSpec::Volatile);
        // Make sure reads happen: c1 reads c0's register after a write.
        scenario.workloads = vec![
            vec![
                FaustWorkloadOp::Write(Value::from("x1")),
                FaustWorkloadOp::Write(Value::from("x2")),
            ],
            vec![
                FaustWorkloadOp::Pause(200),
                FaustWorkloadOp::Read(c(0)),
                FaustWorkloadOp::Read(c(0)),
            ],
        ];
        scenario.plan.clauses.push(FaultClause::TamperReadValue {
            client: c(1),
            window: TimeWindow::new(150, 3_000),
        });
        let report = run_sim(&scenario);
        check_oracles(&scenario, &report).expect("oracles");
        assert!(
            report
                .fork_fired
                .iter()
                .any(|(_, l, _)| *l == "tamper-read-value"),
            "the tamper must fire: {:?}",
            report.dirty_fired
        );
        assert!(report.failure_time(c(1)).is_some(), "victim must fail");
    }

    #[test]
    fn seeded_reruns_are_bit_identical() {
        for seed in [7, 8, 9] {
            let scenario = gen_scenario(seed);
            check_determinism(&scenario).expect("bit-identical rerun");
        }
    }

    #[test]
    fn investigate_minimizes_to_the_culprit_clause() {
        // Three clauses; only the state-wipe crash causes the failure
        // the oracle would report if detection were broken. We force a
        // "failure" by checking a synthetic predicate: the plan minus
        // the crash clause passes, with it the run flags clients. Use
        // the real pipeline: a scenario whose oracle violation is
        // guaranteed — a fork fired too *early* relative to nothing: we
        // simulate by asserting on a scenario that genuinely fails its
        // oracles is hard to fabricate, so instead check the shrinker
        // wiring: minimize "plan still produces failures".
        let mut scenario = honest_scenario(10, ServerSpec::Volatile);
        scenario.plan.clauses = vec![
            FaultClause::Outage {
                client: c(1),
                window: TimeWindow::new(100, 400),
            },
            FaultClause::CrashRestart(CrashSpec {
                after_messages: 6,
                tamper: WalTamper::WipeState,
            }),
            FaultClause::Outage {
                client: c(2),
                window: TimeWindow::new(200, 500),
            },
        ];
        let kept = faust_sim::shrink(&scenario.plan.clauses, |subset| {
            let mut candidate = scenario.clone();
            candidate.plan.clauses = subset.to_vec();
            !run_sim(&candidate).failures.is_empty()
        });
        assert_eq!(
            kept,
            vec![FaultClause::CrashRestart(CrashSpec {
                after_messages: 6,
                tamper: WalTamper::WipeState,
            })],
            "only the forking clause should survive shrinking"
        );
    }

    #[test]
    fn failure_report_renders_seed_and_plan() {
        let scenario = gen_scenario(11);
        let failure = investigate(&scenario, "synthetic error".into());
        let rendered = failure.render();
        assert!(rendered.contains("seed:  11"));
        assert!(rendered.contains("FAUST_SIM_SEED=11"));
        assert!(rendered.contains("synthetic error"));
    }
}
