//! Thread-per-client runtime for the *full* FAUST stack: USTOR through a
//! server engine thread, plus direct client-to-client channels standing in
//! for the offline communication method — the complete Figure 1 topology
//! on real OS threads.
//!
//! The server side is the transport-agnostic engine of `faust-ustor`
//! behind a [`faust_net`] transport, so the same runtime runs over
//! in-process channels ([`run_threaded_faust`]) or loopback TCP with
//! length-prefixed frames ([`run_threaded_faust_tcp`]). The deterministic
//! simulator remains the reference environment for experiments; these
//! runtimes demonstrate that the same sans-io protocol state machines run
//! unchanged under genuine concurrency, and that detection and stability
//! behave identically there.

use crate::client::{FaustClient, FaustConfig, UserOp};
use crate::events::{FailReason, Notification};
use crate::handle::{offline_mesh, Event, FaustHandle, SessionCore};
use faust_crypto::sig::{KeySet, SigScheme};
use faust_net::{channel, tcp, ClientConn, TcpServerTransport};
use faust_types::ClientId;
use faust_ustor::Server;
use std::time::Duration;

/// Configuration of a threaded FAUST run.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedFaustConfig {
    /// FAUST layer tuning (probe period is interpreted in milliseconds).
    pub faust: FaustConfig,
    /// Interval between protocol ticks.
    pub tick_interval: Duration,
    /// Wall-clock duration of the run after workloads are submitted.
    pub run_for: Duration,
    /// Signature scheme for the run's keys, derived from the same
    /// `key_seed` on every thread. [`SigScheme::Ed25519`] makes the
    /// registry public-key-only, so it can also be handed to a server
    /// engine for sound ingress verification; [`SigScheme::Hmac`] is the
    /// fast path.
    pub scheme: SigScheme,
}

impl Default for ThreadedFaustConfig {
    fn default() -> Self {
        ThreadedFaustConfig {
            faust: FaustConfig {
                probe_period: 50, // ms of wall time
                dummy_reads: true,
                commit_mode: faust_ustor::CommitMode::Immediate,
                pipeline: 1,
            },
            tick_interval: Duration::from_millis(10),
            run_for: Duration::from_millis(600),
            scheme: SigScheme::Hmac,
        }
    }
}

/// Outcome of a threaded FAUST run.
#[derive(Debug)]
pub struct ThreadedFaustReport {
    /// Notifications per client in arrival order (with ms offsets).
    pub notifications: Vec<Vec<(u64, Notification)>>,
    /// Clients that emitted `fail`, with reasons.
    pub failures: Vec<(ClientId, FailReason)>,
    /// Final engine statistics from the server thread.
    pub engine_stats: faust_ustor::EngineStats,
}

impl ThreadedFaustReport {
    /// Completed user operations at `client`.
    pub fn completions(&self, client: ClientId) -> usize {
        self.notifications[client.index()]
            .iter()
            .filter(|(_, n)| matches!(n, Notification::Completed(_)))
            .count()
    }

    /// The last stability cut reported by `client`.
    pub fn last_cut(&self, client: ClientId) -> Option<Vec<u64>> {
        self.notifications[client.index()]
            .iter()
            .rev()
            .find_map(|(_, n)| match n {
                Notification::Stable(cut) => Some(cut.w.clone()),
                _ => None,
            })
    }
}

/// Runs `n` FAUST clients on threads against `server` (on its own engine
/// thread) over the in-process channel transport, with direct inter-client
/// channels as the offline medium.
///
/// Each client first submits its entire workload, then keeps ticking
/// (dummy reads + probes) until `config.run_for` elapses.
///
/// # Panics
///
/// Panics if `workloads.len() != n` or a thread panics.
pub fn run_threaded_faust(
    n: usize,
    workloads: Vec<Vec<UserOp>>,
    server: Box<dyn Server + Send>,
    config: ThreadedFaustConfig,
    key_seed: &[u8],
) -> ThreadedFaustReport {
    let (transport, conns) = channel::pair(n);
    let engine_thread = crate::runtime::spawn_engine(n, server, transport);
    run_threaded_faust_over(n, workloads, conns, config, key_seed, engine_thread)
}

/// [`run_threaded_faust`] with the engine behind loopback TCP: every
/// client↔server message crosses a real socket as a length-prefixed
/// frame. The offline client-to-client channel remains in-process (the
/// paper models it as a separate medium anyway).
///
/// # Errors
///
/// Propagates socket errors from binding or connecting.
///
/// # Panics
///
/// Panics if `workloads.len() != n` or a thread panics.
pub fn run_threaded_faust_tcp(
    n: usize,
    workloads: Vec<Vec<UserOp>>,
    server: Box<dyn Server + Send>,
    config: ThreadedFaustConfig,
    key_seed: &[u8],
) -> std::io::Result<ThreadedFaustReport> {
    let transport = TcpServerTransport::bind("127.0.0.1:0", n)?;
    let addr = transport.local_addr();
    let engine_thread = crate::runtime::spawn_engine(n, server, transport);
    let conns = (0..n)
        .map(|i| tcp::connect(addr, ClientId::new(i as u32)))
        .collect::<std::io::Result<Vec<_>>>()?;
    Ok(run_threaded_faust_over(
        n,
        workloads,
        conns,
        config,
        key_seed,
        engine_thread,
    ))
}

/// The transport-independent core: runs the client threads over pre-built
/// connections; the engine runs behind `engine_thread` (see
/// [`crate::runtime::spawn_engine_with`] for custom engine setups such as
/// ingress verification).
///
/// # Panics
///
/// Panics if `workloads.len() != n`, the connections are not in client
/// order, or a thread panics.
pub fn run_threaded_faust_over(
    n: usize,
    workloads: Vec<Vec<UserOp>>,
    conns: Vec<ClientConn>,
    config: ThreadedFaustConfig,
    key_seed: &[u8],
    engine_thread: std::thread::JoinHandle<faust_ustor::EngineStats>,
) -> ThreadedFaustReport {
    let session = FaustSession::new(n, &config, key_seed);
    run_faust_session(session, workloads, conns, config, engine_thread).0
}

/// The FAUST client side of a deployment, detached from any particular
/// server incarnation — protocol state machines plus a continuing
/// protocol clock.
///
/// A session can be run against a server, paused (clients disconnect,
/// the server engine winds down), and **resumed** against a *new* server
/// incarnation with all client state — version vectors, stability
/// machinery, detected failures — intact. That is exactly what a
/// kill-and-restart of the server looks like from the clients' side, and
/// what makes the crash-recovery end-to-end tests honest: whether the
/// restarted server is caught must depend on the server's *state*, not
/// on clients having forgotten what they had seen.
pub struct FaustSession {
    clients: Vec<FaustClient>,
    clock_ms: u64,
}

impl FaustSession {
    /// Builds `n` fresh FAUST clients with keys derived from `key_seed`
    /// under `config.scheme`, protocol-tuned by `config.faust`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, config: &ThreadedFaustConfig, key_seed: &[u8]) -> Self {
        assert!(n > 0, "at least one client");
        let keys = KeySet::generate_with(config.scheme, n, key_seed);
        let clients = (0..n)
            .map(|i| {
                FaustClient::new(
                    ClientId::new(i as u32),
                    n,
                    keys.keypair(i as u32).expect("generated").clone(),
                    keys.registry(),
                    config.faust,
                )
            })
            .collect();
        FaustSession {
            clients,
            clock_ms: 0,
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// The session's protocol clock: milliseconds of run time consumed
    /// so far. Resumed runs continue from here, so client-side timers
    /// (probe periods, stability bookkeeping) never see time move
    /// backwards across a server restart.
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Read access to a client's protocol state (diagnostics and tests).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn client(&self, id: ClientId) -> &FaustClient {
        &self.clients[id.index()]
    }
}

/// Runs one phase of a [`FaustSession`] against whatever server the
/// caller stood up behind `conns`/`engine_thread`, then hands the
/// session back for the next phase.
///
/// Each client thread is a [`FaustHandle`] event loop over its
/// connection (the public client API — the harness is a thin wrapper):
/// the phase workload is submitted up front as pipelined tickets, then
/// the handle keeps ticking (probes, dummy reads) until `config.run_for`
/// elapses; `config.scheme`/`config.faust` are ignored here — they were
/// fixed when the session was created. The in-process offline medium is
/// an [`offline_mesh`].
///
/// # Panics
///
/// Panics if `workloads.len()` or `conns.len()` disagree with the
/// session's client count, connections are out of client order, or a
/// thread panics.
pub fn run_faust_session(
    mut session: FaustSession,
    workloads: Vec<Vec<UserOp>>,
    conns: Vec<ClientConn>,
    config: ThreadedFaustConfig,
    engine_thread: std::thread::JoinHandle<faust_ustor::EngineStats>,
) -> (ThreadedFaustReport, FaustSession) {
    let n = session.num_clients();
    let clock_base = session.clock_ms;

    assert_eq!(workloads.len(), n, "one workload per client");
    assert_eq!(conns.len(), n, "one connection per client");
    let links = offline_mesh(n);

    let mut handles = Vec::with_capacity(n);
    let clients = std::mem::take(&mut session.clients);
    for (i, (((workload, conn), proto), link)) in workloads
        .into_iter()
        .zip(conns)
        .zip(clients)
        .zip(links)
        .enumerate()
    {
        let id = ClientId::new(i as u32);
        assert_eq!(conn.id(), id, "connections must be in client order");
        let cfg = config;

        handles.push(std::thread::spawn(move || {
            let mut handle = FaustHandle::from_core(
                SessionCore::new(proto),
                cfg.tick_interval,
                clock_base,
                Box::new(conn),
            )
            .with_offline(link);
            // Submit the whole workload up front; the session pipelines
            // what fits its window and queues the rest.
            for op in workload {
                match op {
                    UserOp::Write(value) => handle.write(value),
                    UserOp::Read(register) => handle.read(register),
                };
            }
            let events = handle.run_for(cfg.run_for);
            let (core, end_ms) = handle.into_core();
            let log: Vec<(u64, Notification)> = events
                .into_iter()
                .filter_map(|(t, event)| {
                    let note = match event {
                        Event::Completed { completion, .. } => Notification::Completed(completion),
                        Event::Stable { cut } => Notification::Stable(cut),
                        Event::Violation { reason } => Notification::Failed(reason),
                        // The engine outlives the phase; a disconnect can
                        // only be the phase ending.
                        Event::Disconnected { .. }
                        | Event::Reconnecting { .. }
                        | Event::Resumed => return None,
                    };
                    Some((t, note))
                })
                .collect();
            (log, core.into_client(), end_ms)
        }));
    }

    let mut notifications = Vec::with_capacity(n);
    let mut failures = Vec::new();
    let mut clock_ms = clock_base + config.run_for.as_millis() as u64;
    for (i, handle) in handles.into_iter().enumerate() {
        let (log, proto, end_ms) = handle.join().expect("client thread panicked");
        notifications.push(log);
        // A failure sticks to the client (it halted), so a resumed
        // session reports it again in every subsequent phase.
        if let Some(reason) = proto.failure().cloned() {
            failures.push((ClientId::new(i as u32), reason));
        }
        clock_ms = clock_ms.max(end_ms);
        session.clients.push(proto);
    }
    session.clock_ms = clock_ms;
    let engine_stats = engine_thread.join().expect("server thread panicked");
    (
        ThreadedFaustReport {
            notifications,
            failures,
            engine_stats,
        },
        session,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_types::Value;
    use faust_ustor::adversary::SplitBrainServer;
    use faust_ustor::UstorServer;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    #[test]
    fn threaded_faust_completes_and_stabilizes() {
        let workloads = vec![
            vec![
                UserOp::Write(Value::from("a1")),
                UserOp::Write(Value::from("a2")),
            ],
            vec![UserOp::Read(c(0))],
            vec![UserOp::Write(Value::from("c1"))],
        ];
        let report = run_threaded_faust(
            3,
            workloads,
            Box::new(UstorServer::new(3)),
            ThreadedFaustConfig::default(),
            b"threaded-faust",
        );
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.completions(c(0)), 2);
        assert_eq!(report.completions(c(1)), 1);
        // Stability spreads: C0's ops become stable w.r.t. everyone.
        let cut = report.last_cut(c(0)).expect("cuts issued");
        assert!(
            cut.iter().all(|&w| w >= 2),
            "expected full stability, got {cut:?}"
        );
    }

    #[test]
    fn threaded_faust_detects_forks() {
        let server = SplitBrainServer::new(2, vec![vec![c(0)], vec![c(1)]], 0);
        let workloads = vec![
            vec![UserOp::Write(Value::from("a"))],
            vec![UserOp::Write(Value::from("b"))],
        ];
        let report = run_threaded_faust(
            2,
            workloads,
            Box::new(server),
            ThreadedFaustConfig::default(),
            b"threaded-fork",
        );
        assert_eq!(
            report.failures.len(),
            2,
            "both clients must detect the fork: {:?}",
            report.failures
        );
    }
}
