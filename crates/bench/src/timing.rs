//! A small wall-clock benchmarking harness.
//!
//! The repository vendors no benchmarking framework; the benches under
//! `benches/` are plain `harness = false` binaries built on this module.
//! Methodology: warm up, calibrate a batch size that runs for roughly
//! `SAMPLE_TARGET`, time several batches, and report the median — robust
//! against one-off scheduling noise without statistics machinery.

use std::time::{Duration, Instant};

/// Tuning of the measurement loop: how long to warm up, how long one
/// timed sample should run, and how many samples feed the median.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Warm-up duration before calibration.
    pub warmup: Duration,
    /// Target duration of one timed sample.
    pub sample_target: Duration,
    /// Number of timed samples; the median is reported.
    pub samples: usize,
}

impl TimingConfig {
    /// The defaults every bench has always used.
    pub const fn standard() -> Self {
        TimingConfig {
            warmup: Duration::from_millis(20),
            sample_target: Duration::from_millis(60),
            samples: 5,
        }
    }

    /// Quick mode for CI smoke runs: ~10× less wall time per metric,
    /// noisier but still median-of-samples. Selected by
    /// `FAUST_BENCH_QUICK=1` (see [`TimingConfig::from_env`]) or used
    /// directly by the `bench_smoke` binary.
    pub const fn quick() -> Self {
        TimingConfig {
            warmup: Duration::from_millis(5),
            sample_target: Duration::from_millis(10),
            samples: 3,
        }
    }

    /// [`TimingConfig::quick`] when the environment variable
    /// `FAUST_BENCH_QUICK` is `1`, [`TimingConfig::standard`] otherwise.
    pub fn from_env() -> Self {
        match std::env::var("FAUST_BENCH_QUICK") {
            Ok(v) if v == "1" => TimingConfig::quick(),
            _ => TimingConfig::standard(),
        }
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig::standard()
    }
}

/// Result of one benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per timed sample.
    pub batch: u64,
}

impl Measurement {
    /// Iterations per second implied by the median.
    pub fn per_second(&self) -> f64 {
        1e9 / self.ns_per_iter
    }
}

/// Times `f`, prints one formatted line, and returns the measurement.
pub fn bench(name: &str, f: impl FnMut()) -> Measurement {
    let m = bench_quiet(name, f);
    println!(
        "{:<44} {:>12.1} ns/iter {:>14.0} iter/s",
        m.name,
        m.ns_per_iter,
        m.per_second()
    );
    m
}

/// Times `f` which processes `bytes` bytes per iteration; prints
/// throughput alongside latency.
pub fn bench_throughput(name: &str, bytes: usize, f: impl FnMut()) -> Measurement {
    let m = bench_quiet(name, f);
    println!(
        "{:<44} {:>12.1} ns/iter {:>11.1} MiB/s",
        m.name,
        m.ns_per_iter,
        bytes as f64 / (m.ns_per_iter / 1e9) / (1 << 20) as f64
    );
    m
}

/// [`bench()`] without printing (callers format their own report line).
/// Tuning comes from the environment ([`TimingConfig::from_env`]), so
/// `FAUST_BENCH_QUICK=1` flips every existing bench to quick mode.
pub fn bench_quiet(name: &str, f: impl FnMut()) -> Measurement {
    bench_quiet_with(TimingConfig::from_env(), name, f)
}

/// [`bench_quiet`] with explicit tuning.
pub fn bench_quiet_with(config: TimingConfig, name: &str, mut f: impl FnMut()) -> Measurement {
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < config.warmup || warm_iters == 0 {
        f();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
    let batch = ((config.sample_target.as_nanos() as f64 / per_iter.max(1.0)) as u64).max(1);
    let mut samples: Vec<f64> = (0..config.samples.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            start.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    Measurement {
        name: name.to_string(),
        ns_per_iter: samples[samples.len() / 2],
        batch,
    }
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

/// Prints a baseline/improved measurement pair as `ns/batch` report lines
/// plus the speedup factor, and returns that factor so callers can assert
/// on it. Shared by the batched-verification comparisons in
/// `benches/crypto.rs` and `benches/protocol.rs`.
pub fn report_speedup(baseline: &Measurement, improved: &Measurement) -> f64 {
    let speedup = baseline.ns_per_iter / improved.ns_per_iter;
    println!(
        "{:<44} {:>12.1} ns/batch",
        baseline.name, baseline.ns_per_iter
    );
    println!(
        "{:<44} {:>12.1} ns/batch   speedup {:.2}x",
        improved.name, improved.ns_per_iter, speedup
    );
    speedup
}
