//! Traffic metrics collected by the simulator.
//!
//! Per-transport message and byte counters; these feed experiment E5
//! (rounds per operation) and E6 (`O(n)` bytes per request) of DESIGN.md.

use crate::Transport;

/// Counters of simulated network traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages sent on client↔server links.
    pub link_messages_sent: u64,
    /// Bytes sent on client↔server links.
    pub link_bytes_sent: u64,
    /// Link messages actually delivered (sends to crashed nodes are not).
    pub link_messages_delivered: u64,
    /// Messages sent on the offline client↔client channel.
    pub offline_messages_sent: u64,
    /// Bytes sent on the offline channel.
    pub offline_bytes_sent: u64,
    /// Offline messages actually delivered.
    pub offline_messages_delivered: u64,
}

impl Metrics {
    pub(crate) fn record_send(&mut self, transport: Transport, bytes: usize) {
        match transport {
            Transport::Link => {
                self.link_messages_sent += 1;
                self.link_bytes_sent += bytes as u64;
            }
            Transport::Offline => {
                self.offline_messages_sent += 1;
                self.offline_bytes_sent += bytes as u64;
            }
        }
    }

    pub(crate) fn record_delivery(&mut self, transport: Transport) {
        match transport {
            Transport::Link => self.link_messages_delivered += 1,
            Transport::Offline => self.offline_messages_delivered += 1,
        }
    }

    /// Total messages sent on both transports.
    pub fn total_messages_sent(&self) -> u64 {
        self.link_messages_sent + self.offline_messages_sent
    }

    /// Total bytes sent on both transports.
    pub fn total_bytes_sent(&self) -> u64 {
        self.link_bytes_sent + self.offline_bytes_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_transports() {
        let mut m = Metrics::default();
        m.record_send(Transport::Link, 10);
        m.record_send(Transport::Offline, 5);
        assert_eq!(m.total_messages_sent(), 2);
        assert_eq!(m.total_bytes_sent(), 15);
    }
}
