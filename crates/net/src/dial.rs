//! Client-side redialing: how a session obtains a *fresh* connection.
//!
//! A [`crate::ClientTransport`] is one connection; when it dies (server
//! restart, network partition, reactor shed) the session needs a way to
//! get another one. [`ClientDialer`] is that factory — `faust-core`'s
//! `FaustHandle` holds one and, in auto-reconnect mode, redials through
//! it under its backoff policy. Two implementations:
//!
//! * [`TcpDialer`] — reconnects to a TCP endpoint with a per-attempt
//!   connect timeout. Each server restart is a fresh
//!   [`crate::TcpServerTransport`] incarnation, so the one-connection-
//!   per-id rule of the accept loop never blocks a cross-restart redial.
//! * [`ChannelDialer`] — hands out pre-built [`ClientConn`]s pushed by a
//!   test harness (one per simulated server incarnation); an empty queue
//!   behaves as a refused connection.

use crate::conn::{ClientConn, ClientTransport};
use faust_types::ClientId;
use std::net::SocketAddr;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::time::Duration;

/// A factory for fresh client connections, used by auto-reconnecting
/// sessions. Each call is one dial *attempt*: implementations must
/// return within roughly `timeout` so the caller's backoff schedule
/// stays honest.
pub trait ClientDialer: Send {
    /// Attempts to establish one new connection, giving up after about
    /// `timeout`.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] for a failed attempt (refused, timed out,
    /// unreachable); the caller backs off and retries.
    fn dial(&mut self, timeout: Duration) -> std::io::Result<Box<dyn ClientTransport>>;
}

/// Redials a [`crate::TcpServerTransport`]-style endpoint as a fixed
/// client id, with a hard per-attempt connect timeout.
#[derive(Debug, Clone)]
pub struct TcpDialer {
    addr: SocketAddr,
    id: ClientId,
}

impl TcpDialer {
    /// A dialer that reconnects to `addr` as client `id`.
    pub fn new(addr: SocketAddr, id: ClientId) -> Self {
        TcpDialer { addr, id }
    }

    /// The endpoint this dialer targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl ClientDialer for TcpDialer {
    fn dial(&mut self, timeout: Duration) -> std::io::Result<Box<dyn ClientTransport>> {
        let conn = crate::tcp::connect_timeout(self.addr, self.id, timeout)?;
        Ok(Box::new(conn))
    }
}

/// A dialer fed by a test harness: each pushed [`ClientConn`] satisfies
/// exactly one dial attempt. With nothing queued, dialing fails like a
/// refused connection — which is what a killed in-process server looks
/// like.
pub struct ChannelDialer {
    incoming: Receiver<ClientConn>,
}

impl ChannelDialer {
    /// A dialer plus the sender the harness pushes fresh connections
    /// into (one per server incarnation).
    pub fn new() -> (Self, Sender<ClientConn>) {
        let (tx, incoming) = channel();
        (ChannelDialer { incoming }, tx)
    }
}

impl ClientDialer for ChannelDialer {
    fn dial(&mut self, _timeout: Duration) -> std::io::Result<Box<dyn ClientTransport>> {
        match self.incoming.try_recv() {
            Ok(conn) => Ok(Box::new(conn)),
            Err(TryRecvError::Empty) => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "no server incarnation available",
            )),
            Err(TryRecvError::Disconnected) => Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "dialer source dropped",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_dialer_hands_out_pushed_conns_then_refuses() {
        let (mut dialer, tx) = ChannelDialer::new();
        let Err(err) = dialer.dial(Duration::from_millis(1)) else {
            panic!("nothing queued: must refuse");
        };
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);

        let (_server, mut conns) = crate::channel::pair(1);
        tx.send(conns.remove(0)).unwrap();
        let conn = dialer.dial(Duration::from_millis(1)).unwrap();
        assert_eq!(conn.id(), ClientId::new(0));

        drop(tx);
        let Err(err) = dialer.dial(Duration::from_millis(1)) else {
            panic!("source dropped: must fail");
        };
        assert_eq!(err.kind(), std::io::ErrorKind::NotConnected);
    }

    #[test]
    fn tcp_dialer_times_out_against_a_dead_endpoint() {
        // Bind-then-drop: the port is (very likely) unbound now, so the
        // dial must fail quickly rather than hang.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut dialer = TcpDialer::new(addr, ClientId::new(0));
        assert!(dialer.dial(Duration::from_millis(200)).is_err());
    }
}
