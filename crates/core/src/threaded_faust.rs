//! Thread-per-client runtime for the *full* FAUST stack: USTOR through a
//! server thread, plus direct client-to-client channels standing in for
//! the offline communication method — the complete Figure 1 topology on
//! real OS threads.
//!
//! The deterministic simulator remains the reference environment for
//! experiments; this runtime demonstrates that the same sans-io protocol
//! state machines run unchanged under genuine concurrency, and that
//! detection and stability behave identically there.

use crate::client::{Actions, FaustClient, FaustConfig, UserOp};
use crate::events::{FailReason, Notification};
use crate::offline::OfflineMsg;
use crossbeam::channel::{unbounded, Receiver, Sender};
use faust_crypto::sig::KeySet;
use faust_types::{ClientId, ReplyMsg, UstorMsg};
use faust_ustor::Server;
use std::time::{Duration, Instant};

/// Configuration of a threaded FAUST run.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedFaustConfig {
    /// FAUST layer tuning (probe period is interpreted in milliseconds).
    pub faust: FaustConfig,
    /// Interval between protocol ticks.
    pub tick_interval: Duration,
    /// Wall-clock duration of the run after workloads are submitted.
    pub run_for: Duration,
}

impl Default for ThreadedFaustConfig {
    fn default() -> Self {
        ThreadedFaustConfig {
            faust: FaustConfig {
                probe_period: 50, // ms of wall time
                dummy_reads: true,
                commit_mode: faust_ustor::CommitMode::Immediate,
            },
            tick_interval: Duration::from_millis(10),
            run_for: Duration::from_millis(600),
        }
    }
}

/// Outcome of a threaded FAUST run.
#[derive(Debug)]
pub struct ThreadedFaustReport {
    /// Notifications per client in arrival order (with ms offsets).
    pub notifications: Vec<Vec<(u64, Notification)>>,
    /// Clients that emitted `fail`, with reasons.
    pub failures: Vec<(ClientId, FailReason)>,
}

impl ThreadedFaustReport {
    /// Completed user operations at `client`.
    pub fn completions(&self, client: ClientId) -> usize {
        self.notifications[client.index()]
            .iter()
            .filter(|(_, n)| matches!(n, Notification::Completed(_)))
            .count()
    }

    /// The last stability cut reported by `client`.
    pub fn last_cut(&self, client: ClientId) -> Option<Vec<u64>> {
        self.notifications[client.index()]
            .iter()
            .rev()
            .find_map(|(_, n)| match n {
                Notification::Stable(cut) => Some(cut.w.clone()),
                _ => None,
            })
    }
}

enum ToServer {
    Ustor(ClientId, UstorMsg),
    Shutdown,
}

/// Messages a client thread can receive.
enum ToClient {
    Reply(ReplyMsg),
    Offline(OfflineMsg),
}

/// Runs `n` FAUST clients on threads against `server` (on its own
/// thread), with direct inter-client channels as the offline medium.
///
/// Each client first submits its entire workload, then keeps ticking
/// (dummy reads + probes) until `config.run_for` elapses.
///
/// # Panics
///
/// Panics if `workloads.len() != n` or a thread panics.
pub fn run_threaded_faust(
    n: usize,
    workloads: Vec<Vec<UserOp>>,
    server: Box<dyn Server + Send>,
    config: ThreadedFaustConfig,
    key_seed: &[u8],
) -> ThreadedFaustReport {
    assert_eq!(workloads.len(), n, "one workload per client");
    let keys = KeySet::generate(n, key_seed);

    let (server_tx, server_rx) = unbounded::<ToServer>();
    let mut client_txs: Vec<Sender<ToClient>> = Vec::with_capacity(n);
    let mut client_rxs: Vec<Option<Receiver<ToClient>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<ToClient>();
        client_txs.push(tx);
        client_rxs.push(Some(rx));
    }

    // Server thread.
    let server_reply_txs = client_txs.clone();
    let server_thread = std::thread::spawn(move || {
        let mut server = server;
        let mut shutdowns = 0;
        while shutdowns < n {
            let Ok(msg) = server_rx.recv() else { break };
            match msg {
                ToServer::Ustor(client, UstorMsg::Submit(m)) => {
                    for (rcpt, reply) in server.on_submit(client, m) {
                        let _ = server_reply_txs[rcpt.index()].send(ToClient::Reply(reply));
                    }
                }
                ToServer::Ustor(client, UstorMsg::Commit(m)) => {
                    for (rcpt, reply) in server.on_commit(client, m) {
                        let _ = server_reply_txs[rcpt.index()].send(ToClient::Reply(reply));
                    }
                }
                ToServer::Ustor(..) => {}
                ToServer::Shutdown => shutdowns += 1,
            }
        }
    });

    // Client threads.
    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (i, workload) in workloads.into_iter().enumerate() {
        let id = ClientId::new(i as u32);
        let keypair = keys.keypair(i as u32).expect("generated").clone();
        let registry = keys.registry();
        let to_server = server_tx.clone();
        let peers = client_txs.clone();
        let rx = client_rxs[i].take().expect("one receiver per client");
        let cfg = config;
        handles.push(std::thread::spawn(move || {
            let mut proto = FaustClient::new(id, n, keypair, registry, cfg.faust);
            let mut log: Vec<(u64, Notification)> = Vec::new();
            let begun = Instant::now();
            let now_ms = |begun: Instant| begun.elapsed().as_millis() as u64;

            let dispatch = |actions: Actions, log: &mut Vec<(u64, Notification)>, t: u64| {
                for msg in actions.to_server {
                    let _ = to_server.send(ToServer::Ustor(id, msg));
                }
                for (rcpt, msg) in actions.offline {
                    let _ = peers[rcpt.index()].send(ToClient::Offline(msg));
                }
                for note in actions.notifications {
                    log.push((t, note));
                }
            };

            // Submit the whole workload up front; FaustClient queues it.
            for op in workload {
                let t = now_ms(begun);
                let actions = proto.invoke(op, t);
                dispatch(actions, &mut log, t);
            }

            let deadline = begun + cfg.run_for;
            let mut next_tick = begun + cfg.tick_interval;
            while Instant::now() < deadline {
                // Tick first so a steady message stream cannot starve the
                // probe/dummy-read machinery.
                if Instant::now() >= next_tick {
                    let t = now_ms(begun);
                    let actions = proto.on_tick(t);
                    dispatch(actions, &mut log, t);
                    next_tick += cfg.tick_interval;
                    continue;
                }
                let timeout = next_tick
                    .saturating_duration_since(Instant::now())
                    .min(deadline.saturating_duration_since(Instant::now()));
                match rx.recv_timeout(timeout) {
                    Ok(ToClient::Reply(reply)) => {
                        let t = now_ms(begun);
                        let actions = proto.handle_reply(reply, t);
                        dispatch(actions, &mut log, t);
                    }
                    Ok(ToClient::Offline(msg)) => {
                        let t = now_ms(begun);
                        let actions = proto.handle_offline(msg, t);
                        dispatch(actions, &mut log, t);
                    }
                    Err(_) => {}
                }
            }
            let _ = to_server.send(ToServer::Shutdown);
            (log, proto.failure().cloned())
        }));
    }
    drop(server_tx);
    drop(client_txs);

    let mut notifications = Vec::with_capacity(n);
    let mut failures = Vec::new();
    for (i, handle) in handles.into_iter().enumerate() {
        let (log, failure) = handle.join().expect("client thread panicked");
        notifications.push(log);
        if let Some(reason) = failure {
            failures.push((ClientId::new(i as u32), reason));
        }
    }
    server_thread.join().expect("server thread panicked");
    let _ = start;
    ThreadedFaustReport {
        notifications,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_types::Value;
    use faust_ustor::adversary::SplitBrainServer;
    use faust_ustor::UstorServer;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    #[test]
    fn threaded_faust_completes_and_stabilizes() {
        let workloads = vec![
            vec![
                UserOp::Write(Value::from("a1")),
                UserOp::Write(Value::from("a2")),
            ],
            vec![UserOp::Read(c(0))],
            vec![UserOp::Write(Value::from("c1"))],
        ];
        let report = run_threaded_faust(
            3,
            workloads,
            Box::new(UstorServer::new(3)),
            ThreadedFaustConfig::default(),
            b"threaded-faust",
        );
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.completions(c(0)), 2);
        assert_eq!(report.completions(c(1)), 1);
        // Stability spreads: C0's ops become stable w.r.t. everyone.
        let cut = report.last_cut(c(0)).expect("cuts issued");
        assert!(
            cut.iter().all(|&w| w >= 2),
            "expected full stability, got {cut:?}"
        );
    }

    #[test]
    fn threaded_faust_detects_forks() {
        let server = SplitBrainServer::new(2, vec![vec![c(0)], vec![c(1)]], 0);
        let workloads = vec![
            vec![UserOp::Write(Value::from("a"))],
            vec![UserOp::Write(Value::from("b"))],
        ];
        let report = run_threaded_faust(
            2,
            workloads,
            Box::new(server),
            ThreadedFaustConfig::default(),
            b"threaded-fork",
        );
        assert_eq!(
            report.failures.len(),
            2,
            "both clients must detect the fork: {:?}",
            report.failures
        );
    }
}
