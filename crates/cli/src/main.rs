//! The `faust` command: run a fail-aware untrusted storage deployment
//! across real processes and hosts.
//!
//! * `faust serve` — bind a TCP endpoint, build the server engine over a
//!   persistent (or in-memory) backend, and serve until every expected
//!   client has come and gone.
//! * `faust connect` — a live [`FaustHandle`] session: submit writes and
//!   reads (pipelined), print the typed event stream, exit non-zero on a
//!   detected violation.
//! * `faust bench` — pipelined handle throughput against a served
//!   endpoint (or a self-hosted loopback server).
//!
//! This closes the ROADMAP "wide-area experiments" item: the transport
//! only needs an address, so the same binary drives cross-host runs.
//! The offline client-to-client medium of the paper has no cross-host
//! transport here (see `docs/client-api.md`); stability spreads through
//! reads, exactly as the handle's dummy-read machinery provides.

use faust_core::handle::{Event, FaustHandle, HandleConfig};
use faust_core::FaustConfig;
use faust_crypto::sig::SigScheme;
#[cfg(unix)]
use faust_net::ReactorTransport;
use faust_net::TcpServerTransport;
use faust_store::{Durability, PersistentBackend, ShardedBackend, StoreConfig};
use faust_types::{ClientId, Value};
use faust_ustor::{serve, MemoryBackend, ServerBackend, ServerEngine, ShardedServer};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("connect") => cmd_connect(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("export-history") => cmd_export_history(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("faust: unknown command `{other}`\n");
            eprint!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
faust — fail-aware untrusted storage (FAUST) over TCP

USAGE:
  faust serve   [--addr A] [--clients N] [--dir PATH] [--durability D] [--snapshot-every K]
                [--shards S] [--reactor] [--max-conns C]
  faust connect --addr A [--id I] [--clients N] [--key-seed S] [--scheme hmac|ed25519]
                [--pipeline D] [--write VALUE]... [--read J]... [--linger-ms MS] [--dummy-reads]
                [--session FILE]
  faust bench   [--addr A] [--clients N] [--ops K] [--pipeline D] [--value-len B]
                [--durability D] [--key-seed S] [--shards S] [--reactor]
  faust audit   PATH [--key-seed S] [--scheme hmac|ed25519] [--json]
  faust export-history DIR OUT [--scheme hmac|ed25519]

Durability D: always (fsync per record), group (batched fsync, the default), never.
--reactor serves all connections from ONE readiness-driven event loop with admission
control (bounded per-client ingress queues, connection/memory caps with shed-on-accept,
slow-consumer excision — see docs/networking.md) instead of a thread per connection;
--max-conns caps simultaneously open reactor connections (default 1024).
--shards S > 1 runs S server shards, each on its own worker thread with its own
shard-<i>/ store directory under --dir; client-visible messages are identical to an
unsharded server, so any client can talk to any deployment. The shard count is part
of a persistent store's layout and must match across restarts.
`connect` ops run in command-line order and pipeline up to the configured depth.
All clients of one deployment must share --clients, --key-seed, --scheme, and --pipeline.

`audit` replays a FAUSTHIS session history offline with nothing but the clients'
verification keys (regenerated from --key-seed, the same seed the session's clients
used) and either CERTIFIES the session as fork-linearizable or pinpoints the first
divergent version with typed evidence. PATH is a .fausthis file or a server store
directory (--dir of a stopped `faust serve`), which is exported on the fly. Exit
codes: 0 certified, 2 diverged, 1 unreadable/error. `export-history` writes a
store directory's session history to OUT as a FAUSTHIS file. See docs/audit.md.

FAUST clients are stateful: an id that already performed operations against a
(persistent) store cannot be reused by an amnesiac later `connect` — the fresh session
flags the honest server's memory of its own past as a violation. --session FILE makes
the session itself durable: state is loaded from FILE when it exists (resuming the
session, replaying any unacknowledged SUBMITs, and probing the server so a rolled-back
file is flagged as a StaleClientState violation) and saved back on clean exit. Without
--session, reuse an id only within one run, or wipe --dir.

EXAMPLE (two shells):
  faust serve --addr 127.0.0.1:4600 --clients 2 --dir /tmp/faust --durability group
  faust connect --addr 127.0.0.1:4600 --id 0 --clients 2 --write hello
  faust connect --addr 127.0.0.1:4600 --id 1 --clients 2 --read 0
";

fn parse_value<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value `{value}` for {flag}"))
}

fn cmd_serve(args: &[String]) -> i32 {
    match serve_impl(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("faust serve: {e}");
            2
        }
    }
}

fn parse_durability(s: &str) -> Result<Durability, String> {
    match s {
        "always" => Ok(Durability::Always),
        "never" => Ok(Durability::Never),
        "group" => Ok(Durability::group()),
        other => Err(format!(
            "invalid durability `{other}` (expected always, group, or never)"
        )),
    }
}

fn serve_impl(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut clients = 2usize;
    let mut dir: Option<String> = None;
    let mut durability = Durability::group();
    let mut snapshot_every = 1024u64;
    let mut shards = 1usize;
    let mut reactor = false;
    let mut max_conns: Option<usize> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = val()?.to_string(),
            "--clients" => clients = parse_value(flag, val()?)?,
            "--dir" => dir = Some(val()?.to_string()),
            "--durability" => durability = parse_durability(val()?)?,
            "--snapshot-every" => snapshot_every = parse_value(flag, val()?)?,
            "--shards" => shards = parse_value(flag, val()?)?,
            "--reactor" => reactor = true,
            "--max-conns" => max_conns = Some(parse_value(flag, val()?)?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if clients == 0 {
        return Err("--clients must be at least 1".into());
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if max_conns.is_some() && !reactor {
        return Err("--max-conns requires --reactor".into());
    }

    let mut transport = bind_transport(&addr, clients, reactor, max_conns)?;
    // --shards 1 keeps the plain single-engine stack; > 1 deploys one
    // worker thread (and, with --dir, one store directory) per shard.
    let mut shard_stats = None;
    let mut engine = if shards > 1 {
        let server = match &dir {
            Some(dir) => ShardedBackend::new(
                dir,
                StoreConfig {
                    durability,
                    snapshot_every,
                },
                shards,
                true,
            )
            .open(clients)
            .map_err(|e| format!("build server state: {e}"))?,
            None => ShardedServer::volatile(clients, shards, true),
        };
        shard_stats = Some(server.stats_handle());
        ServerEngine::new(clients, Box::new(server))
    } else {
        let backend: Box<dyn ServerBackend + Send> = match &dir {
            Some(dir) => Box::new(PersistentBackend::new(
                dir,
                StoreConfig {
                    durability,
                    snapshot_every,
                },
            )),
            None => Box::new(MemoryBackend),
        };
        ServerEngine::from_backend(clients, backend.as_ref())
            .map_err(|e| format!("build server state: {e}"))?
    };
    println!(
        "faust-serve: listening on {} ({} clients, durability={:?}, shards={}, transport={}, state={})",
        transport.local_addr(),
        clients,
        durability,
        shards,
        if reactor { "reactor" } else { "threaded" },
        dir.as_deref().unwrap_or("in-memory"),
    );
    // The smoke scripts parse the line above; make sure it is out.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    match &mut transport {
        CliTransport::Tcp(t) => serve(&mut engine, t),
        #[cfg(unix)]
        CliTransport::Reactor(t) => serve(&mut engine, t.as_mut()),
    }
    let stats = engine.stats();
    println!(
        "faust-serve: all {} clients served and departed; shutting down \
         ({} submits, {} commits, {} rejected, {} frames out in {} writes)",
        clients, stats.submits, stats.commits, stats.rejected, stats.frames_out, stats.flushes,
    );
    if let Some(handle) = shard_stats {
        for (i, s) in handle.per_shard().iter().enumerate() {
            println!(
                "faust-serve: shard {i}: {} owned submits, {} owned commits, \
                 {} replies released in {} flushes",
                s.submits, s.commits, s.frames_out, s.flushes,
            );
        }
    }
    #[cfg(unix)]
    if let CliTransport::Reactor(t) = &transport {
        print_reactor_stats("faust-serve", t.stats());
    }
    Ok(())
}

/// What a self-hosted serve thread reports back: the reactor's counters,
/// or nothing for the threaded transport (and on non-unix targets).
#[cfg(unix)]
type ReactorStatsOpt = Option<faust_net::ReactorStats>;
#[cfg(not(unix))]
type ReactorStatsOpt = Option<()>;

/// The serve-side transport choice; boxed because the reactor is a much
/// larger struct than the threaded transport's handle.
enum CliTransport {
    Tcp(TcpServerTransport),
    #[cfg(unix)]
    Reactor(Box<ReactorTransport>),
}

impl CliTransport {
    fn local_addr(&self) -> SocketAddr {
        match self {
            CliTransport::Tcp(t) => t.local_addr(),
            #[cfg(unix)]
            CliTransport::Reactor(t) => t.local_addr(),
        }
    }
}

fn bind_transport(
    addr: &str,
    clients: usize,
    reactor: bool,
    max_conns: Option<usize>,
) -> Result<CliTransport, String> {
    if !reactor {
        return Ok(CliTransport::Tcp(
            TcpServerTransport::bind(addr, clients).map_err(|e| format!("bind {addr}: {e}"))?,
        ));
    }
    #[cfg(unix)]
    {
        let mut cfg = faust_net::ReactorConfig::default();
        if let Some(cap) = max_conns {
            if cap == 0 {
                return Err("--max-conns must be at least 1".into());
            }
            cfg.max_conns = cap;
        }
        Ok(CliTransport::Reactor(Box::new(
            ReactorTransport::bind_with(addr, clients, cfg)
                .map_err(|e| format!("bind {addr}: {e}"))?,
        )))
    }
    #[cfg(not(unix))]
    {
        let _ = max_conns;
        Err("--reactor is only available on unix".into())
    }
}

#[cfg(unix)]
fn print_reactor_stats(prefix: &str, s: &faust_net::ReactorStats) {
    println!(
        "{prefix}: reactor: {} accepted, {} shed, {} msgs in ({} B), {} frames out \
         ({} B in {} writes), peak {} conns, peak buffered {} B, {} read pauses, \
         {} global pauses, {} polls",
        s.accepted,
        s.shed(),
        s.msgs_in,
        s.bytes_in,
        s.frames_out,
        s.bytes_out,
        s.socket_writes,
        s.peak_conns,
        s.peak_buffered_bytes,
        s.read_pauses,
        s.global_pauses,
        s.polls,
    );
}

/// One scripted `connect` step.
enum CliOp {
    Write(Value),
    Read(ClientId),
}

fn cmd_connect(args: &[String]) -> i32 {
    match connect_impl(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("faust connect: {e}");
            2
        }
    }
}

fn parse_scheme(s: &str) -> Result<SigScheme, String> {
    match s {
        "hmac" => Ok(SigScheme::Hmac),
        "ed25519" => Ok(SigScheme::Ed25519),
        other => Err(format!(
            "invalid scheme `{other}` (expected hmac or ed25519)"
        )),
    }
}

/// Returns the process exit code: 0 = every operation completed, 1 =
/// an operation never completed (timeout / lost transport), 2 = a
/// protocol violation was detected.
fn connect_impl(args: &[String]) -> Result<i32, String> {
    let mut addr: Option<SocketAddr> = None;
    let mut id = ClientId::new(0);
    let mut clients = 2usize;
    let mut key_seed = "faust-cli".to_string();
    let mut scheme = SigScheme::Hmac;
    let mut pipeline = 4usize;
    let mut linger_ms = 0u64;
    let mut dummy_reads = false;
    let mut session: Option<std::path::PathBuf> = None;
    let mut ops: Vec<CliOp> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = Some(parse_value(flag, val()?)?),
            "--id" => id = parse_value(flag, val()?)?,
            "--clients" => clients = parse_value(flag, val()?)?,
            "--key-seed" => key_seed = val()?.to_string(),
            "--scheme" => scheme = parse_scheme(val()?)?,
            "--pipeline" => pipeline = parse_value(flag, val()?)?,
            "--linger-ms" => linger_ms = parse_value(flag, val()?)?,
            "--dummy-reads" => dummy_reads = true,
            "--session" => session = Some(std::path::PathBuf::from(val()?)),
            "--write" => ops.push(CliOp::Write(Value::from(val()?))),
            "--read" => ops.push(CliOp::Read(parse_value(flag, val()?)?)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let addr = addr.ok_or("--addr is required")?;
    if id.index() >= clients {
        return Err(format!(
            "--id {} out of range for --clients {clients}",
            id.index()
        ));
    }

    let config = HandleConfig {
        faust: FaustConfig {
            // No offline medium across hosts: probing is pointless, so
            // effectively disable it. Stability spreads through reads.
            probe_period: u64::MAX / 2,
            dummy_reads,
            pipeline: pipeline.max(1),
            ..FaustConfig::default()
        },
        tick_interval: Duration::from_millis(5),
        scheme,
    };
    let saved = match &session {
        Some(path) => faust_core::load_session(path)
            .map_err(|e| format!("load session {}: {e}", path.display()))?,
        None => None,
    };
    let mut handle = match saved {
        Some(state) => {
            if state.proto.ustor.id != id || state.proto.ustor.n as usize != clients {
                return Err(format!(
                    "session file is for client {} of {}, but --id {} --clients {clients} given",
                    state.proto.ustor.id.index(),
                    state.proto.ustor.n,
                    id.index(),
                ));
            }
            let unacked = state
                .resend_window
                .iter()
                .filter(|m| matches!(m, faust_types::UstorMsg::Submit(_)))
                .count();
            let conn =
                faust_net::tcp::connect(addr, id).map_err(|e| format!("connect {addr}: {e}"))?;
            let handle =
                FaustHandle::resume_from_state(state, key_seed.as_bytes(), &config, Box::new(conn));
            println!(
                "faust-connect: {id} resumed session from {} ({unacked} unacked SUBMITs resent)",
                session.as_ref().expect("saved implies --session").display(),
            );
            handle
        }
        None => {
            let handle = FaustHandle::connect_tcp(addr, id, clients, key_seed.as_bytes(), &config)
                .map_err(|e| format!("connect {addr}: {e}"))?;
            println!(
                "faust-connect: {id} connected to {addr} (pipeline {})",
                pipeline.max(1)
            );
            handle
        }
    };

    let tickets: Vec<_> = ops
        .into_iter()
        .map(|op| match op {
            CliOp::Write(value) => handle.write(value),
            CliOp::Read(register) => handle.read(register),
        })
        .collect();

    let mut violated = false;
    let mut incomplete = false;
    let print_events = |events: Vec<(u64, Event)>, violated: &mut bool| {
        for (t, event) in events {
            match event {
                Event::Completed { ticket, completion } => {
                    let what = match &completion.read_value {
                        Some(Some(v)) => format!("read X{} -> {v}", completion.target.index()),
                        Some(None) => format!("read X{} -> ⊥", completion.target.index()),
                        None => format!("wrote X{}", completion.target.index()),
                    };
                    println!(
                        "t={t:>6}  {ticket} completed (timestamp {}): {what}",
                        completion.timestamp
                    );
                }
                Event::Stable { cut } => println!("t={t:>6}  stable{cut}"),
                Event::Violation { reason } => {
                    println!("t={t:>6}  VIOLATION: {reason}");
                    *violated = true;
                }
                Event::Disconnected { reason } => println!("t={t:>6}  disconnected ({reason})"),
                Event::Reconnecting { attempt, backoff } => {
                    println!("t={t:>6}  reconnecting (attempt {attempt}, backoff {backoff:?})");
                }
                Event::Resumed => println!("t={t:>6}  resumed"),
            }
        }
    };

    for &ticket in &tickets {
        match handle.wait(ticket, Duration::from_secs(30)) {
            Ok(_) => {}
            Err(e) => {
                // The event stream below carries the diagnosis. A lost
                // or timed-out operation is a failure exit too — a
                // script must never mistake an unacknowledged write for
                // success.
                eprintln!("faust-connect: {ticket}: {e}");
                incomplete = true;
                violated |= matches!(e, faust_core::WaitError::Violation(_));
                break;
            }
        }
        print_events(handle.poll(), &mut violated);
    }
    if linger_ms > 0 {
        let events = handle.run_for(Duration::from_millis(linger_ms));
        print_events(events, &mut violated);
    }
    print_events(handle.poll(), &mut violated);
    handle.disconnect();
    println!(
        "faust-connect: {id} done (final cut {})",
        handle.stability_cut()
    );
    if let Some(path) = &session {
        let (core, clock) = handle.into_core();
        match faust_core::checkpoint_session(path, &core, clock) {
            Ok(true) => println!("faust-connect: session saved to {}", path.display()),
            Ok(false) => {
                // Halted on a violation: a failed session must not be
                // resumed, and a pre-failure file left behind would
                // itself be stale — remove it.
                let _ = std::fs::remove_file(path);
                println!("faust-connect: session halted; {} removed", path.display());
            }
            Err(e) => {
                eprintln!("faust-connect: save session {}: {e}", path.display());
                incomplete = true;
            }
        }
    }
    Ok(if violated {
        2
    } else if incomplete {
        1
    } else {
        0
    })
}

fn cmd_bench(args: &[String]) -> i32 {
    match bench_impl(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("faust bench: {e}");
            2
        }
    }
}

fn bench_impl(args: &[String]) -> Result<(), String> {
    let mut addr: Option<SocketAddr> = None;
    let mut clients = 2usize;
    let mut ops = 64u64;
    let mut pipeline = 8usize;
    let mut value_len = 64usize;
    let mut durability = Durability::group();
    let mut key_seed = "faust-cli".to_string();
    let mut shards = 1usize;
    let mut reactor = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = Some(parse_value(flag, val()?)?),
            "--clients" => clients = parse_value(flag, val()?)?,
            "--ops" => ops = parse_value(flag, val()?)?,
            "--pipeline" => pipeline = parse_value(flag, val()?)?,
            "--value-len" => value_len = parse_value(flag, val()?)?,
            "--durability" => durability = parse_durability(val()?)?,
            "--key-seed" => key_seed = val()?.to_string(),
            "--shards" => shards = parse_value(flag, val()?)?,
            "--reactor" => reactor = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if reactor && addr.is_some() {
        return Err("--reactor self-hosts the server; it conflicts with --addr".into());
    }
    if clients == 0 || ops == 0 {
        return Err("--clients and --ops must be at least 1".into());
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    // Match the group-commit batch to the bench's sliding window. With
    // the stock max_records (64) a small `clients x pipeline` window can
    // never fill a batch, so EVERY round of replies waits out the full
    // max_wait — the bench then measures the fsync timer, not the
    // server (see docs/client-api.md, "Group commit and pipelined
    // benchmarks").
    if let Durability::Group {
        max_records,
        max_wait,
    } = durability
    {
        let window = (clients * pipeline.max(1)) as u64;
        if window < max_records {
            durability = Durability::Group {
                max_records: window,
                max_wait,
            };
        }
    }

    // Self-host a loopback server unless an external one was named.
    let mut self_hosted = None;
    let addr = match addr {
        Some(addr) => addr,
        None => {
            let dir = std::env::temp_dir().join(format!("faust-cli-bench-{}", std::process::id()));
            let mut transport = bind_transport("127.0.0.1:0", clients, reactor, None)
                .map_err(|e| format!("bind loopback: {e}"))?;
            let addr = transport.local_addr();
            let config = StoreConfig {
                durability,
                snapshot_every: 0,
            };
            let mut engine = if shards > 1 {
                let server = ShardedBackend::new(&dir, config, shards, true)
                    .open(clients)
                    .map_err(|e| format!("build server state: {e}"))?;
                ServerEngine::new(clients, Box::new(server))
            } else {
                let backend = PersistentBackend::new(&dir, config);
                ServerEngine::from_backend(clients, &backend)
                    .map_err(|e| format!("build server state: {e}"))?
            };
            // The serve thread hands the reactor's counters back for the
            // end-of-run report (the threaded transport has none).
            self_hosted = Some((
                std::thread::spawn(move || -> ReactorStatsOpt {
                    match &mut transport {
                        CliTransport::Tcp(t) => {
                            serve(&mut engine, t);
                            None
                        }
                        #[cfg(unix)]
                        CliTransport::Reactor(t) => {
                            serve(&mut engine, t.as_mut());
                            Some(t.stats().clone())
                        }
                    }
                }),
                dir,
            ));
            addr
        }
    };

    println!(
        "faust-bench: {clients} clients x {ops} pipelined writes \
         ({value_len} B, depth {pipeline}, {shards} shard(s)) -> {addr}"
    );
    let config = HandleConfig {
        faust: FaustConfig {
            probe_period: u64::MAX / 2,
            dummy_reads: false,
            commit_mode: faust_ustor::CommitMode::Piggyback,
            pipeline: pipeline.max(1),
        },
        tick_interval: Duration::from_millis(2),
        scheme: SigScheme::Hmac,
    };
    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let id = ClientId::new(i as u32);
            let seed = key_seed.clone();
            std::thread::spawn(move || -> Result<(), String> {
                let mut handle =
                    FaustHandle::connect_tcp(addr, id, clients, seed.as_bytes(), &config)
                        .map_err(|e| format!("{id}: connect: {e}"))?;
                let mut last = None;
                for k in 0..ops {
                    let mut bytes = vec![0xB6u8; value_len.max(8)];
                    bytes[..8].copy_from_slice(&k.to_be_bytes());
                    last = Some(handle.write(Value::new(bytes)));
                }
                handle
                    .wait(last.expect("ops >= 1"), Duration::from_secs(120))
                    .map_err(|e| format!("{id}: {e}"))?;
                handle.disconnect();
                Ok(())
            })
        })
        .collect();
    for worker in workers {
        worker.join().map_err(|_| "client thread panicked")??;
    }
    let elapsed = start.elapsed();
    let mut reactor_stats = None;
    if let Some((server, dir)) = self_hosted {
        reactor_stats = server.join().map_err(|_| "server thread panicked")?;
        let _ = std::fs::remove_dir_all(dir);
    }
    let total = clients as f64 * ops as f64;
    println!(
        "faust-bench: {total:.0} ops in {:.3}s -> {:.0} ops/s ({:.1} us/op)",
        elapsed.as_secs_f64(),
        total / elapsed.as_secs_f64(),
        elapsed.as_micros() as f64 / total,
    );
    #[cfg(unix)]
    if let Some(stats) = reactor_stats {
        print_reactor_stats("faust-bench", &stats);
    }
    #[cfg(not(unix))]
    let _ = reactor_stats;
    Ok(())
}

fn cmd_audit(args: &[String]) -> i32 {
    match audit_impl(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("faust audit: {e}");
            1
        }
    }
}

/// Loads a session history from a `.fausthis` file or exports one from a
/// store directory on the fly.
fn load_session_history(
    path: &std::path::Path,
    scheme: SigScheme,
) -> Result<faust_audit::SessionHistory, String> {
    if path.is_dir() {
        return faust_audit::export_store_dir(path, scheme, None)
            .map_err(|e| format!("export {}: {e}", path.display()));
    }
    faust_audit::SessionHistory::read_from(path).map_err(|e| match e {
        faust_audit::HistoryReadError::Io(err) => format!("read {}: {err}", path.display()),
        faust_audit::HistoryReadError::Format(err) => {
            format!("{} is not a valid session history: {err}", path.display())
        }
    })
}

/// Returns the process exit code: 0 = certified, 2 = diverged (the
/// divergence is printed), 1 = the history could not be read or audited.
fn audit_impl(args: &[String]) -> Result<i32, String> {
    let mut path: Option<std::path::PathBuf> = None;
    let mut key_seed = "faust-cli".to_string();
    let mut scheme: Option<SigScheme> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--key-seed" => key_seed = val()?.to_string(),
            "--scheme" => scheme = Some(parse_scheme(val()?)?),
            "--json" => json = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            _ if path.is_none() => path = Some(std::path::PathBuf::from(arg)),
            _ => return Err(format!("unexpected argument `{arg}`")),
        }
    }
    let path = path.ok_or("a history file or store directory is required")?;
    // A file carries its scheme; --scheme only needs to pick one when
    // exporting a bare store directory (and may double as a sanity
    // check against a file — the auditor rejects a mismatch).
    let session = load_session_history(&path, scheme.unwrap_or(SigScheme::Hmac))?;
    let registry =
        faust_crypto::sig::KeySet::generate_with(session.scheme, session.n, key_seed.as_bytes())
            .registry();
    let report = faust_audit::audit(&session, &registry).map_err(|e| e.to_string())?;
    if json {
        println!("{}", faust_audit::report_to_json(&report));
    } else {
        println!(
            "faust-audit: {}: {} records, {} signatures, {} commits checked",
            path.display(),
            report.records_replayed,
            report.signatures_checked,
            report.commits_checked,
        );
    }
    match &report.verdict {
        faust_audit::AuditVerdict::Certified {
            fork_linearizable,
            ops,
            clients,
        } => {
            if !json {
                println!(
                    "faust-audit: CERTIFIED — {ops} operations by {clients} clients, \
                     fork-linearizable: {fork_linearizable}"
                );
            }
            Ok(0)
        }
        faust_audit::AuditVerdict::Diverged {
            first_bad_version,
            divergence,
        } => {
            if !json {
                println!("faust-audit: DIVERGED at version {first_bad_version}: {divergence}");
                if let Some((a, b)) = report.verdict.signed_evidence() {
                    println!(
                        "faust-audit: signed evidence: {:?} / {:?} (both COMMIT-signed, \
                         mutually incomparable)",
                        a.version.v(),
                        b.version.v(),
                    );
                }
            }
            Ok(2)
        }
    }
}

fn cmd_export_history(args: &[String]) -> i32 {
    match export_history_impl(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("faust export-history: {e}");
            1
        }
    }
}

fn export_history_impl(args: &[String]) -> Result<(), String> {
    let mut positional: Vec<&str> = Vec::new();
    let mut scheme = SigScheme::Hmac;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheme" => {
                let v = it
                    .next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("{arg} needs a value"))?;
                scheme = parse_scheme(v)?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            _ => positional.push(arg),
        }
    }
    let [dir, out] = positional.as_slice() else {
        return Err("usage: faust export-history DIR OUT [--scheme hmac|ed25519]".into());
    };
    let dir = std::path::Path::new(dir);
    let session = faust_audit::export_store_dir(dir, scheme, None)
        .map_err(|e| format!("export {}: {e}", dir.display()))?;
    session
        .write_to(std::path::Path::new(out))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "faust-export-history: {} records ({} clients, base sequence {}) -> {out}",
        session.records.len(),
        session.n,
        session.base_seq,
    );
    Ok(())
}
