//! The signature abstraction of the FAUST paper.
//!
//! USTOR attaches four kinds of signatures to its messages (Section 5 of
//! the paper): SUBMIT-signatures on invocation tuples, DATA-signatures
//! binding a timestamp to the hash of the last written value,
//! COMMIT-signatures on versions, and PROOF-signatures on digest-vector
//! entries. All of them are modelled here as domain-separated signatures
//! over byte strings.
//!
//! # Schemes
//!
//! Two interchangeable schemes live behind the [`Signer`] / [`Verifier`]
//! traits, selected at key-generation time ([`SigScheme`]):
//!
//! * **HMAC-SHA256** ([`SigScheme::Hmac`]) — one shared secret per
//!   client. Fast and deterministic; the right choice for the simulator
//!   and benchmarks. Its verification keys *are* the signing keys, so a
//!   verifier can forge: handing the registry to the untrusted server is
//!   unsound in the paper's trust model.
//! * **Ed25519** ([`SigScheme::Ed25519`]) — the in-tree public-key
//!   scheme of [`crate::ed25519`]. Verification keys carry no forging
//!   power, so the server can be given the full registry and perform
//!   sound ingress verification. This matches the paper's assumption
//!   that only `C_i` can produce `sign_i`.
//!
//! `docs/trust-model.md` at the repository root spells out which
//! properties each scheme delivers; [`VerifierRegistry::try_forge`]
//! demonstrates the difference executable-ly.
//!
//! Setup ([`KeySet::generate`] / [`KeySet::generate_ed25519`]) yields one
//! [`Keypair`] per client — the only value capable of producing that
//! client's signatures — and a shared [`VerifierRegistry`]. Protocol code
//! treats [`Signature`]s as opaque values and never mentions a scheme.

use crate::hmac::constant_time_eq;
use crate::sha256::{sha256, Digest};
use crate::{ed25519, sha512};
use std::fmt;
use std::sync::Arc;

/// Index of a client, `0 ≤ id < n`.
///
/// The paper numbers clients `C_1..C_n`; this implementation uses zero-based
/// indices throughout.
pub type ClientIndex = u32;

/// Which signature scheme a [`KeySet`] (and everything derived from it)
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SigScheme {
    /// Shared-secret HMAC-SHA256: fast, but verification keys can forge.
    #[default]
    Hmac,
    /// In-tree Ed25519: verification keys are public; sound ingress
    /// verification at the untrusted server.
    Ed25519,
}

/// Domain-separation tag for the four signature roles used by USTOR plus
/// the offline-message role used by FAUST.
///
/// Mixing a context byte into every signed message ensures a signature
/// produced for one role can never be replayed in another (e.g. a faulty
/// server cannot present a DATA-signature where a COMMIT-signature is
/// expected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SigContext {
    /// Signature on an invocation tuple in a SUBMIT message.
    Submit,
    /// Signature binding a timestamp to the hash of the written value.
    Data,
    /// Signature on a version `(V, M)` in a COMMIT message.
    Commit,
    /// Signature on the signer's own digest-vector entry `M_i[i]`.
    Proof,
    /// Signature on offline client-to-client messages (FAUST layer).
    Offline,
}

impl SigContext {
    /// The tag byte mixed into signed messages.
    pub fn tag(self) -> u8 {
        match self {
            SigContext::Submit => 1,
            SigContext::Data => 2,
            SigContext::Commit => 3,
            SigContext::Proof => 4,
            SigContext::Offline => 5,
        }
    }
}

/// An opaque signature value: a 32-byte MAC or a 64-byte Ed25519
/// signature, tagged.
///
/// The server stores and forwards signatures without being able to create
/// or validate them (Ed25519), or without being *handed the keys* to do
/// so (HMAC). Protocol code never inspects the variant; the wire codec
/// encodes it as a one-byte tag plus the raw bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signature {
    /// An HMAC-SHA256 tag.
    Mac([u8; 32]),
    /// An Ed25519 signature (R ‖ s).
    Ed25519([u8; ed25519::SIGNATURE_LEN]),
}

impl Signature {
    /// The raw signature bytes (length depends on the scheme).
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            Signature::Mac(b) => b,
            Signature::Ed25519(b) => b,
        }
    }

    /// The scheme this signature was produced under.
    pub fn scheme(&self) -> SigScheme {
        match self {
            Signature::Mac(_) => SigScheme::Hmac,
            Signature::Ed25519(_) => SigScheme::Ed25519,
        }
    }

    /// A syntactically valid but never-verifying placeholder, useful for
    /// modelling a Byzantine server that fabricates messages.
    pub fn garbage() -> Self {
        Signature::Mac(sha256(b"garbage signature").into_bytes())
    }

    /// Ed25519-shaped garbage: 64 fixed pseudorandom bytes. They may or
    /// may not survive signature *parsing* (a random R decodes as a
    /// point about half the time), but they never *verify* against any
    /// key. Used by adversary models targeting public-key deployments.
    pub fn garbage_ed25519() -> Self {
        let h = sha512::sha512(b"garbage ed25519 signature");
        let mut b = [0u8; ed25519::SIGNATURE_LEN];
        b.copy_from_slice(&h);
        Signature::Ed25519(b)
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.as_bytes()[..4]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        match self {
            Signature::Mac(_) => write!(f, "Signature(mac:{hex}..)"),
            Signature::Ed25519(_) => write!(f, "Signature(ed25519:{hex}..)"),
        }
    }
}

/// Anything able to produce signatures on behalf of one client.
pub trait Signer {
    /// The index of the client this signer signs for.
    fn signer_index(&self) -> ClientIndex;

    /// Signs `message` under domain `context`.
    fn sign(&self, context: SigContext, message: &[u8]) -> Signature;
}

/// One signature check inside a batch handed to [`Verifier::verify_batch`].
#[derive(Debug, Clone)]
pub struct VerifyItem {
    /// The claimed signer.
    pub signer: ClientIndex,
    /// The signature's domain.
    pub context: SigContext,
    /// The canonical signed bytes.
    pub message: Vec<u8>,
    /// The signature to check.
    pub sig: Signature,
}

/// Anything able to verify any client's signatures.
pub trait Verifier {
    /// Returns `true` iff `sig` is a valid signature by client `signer` on
    /// `message` under domain `context`.
    fn verify(
        &self,
        signer: ClientIndex,
        context: SigContext,
        message: &[u8],
        sig: &Signature,
    ) -> bool;

    /// Verifies a whole batch, returning one verdict per item (same
    /// order).
    ///
    /// The default implementation just loops over [`Verifier::verify`];
    /// schemes with shareable per-batch work override it —
    /// [`VerifierRegistry`] amortizes the HMAC key schedule per signer,
    /// and runs one multi-scalar multiplication for a whole Ed25519
    /// batch. The server engine's batched SUBMIT verification relies on
    /// these overrides for its speedup.
    fn verify_batch(&self, items: &[VerifyItem]) -> Vec<bool> {
        items
            .iter()
            .map(|item| self.verify(item.signer, item.context, &item.message, &item.sig))
            .collect()
    }
}

/// Per-client HMAC secret key material. Never leaves this module.
#[derive(Clone)]
struct SecretKey([u8; 32]);

impl SecretKey {
    fn derive(seed: &[u8], index: ClientIndex) -> Self {
        let mut h = crate::sha256::Sha256::new();
        h.update(b"faust-key-derivation/v1");
        h.update(seed);
        h.update(&index.to_be_bytes());
        SecretKey(h.finalize().into_bytes())
    }
}

/// The scheme-specific half of a [`Keypair`].
#[derive(Clone)]
enum KeypairInner {
    Hmac(SecretKey),
    Ed25519(ed25519::SigningKey),
}

/// A client's signing capability.
///
/// Only the holder of a `Keypair` can produce that client's signatures; the
/// untrusted server is never given one.
#[derive(Clone)]
pub struct Keypair {
    index: ClientIndex,
    inner: KeypairInner,
}

impl fmt::Debug for Keypair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Keypair")
            .field("index", &self.index)
            .field("scheme", &self.scheme())
            .finish_non_exhaustive()
    }
}

impl Keypair {
    /// The scheme this keypair signs under.
    pub fn scheme(&self) -> SigScheme {
        match &self.inner {
            KeypairInner::Hmac(_) => SigScheme::Hmac,
            KeypairInner::Ed25519(_) => SigScheme::Ed25519,
        }
    }
}

impl Signer for Keypair {
    fn signer_index(&self) -> ClientIndex {
        self.index
    }

    fn sign(&self, context: SigContext, message: &[u8]) -> Signature {
        match &self.inner {
            KeypairInner::Hmac(secret) => {
                Signature::Mac(tagged_mac(secret, context, message).into_bytes())
            }
            KeypairInner::Ed25519(key) => {
                Signature::Ed25519(key.sign(&tagged_message(context, message)))
            }
        }
    }
}

/// `context.tag() ‖ message` — the bytes actually signed, identical for
/// both schemes so the domain separation argument is scheme-independent.
fn tagged_message(context: SigContext, message: &[u8]) -> Vec<u8> {
    let mut tagged = Vec::with_capacity(1 + message.len());
    tagged.push(context.tag());
    tagged.extend_from_slice(message);
    tagged
}

fn tagged_mac(secret: &SecretKey, context: SigContext, message: &[u8]) -> Digest {
    crate::hmac::hmac_sha256(&secret.0, &tagged_message(context, message))
}

/// The scheme-specific key material of a [`VerifierRegistry`].
#[derive(Clone)]
enum RegistryInner {
    /// HMAC verification keys are the signing secrets themselves.
    Hmac(Arc<[SecretKey]>),
    /// Ed25519 verification keys are public.
    Ed25519(Arc<[ed25519::VerifyingKey]>),
}

/// Verification keys for all `n` clients.
///
/// With [`SigScheme::Ed25519`] the registry holds *public* keys only and
/// may be handed to anyone — including the untrusted server, which is how
/// the engine's ingress verification becomes sound. With
/// [`SigScheme::Hmac`] the registry holds the shared secrets and must be
/// distributed to clients only; a server holding it could forge
/// ([`VerifierRegistry::try_forge`]).
#[derive(Clone)]
pub struct VerifierRegistry {
    inner: RegistryInner,
}

impl fmt::Debug for VerifierRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerifierRegistry")
            .field("scheme", &self.scheme())
            .field("clients", &self.num_clients())
            .finish_non_exhaustive()
    }
}

impl VerifierRegistry {
    /// Number of clients the registry can verify for.
    pub fn num_clients(&self) -> usize {
        match &self.inner {
            RegistryInner::Hmac(keys) => keys.len(),
            RegistryInner::Ed25519(keys) => keys.len(),
        }
    }

    /// The scheme behind this registry.
    pub fn scheme(&self) -> SigScheme {
        match &self.inner {
            RegistryInner::Hmac(_) => SigScheme::Hmac,
            RegistryInner::Ed25519(_) => SigScheme::Ed25519,
        }
    }

    /// Whether this registry holds only public key material, i.e. whether
    /// handing it to the untrusted server preserves unforgeability.
    pub fn is_public(&self) -> bool {
        matches!(self.inner, RegistryInner::Ed25519(_))
    }

    /// Attempts to *forge* a signature for `signer` using nothing but
    /// this registry — the attack a verification-key-holding server could
    /// mount. Succeeds for HMAC (verification keys are signing keys) and
    /// returns `None` for Ed25519 (public keys carry no signing power).
    ///
    /// This exists to make the trust-model difference testable; see
    /// `docs/trust-model.md`.
    pub fn try_forge(
        &self,
        signer: ClientIndex,
        context: SigContext,
        message: &[u8],
    ) -> Option<Signature> {
        match &self.inner {
            RegistryInner::Hmac(keys) => {
                let secret = keys.get(signer as usize)?;
                Some(Signature::Mac(
                    tagged_mac(secret, context, message).into_bytes(),
                ))
            }
            RegistryInner::Ed25519(_) => None,
        }
    }

    /// The Ed25519 batch path: one aggregate check; on failure, per-item
    /// re-verification to identify the culprits.
    fn verify_batch_ed25519(
        &self,
        keys: &[ed25519::VerifyingKey],
        items: &[VerifyItem],
    ) -> Vec<bool> {
        // Pre-screen: signer in range and signature of the right shape.
        // `candidates[k]` is the item index of the k-th screened item.
        let mut verdicts = vec![false; items.len()];
        let mut candidates: Vec<usize> = Vec::with_capacity(items.len());
        let mut tagged: Vec<Vec<u8>> = Vec::with_capacity(items.len());
        for (idx, item) in items.iter().enumerate() {
            let in_range = (item.signer as usize) < keys.len();
            let ed_sig = matches!(item.sig, Signature::Ed25519(_));
            if in_range && ed_sig {
                candidates.push(idx);
                tagged.push(tagged_message(item.context, &item.message));
            }
        }
        let batch: Vec<ed25519::BatchItem<'_>> = candidates
            .iter()
            .zip(&tagged)
            .map(|(&idx, message)| {
                let Signature::Ed25519(sig) = &items[idx].sig else {
                    unreachable!("screened above");
                };
                ed25519::BatchItem {
                    public: &keys[items[idx].signer as usize],
                    message,
                    sig,
                }
            })
            .collect();
        if ed25519::verify_batch(&batch) {
            for &idx in &candidates {
                verdicts[idx] = true;
            }
        } else {
            // At least one bad signature: fall back to individual checks
            // so the caller learns *which* items to reject.
            for (&idx, item) in candidates.iter().zip(&batch) {
                verdicts[idx] = item.public.verify(item.message, item.sig);
            }
        }
        verdicts
    }
}

impl Verifier for VerifierRegistry {
    fn verify(
        &self,
        signer: ClientIndex,
        context: SigContext,
        message: &[u8],
        sig: &Signature,
    ) -> bool {
        match &self.inner {
            RegistryInner::Hmac(keys) => {
                let Some(secret) = keys.get(signer as usize) else {
                    return false;
                };
                let Signature::Mac(mac) = sig else {
                    return false; // scheme mismatch never verifies
                };
                let expect = tagged_mac(secret, context, message);
                constant_time_eq(&expect, &Digest::from_bytes(*mac))
            }
            RegistryInner::Ed25519(keys) => {
                let Some(public) = keys.get(signer as usize) else {
                    return false;
                };
                let Signature::Ed25519(sig) = sig else {
                    return false;
                };
                public.verify(&tagged_message(context, message), sig)
            }
        }
    }

    fn verify_batch(&self, items: &[VerifyItem]) -> Vec<bool> {
        match &self.inner {
            RegistryInner::Hmac(keys) => {
                // Amortize the HMAC key schedule: each distinct signer in
                // the batch pays for its padded-key midstates once, after
                // which every item costs only the message compressions.
                // Protocol messages are short, so this is close to a 2×
                // saving on the SUBMIT hot path.
                let mut prepared: Vec<Option<crate::hmac::PreparedHmac>> = vec![None; keys.len()];
                items
                    .iter()
                    .map(|item| {
                        let Some(secret) = keys.get(item.signer as usize) else {
                            return false;
                        };
                        let Signature::Mac(mac) = &item.sig else {
                            return false;
                        };
                        let mac_state = prepared[item.signer as usize]
                            .get_or_insert_with(|| crate::hmac::PreparedHmac::new(&secret.0));
                        let expect = mac_state.mac(&[&[item.context.tag()], &item.message]);
                        constant_time_eq(&expect, &Digest::from_bytes(*mac))
                    })
                    .collect()
            }
            RegistryInner::Ed25519(keys) => self.verify_batch_ed25519(keys, items),
        }
    }
}

/// The trusted-setup artifact: every client's [`Keypair`] plus the shared
/// [`VerifierRegistry`].
///
/// # Example
///
/// ```
/// use faust_crypto::sig::{KeySet, SigContext, SigScheme, Signer, Verifier};
///
/// for scheme in [SigScheme::Hmac, SigScheme::Ed25519] {
///     let keys = KeySet::generate_with(scheme, 2, b"seed");
///     let c0 = keys.keypair(0).expect("client 0");
///     let sig = c0.sign(SigContext::Commit, b"version bytes");
///     assert!(keys.registry().verify(0, SigContext::Commit, b"version bytes", &sig));
///     // A different message or signer index does not verify.
///     assert!(!keys.registry().verify(0, SigContext::Commit, b"other", &sig));
///     assert!(!keys.registry().verify(1, SigContext::Commit, b"version bytes", &sig));
/// }
/// // Only the Ed25519 registry is safe to hand to the untrusted server.
/// assert!(KeySet::generate_ed25519(2, b"seed").registry().is_public());
/// ```
#[derive(Debug, Clone)]
pub struct KeySet {
    keypairs: Vec<Keypair>,
    registry: VerifierRegistry,
}

impl KeySet {
    /// Deterministically generates HMAC keys for `n` clients from `seed`
    /// (the simulator/bench fast path; see [`KeySet::generate_with`]).
    ///
    /// The same `(n, seed)` always yields the same keys, keeping simulated
    /// executions reproducible.
    pub fn generate(n: usize, seed: &[u8]) -> Self {
        Self::generate_with(SigScheme::Hmac, n, seed)
    }

    /// Deterministically generates Ed25519 keys for `n` clients from
    /// `seed`. The registry holds public keys only.
    pub fn generate_ed25519(n: usize, seed: &[u8]) -> Self {
        Self::generate_with(SigScheme::Ed25519, n, seed)
    }

    /// Deterministically generates keys for `n` clients under `scheme`.
    pub fn generate_with(scheme: SigScheme, n: usize, seed: &[u8]) -> Self {
        match scheme {
            SigScheme::Hmac => {
                let secrets: Vec<SecretKey> = (0..n as ClientIndex)
                    .map(|i| SecretKey::derive(seed, i))
                    .collect();
                let keypairs = secrets
                    .iter()
                    .enumerate()
                    .map(|(i, secret)| Keypair {
                        index: i as ClientIndex,
                        inner: KeypairInner::Hmac(secret.clone()),
                    })
                    .collect();
                KeySet {
                    keypairs,
                    registry: VerifierRegistry {
                        inner: RegistryInner::Hmac(secrets.into()),
                    },
                }
            }
            SigScheme::Ed25519 => {
                let signing: Vec<ed25519::SigningKey> = (0..n as ClientIndex)
                    .map(|i| {
                        let mut h = crate::sha256::Sha256::new();
                        h.update(b"faust-ed25519-keygen/v1");
                        h.update(seed);
                        h.update(&i.to_be_bytes());
                        ed25519::SigningKey::from_seed(&h.finalize().into_bytes())
                    })
                    .collect();
                let publics: Vec<ed25519::VerifyingKey> =
                    signing.iter().map(|k| k.verifying_key()).collect();
                let keypairs = signing
                    .into_iter()
                    .enumerate()
                    .map(|(i, key)| Keypair {
                        index: i as ClientIndex,
                        inner: KeypairInner::Ed25519(key),
                    })
                    .collect();
                KeySet {
                    keypairs,
                    registry: VerifierRegistry {
                        inner: RegistryInner::Ed25519(publics.into()),
                    },
                }
            }
        }
    }

    /// The scheme these keys were generated under.
    pub fn scheme(&self) -> SigScheme {
        self.registry.scheme()
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.keypairs.len()
    }

    /// The signing keypair of client `index`, if it exists.
    pub fn keypair(&self, index: ClientIndex) -> Option<&Keypair> {
        self.keypairs.get(index as usize)
    }

    /// The shared verification registry. Safe to hand to the server only
    /// when [`VerifierRegistry::is_public`] — clients may always hold it.
    pub fn registry(&self) -> VerifierRegistry {
        self.registry.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMES: [SigScheme; 2] = [SigScheme::Hmac, SigScheme::Ed25519];

    #[test]
    fn sign_verify_roundtrip() {
        for scheme in SCHEMES {
            let keys = KeySet::generate_with(scheme, 4, b"t");
            let reg = keys.registry();
            for i in 0..4 {
                let kp = keys.keypair(i).unwrap();
                let sig = kp.sign(SigContext::Submit, b"hello");
                assert!(
                    reg.verify(i, SigContext::Submit, b"hello", &sig),
                    "{scheme:?}/{i}"
                );
            }
        }
    }

    #[test]
    fn wrong_message_rejected() {
        for scheme in SCHEMES {
            let keys = KeySet::generate_with(scheme, 2, b"t");
            let sig = keys.keypair(0).unwrap().sign(SigContext::Data, b"m1");
            assert!(!keys.registry().verify(0, SigContext::Data, b"m2", &sig));
        }
    }

    #[test]
    fn wrong_signer_rejected() {
        for scheme in SCHEMES {
            let keys = KeySet::generate_with(scheme, 2, b"t");
            let sig = keys.keypair(0).unwrap().sign(SigContext::Data, b"m");
            assert!(!keys.registry().verify(1, SigContext::Data, b"m", &sig));
        }
    }

    #[test]
    fn wrong_context_rejected() {
        for scheme in SCHEMES {
            let keys = KeySet::generate_with(scheme, 1, b"t");
            let sig = keys.keypair(0).unwrap().sign(SigContext::Data, b"m");
            assert!(!keys.registry().verify(0, SigContext::Commit, b"m", &sig));
            assert!(!keys.registry().verify(0, SigContext::Proof, b"m", &sig));
        }
    }

    #[test]
    fn out_of_range_signer_rejected() {
        for scheme in SCHEMES {
            let keys = KeySet::generate_with(scheme, 2, b"t");
            let sig = keys.keypair(0).unwrap().sign(SigContext::Data, b"m");
            assert!(!keys.registry().verify(99, SigContext::Data, b"m", &sig));
        }
    }

    #[test]
    fn garbage_signature_rejected() {
        for scheme in SCHEMES {
            let keys = KeySet::generate_with(scheme, 2, b"t");
            for garbage in [Signature::garbage(), Signature::garbage_ed25519()] {
                assert!(
                    !keys.registry().verify(0, SigContext::Data, b"m", &garbage),
                    "{scheme:?}/{garbage:?}"
                );
            }
        }
    }

    #[test]
    fn cross_scheme_signatures_rejected() {
        // An HMAC signature shown to an Ed25519 registry (and vice versa)
        // must fail cleanly, not panic or alias.
        let hmac = KeySet::generate(2, b"x");
        let ed = KeySet::generate_ed25519(2, b"x");
        let mac_sig = hmac.keypair(0).unwrap().sign(SigContext::Data, b"m");
        let ed_sig = ed.keypair(0).unwrap().sign(SigContext::Data, b"m");
        assert!(!ed.registry().verify(0, SigContext::Data, b"m", &mac_sig));
        assert!(!hmac.registry().verify(0, SigContext::Data, b"m", &ed_sig));
    }

    #[test]
    fn generation_is_deterministic() {
        for scheme in SCHEMES {
            let a = KeySet::generate_with(scheme, 3, b"same-seed");
            let b = KeySet::generate_with(scheme, 3, b"same-seed");
            let sig_a = a.keypair(1).unwrap().sign(SigContext::Proof, b"x");
            let sig_b = b.keypair(1).unwrap().sign(SigContext::Proof, b"x");
            assert_eq!(sig_a, sig_b);
        }
    }

    #[test]
    fn different_seeds_different_keys() {
        for scheme in SCHEMES {
            let a = KeySet::generate_with(scheme, 1, b"seed-a");
            let b = KeySet::generate_with(scheme, 1, b"seed-b");
            let sig = a.keypair(0).unwrap().sign(SigContext::Proof, b"x");
            assert!(!b.registry().verify(0, SigContext::Proof, b"x", &sig));
        }
    }

    #[test]
    fn hmac_registry_can_forge_but_ed25519_cannot() {
        // The executable statement of the trust-model gap: a server
        // holding the HMAC registry can fabricate any client's signature;
        // one holding only Ed25519 public keys cannot.
        let hmac = KeySet::generate(2, b"forge");
        let forged = hmac
            .registry()
            .try_forge(0, SigContext::Submit, b"evil op")
            .expect("HMAC registries can forge");
        assert!(hmac
            .registry()
            .verify(0, SigContext::Submit, b"evil op", &forged));

        let ed = KeySet::generate_ed25519(2, b"forge");
        assert!(ed
            .registry()
            .try_forge(0, SigContext::Submit, b"evil op")
            .is_none());
        assert!(ed.registry().is_public());
        assert!(!hmac.registry().is_public());
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    fn batch(scheme: SigScheme, n: u32, per_signer: u64) -> (VerifierRegistry, Vec<VerifyItem>) {
        let keys = KeySet::generate_with(scheme, n as usize, b"batch");
        let mut items = Vec::new();
        for i in 0..n {
            let kp = keys.keypair(i).unwrap();
            for s in 0..per_signer {
                let message = format!("message {i}/{s}").into_bytes();
                let sig = kp.sign(SigContext::Submit, &message);
                items.push(VerifyItem {
                    signer: i,
                    context: SigContext::Submit,
                    message,
                    sig,
                });
            }
        }
        (keys.registry(), items)
    }

    #[test]
    fn batch_agrees_with_per_item_verification() {
        for scheme in [SigScheme::Hmac, SigScheme::Ed25519] {
            let (reg, mut items) = batch(scheme, 4, 5);
            // Corrupt a few items in distinctive ways.
            items[3].sig = Signature::garbage();
            items[7].message.push(0xFF);
            items[11].signer = (items[11].signer + 1) % 4;
            items[13].context = SigContext::Data;
            let per_item: Vec<bool> = items
                .iter()
                .map(|it| reg.verify(it.signer, it.context, &it.message, &it.sig))
                .collect();
            assert_eq!(reg.verify_batch(&items), per_item, "{scheme:?}");
            assert_eq!(per_item.iter().filter(|ok| !**ok).count(), 4, "{scheme:?}");
        }
    }

    #[test]
    fn all_honest_batch_is_all_true() {
        for scheme in [SigScheme::Hmac, SigScheme::Ed25519] {
            let (reg, items) = batch(scheme, 3, 4);
            assert!(reg.verify_batch(&items).iter().all(|&v| v), "{scheme:?}");
        }
    }

    #[test]
    fn single_bad_signature_is_identified_not_smeared() {
        // The acceptance-criteria case: a batch with exactly one bad
        // signature must reject that item and keep the others.
        for scheme in [SigScheme::Hmac, SigScheme::Ed25519] {
            let (reg, mut items) = batch(scheme, 3, 3);
            items[4].sig = match scheme {
                SigScheme::Hmac => Signature::garbage(),
                SigScheme::Ed25519 => Signature::garbage_ed25519(),
            };
            let verdicts = reg.verify_batch(&items);
            for (i, ok) in verdicts.iter().enumerate() {
                assert_eq!(*ok, i != 4, "{scheme:?} item {i}");
            }
        }
    }

    #[test]
    fn batch_rejects_unknown_signer() {
        for scheme in [SigScheme::Hmac, SigScheme::Ed25519] {
            let (reg, mut items) = batch(scheme, 2, 1);
            items[0].signer = 99;
            assert_eq!(reg.verify_batch(&items), vec![false, true], "{scheme:?}");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        for scheme in [SigScheme::Hmac, SigScheme::Ed25519] {
            let (reg, _) = batch(scheme, 2, 1);
            assert!(reg.verify_batch(&[]).is_empty());
        }
    }

    #[test]
    fn truncated_style_corruptions_rejected() {
        // Wire decoding makes truncation unrepresentable (fixed-length
        // reads), so "truncated" arrives as bit-corrupted or
        // wrong-variant signatures; both must fail closed.
        let (reg, items) = batch(SigScheme::Ed25519, 2, 1);
        let Signature::Ed25519(good) = items[0].sig else {
            panic!("ed25519 batch");
        };
        let mut zeroed_r = good;
        zeroed_r[..32].fill(0);
        let mut huge_s = good;
        huge_s[32..].fill(0xFF); // s ≥ L: non-canonical
        for bad in [
            Signature::Ed25519(zeroed_r),
            Signature::Ed25519(huge_s),
            Signature::Mac([0xAB; 32]),
        ] {
            assert!(!reg.verify(0, SigContext::Submit, &items[0].message, &bad));
            let mut tampered = items.clone();
            tampered[0].sig = bad;
            assert_eq!(reg.verify_batch(&tampered), vec![false, true], "{bad:?}");
        }
    }
}
