//! Order relations over a history: real-time precedence, program order,
//! reads-from, and the potential-causality order of Definition 3.
//!
//! All relations are materialized as bit-matrices over operation indices
//! (histories are capped at [`MAX_OPS`] operations for checking — the
//! checkers return `Unknown` beyond that).

use faust_types::{History, OpId, OpKind, Value};
use std::collections::HashMap;

/// Maximum history size the checkers accept (bitmask-based relations).
pub const MAX_OPS: usize = 64;

/// A binary relation over operation indices, as one predecessor bitmask
/// per operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// `pred[i]` has bit `j` set iff `j → i` in the relation.
    pred: Vec<u64>,
}

impl Relation {
    /// The empty relation over `n` operations.
    pub fn empty(n: usize) -> Self {
        assert!(n <= MAX_OPS, "history too large for the checkers");
        Relation { pred: vec![0; n] }
    }

    /// Adds the pair `a → b`.
    pub fn add(&mut self, a: usize, b: usize) {
        self.pred[b] |= 1 << a;
    }

    /// Whether `a → b`.
    pub fn has(&self, a: usize, b: usize) -> bool {
        self.pred[b] & (1 << a) != 0
    }

    /// Bitmask of predecessors of `b`.
    pub fn preds(&self, b: usize) -> u64 {
        self.pred[b]
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.pred.len()
    }

    /// Whether the relation covers zero operations.
    pub fn is_empty(&self) -> bool {
        self.pred.is_empty()
    }

    /// In-place transitive closure (iterated propagation; `n ≤ 64` makes
    /// this cheap).
    pub fn close_transitively(&mut self) {
        let n = self.pred.len();
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                let mut acc = self.pred[b];
                let mut todo = acc;
                while todo != 0 {
                    let a = todo.trailing_zeros() as usize;
                    todo &= todo - 1;
                    acc |= self.pred[a];
                }
                if acc != self.pred[b] {
                    self.pred[b] = acc;
                    changed = true;
                }
            }
        }
    }

    /// Union with another relation of the same arity.
    pub fn union(&mut self, other: &Relation) {
        for (a, b) in self.pred.iter_mut().zip(&other.pred) {
            *a |= b;
        }
    }
}

/// All order information the checkers need about a history.
#[derive(Debug, Clone)]
pub struct Orders {
    /// Real-time precedence: `a` completed before `b` was invoked.
    pub real_time: Relation,
    /// Per-client program order.
    pub program: Relation,
    /// `reads_from[r] = Some(w)`: read `r` returned the value written by
    /// `w`. `None` for reads of `⊥` and for writes.
    pub reads_from: Vec<Option<usize>>,
    /// The potential-causality order `→σ` (Definition 3): transitive
    /// closure of program order ∪ reads-from.
    pub causal: Relation,
    /// Reads that returned a value no write in the history wrote —
    /// fabricated by the server; no view can ever contain them.
    pub orphan_reads: Vec<usize>,
    /// Bitmask of the write operations' indices.
    writes: u64,
}

impl Orders {
    /// Bitmask with a bit set for every write operation.
    pub fn write_mask(&self) -> u64 {
        self.writes
    }
}

/// Computes all order relations of `history`.
///
/// # Panics
///
/// Panics if the history exceeds [`MAX_OPS`] operations (checkers guard
/// this and return `Unknown` first).
pub fn compute_orders(history: &History) -> Orders {
    let ops = history.ops();
    let n = ops.len();
    let mut real_time = Relation::empty(n);
    let mut program = Relation::empty(n);
    let mut reads_from = vec![None; n];
    let mut orphan_reads = Vec::new();

    // Index writes by value (values are unique by assumption).
    let mut writer_of: HashMap<&Value, usize> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        if op.kind == OpKind::Write {
            if let Some(v) = &op.written {
                writer_of.insert(v, i);
            }
        }
    }

    for (b, op_b) in ops.iter().enumerate() {
        for (a, op_a) in ops.iter().enumerate() {
            if a == b {
                continue;
            }
            if history.precedes(OpId(a as u64), OpId(b as u64)) {
                real_time.add(a, b);
            }
            if op_a.client == op_b.client && a < b {
                // History records ops in invocation order; same-client ops
                // are sequential, so index order is program order.
                program.add(a, b);
            }
        }
        if op_b.kind == OpKind::Read {
            if let faust_types::history::OpOutcome::ReadReturned(Some(v)) = &op_b.outcome {
                match writer_of.get(v) {
                    Some(&w) if ops[w].register == op_b.register => reads_from[b] = Some(w),
                    _ => orphan_reads.push(b),
                }
            }
        }
    }

    let mut causal = program.clone();
    for (r, w) in reads_from.iter().enumerate() {
        if let Some(w) = w {
            causal.add(*w, r);
        }
    }
    causal.close_transitively();

    let mut writes = 0u64;
    for (i, op) in ops.iter().enumerate() {
        if op.kind == OpKind::Write {
            writes |= 1 << i;
        }
    }

    Orders {
        real_time,
        program,
        reads_from,
        causal,
        orphan_reads,
        writes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_types::ClientId;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    /// w0 by C0; r1 by C1 reads it; w2 by C1 afterwards; r3 by C2 reads w2.
    fn sample() -> History {
        let mut h = History::new();
        let w0 = h.begin_write(c(0), Value::from("a"), 0);
        h.complete_write(w0, 1, None);
        let r1 = h.begin_read(c(1), c(0), 2);
        h.complete_read(r1, 3, Some(Value::from("a")), None);
        let w2 = h.begin_write(c(1), Value::from("b"), 4);
        h.complete_write(w2, 5, None);
        let r3 = h.begin_read(c(2), c(1), 6);
        h.complete_read(r3, 7, Some(Value::from("b")), None);
        h
    }

    #[test]
    fn reads_from_resolved_by_unique_values() {
        let o = compute_orders(&sample());
        assert_eq!(o.reads_from, vec![None, Some(0), None, Some(2)]);
        assert!(o.orphan_reads.is_empty());
    }

    #[test]
    fn causal_order_is_transitive() {
        let o = compute_orders(&sample());
        // w0 → r1 (reads-from), r1 → w2 (program), w2 → r3 (reads-from)
        // hence w0 → r3 transitively.
        assert!(o.causal.has(0, 1));
        assert!(o.causal.has(1, 2));
        assert!(o.causal.has(2, 3));
        assert!(o.causal.has(0, 3));
        assert!(!o.causal.has(3, 0));
    }

    #[test]
    fn real_time_follows_times() {
        let o = compute_orders(&sample());
        assert!(o.real_time.has(0, 1));
        assert!(o.real_time.has(0, 3));
        assert!(!o.real_time.has(1, 0));
    }

    #[test]
    fn orphan_read_detected() {
        let mut h = History::new();
        let r = h.begin_read(c(0), c(1), 0);
        h.complete_read(r, 1, Some(Value::from("never written")), None);
        let o = compute_orders(&h);
        assert_eq!(o.orphan_reads, vec![0]);
    }

    #[test]
    fn read_from_wrong_register_is_orphan() {
        // A value written to X0 but "read" from X1 cannot be a reads-from.
        let mut h = History::new();
        let w = h.begin_write(c(0), Value::from("v"), 0);
        h.complete_write(w, 1, None);
        let r = h.begin_read(c(1), c(1), 2);
        h.complete_read(r, 3, Some(Value::from("v")), None);
        let o = compute_orders(&h);
        assert_eq!(o.orphan_reads, vec![1]);
    }

    #[test]
    fn transitive_closure_closes_chains() {
        let mut rel = Relation::empty(4);
        rel.add(0, 1);
        rel.add(1, 2);
        rel.add(2, 3);
        rel.close_transitively();
        assert!(rel.has(0, 3));
        assert!(rel.has(0, 2));
        assert!(!rel.has(3, 0));
    }
}
