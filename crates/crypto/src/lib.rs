//! From-scratch cryptographic substrate for the FAUST / USTOR protocols.
//!
//! The paper *Fail-Aware Untrusted Storage* (Cachin, Keidar, Shraer; DSN
//! 2009) assumes a collision-resistant hash function `H` and digital
//! signatures (`sign_i` / `verify_i`). This crate provides both, built from
//! first principles so the repository has no external cryptographic
//! dependencies:
//!
//! * [`mod@sha256`] — a complete SHA-256 implementation with incremental
//!   hashing, verified against the NIST FIPS 180-4 test vectors.
//! * [`mod@sha512`] — SHA-512, same structure, required by Ed25519.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), verified against the RFC 4231 test
//!   vectors.
//! * [`ed25519`] — Ed25519 signatures (RFC 8032): curve25519 field and
//!   scalar arithmetic, point compression, deterministic signing, strict
//!   verification, and multi-scalar batch verification — all in-tree,
//!   verified against the RFC 8032 test vectors.
//! * [`sig`] — the signature abstraction of the paper: per-client signing
//!   keys, a shared verifier registry, and domain-separated signature roles
//!   (`SUBMIT`, `DATA`, `COMMIT`, `PROOF`), generic over the scheme.
//! * [`chain`] — the digest chains `D(ω_1 … ω_m)` used by USTOR to commit to
//!   view histories (Section 5 of the paper).
//!
//! # Trust model of the signature schemes
//!
//! The paper's requirements are (a) only `C_i` can produce `sign_i`,
//! (b) every client can verify any signature, and (c) the untrusted
//! server can forge nothing. Two schemes are offered behind the
//! [`sig::Signer`] / [`sig::Verifier`] traits ([`sig::SigScheme`]):
//!
//! * **HMAC-SHA256** — verification keys are the signing secrets, so (c)
//!   holds only while the server is never handed the registry. Fast;
//!   right for the deterministic simulator and benchmarks.
//! * **Ed25519** — verification keys are public, so the registry can be
//!   given to the server for *sound* ingress verification; (a)–(c) hold
//!   unconditionally. This is the deployment scheme.
//!
//! `docs/trust-model.md` at the repository root develops this in full.
//!
//! # Side channels
//!
//! This is a research reproduction: correctness and clarity outrank
//! side-channel hardening. MAC comparisons are constant-time, but the
//! Ed25519 arithmetic is variable-time and the signing path indexes a
//! precomputed table by secret nibbles. Do not reuse this crate where a
//! co-located attacker can time cache lines.
//!
//! # Example
//!
//! ```
//! use faust_crypto::sha256::sha256;
//! use faust_crypto::sig::{KeySet, SigContext, Signer, Verifier};
//!
//! let digest = sha256(b"hello world");
//! assert_eq!(digest.to_hex().len(), 64);
//!
//! // Public-key keys: the registry can safely be handed to the server.
//! let keys = KeySet::generate_ed25519(3, b"example seed");
//! let alice = keys.keypair(0).expect("client 0 exists");
//! let sig = alice.sign(SigContext::Data, b"message");
//! let registry = keys.registry();
//! assert!(registry.is_public());
//! assert!(registry.verify(0, SigContext::Data, b"message", &sig));
//! assert!(!registry.verify(1, SigContext::Data, b"message", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod ed25519;
pub mod hmac;
pub mod sha256;
pub mod sha512;
pub mod sig;

pub use chain::{chain_digest, chain_extend};
pub use hmac::PreparedHmac;
pub use sha256::{sha256, Digest, Sha256};
pub use sha512::{sha512, Sha512};
pub use sig::{
    KeySet, Keypair, SigContext, SigScheme, Signature, Signer, Verifier, VerifierRegistry,
    VerifyItem,
};
