//! The forking attack of Figure 3, end to end.
//!
//! A Byzantine server hides client C0's *completed* write from C1's first
//! read and reveals it on the second. Part 1 runs the bare USTOR protocol
//! and checks the recorded history against the consistency checkers: the
//! attack is invisible to every USTOR check (it is weakly
//! fork-linearizable) but the history is *not* fork-linearizable — the
//! separation at the heart of the paper. Part 2 runs the same attack
//! under FAUST: the offline version exchange reveals the incomparable
//! versions and both clients output `fail`.
//!
//! Run with: `cargo run --example forking_attack`

use faust::consistency::{
    check_causal_consistency, check_fork_linearizability, check_linearizability,
    check_weak_fork_linearizability, Budget,
};
use faust::core::{FaustDriver, FaustDriverConfig, FaustWorkloadOp};
use faust::sim::SimConfig;
use faust::types::{ClientId, Value};
use faust::ustor::adversary::Fig3Server;
use faust::ustor::{Driver, WorkloadOp};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn main() {
    println!("══ Part 1: the attack against bare USTOR ══\n");

    let mut driver = Driver::new(
        2,
        Box::new(Fig3Server::new(2, c(0), c(1))),
        SimConfig::default(),
        b"fig3-example",
    );
    driver.push_op(c(0), WorkloadOp::Write(Value::from("u")));
    driver.push_ops(
        c(1),
        vec![
            WorkloadOp::Pause(20), // let the write complete first
            WorkloadOp::Read(c(0)),
            WorkloadOp::Read(c(0)),
        ],
    );
    let result = driver.run();

    println!("history (the paper's Figure 3):");
    for op in result.history.ops() {
        let what = match (&op.kind, op.read_result()) {
            (faust::types::OpKind::Write, _) => {
                format!("write(X0, {})", op.written.as_ref().unwrap())
            }
            (_, Some(Some(v))) => format!("read(X0) -> {v}"),
            (_, Some(None)) => "read(X0) -> ⊥".to_string(),
            _ => "pending".to_string(),
        };
        println!(
            "  {} [{:>2},{:>2}] {what}",
            op.client,
            op.invoked_at,
            op.responded_at.unwrap_or(0),
        );
    }
    println!();
    println!("faults detected by USTOR checks: {:?}", result.faults);
    assert!(result.faults.is_empty());

    let budget = Budget::default();
    println!("\nchecker verdicts for this history:");
    println!(
        "  linearizable?            {:?}",
        check_linearizability(&result.history, &budget)
    );
    println!(
        "  fork-linearizable?       {:?}",
        check_fork_linearizability(&result.history, &budget)
    );
    println!(
        "  weak fork-linearizable?  {:?}",
        check_weak_fork_linearizability(&result.history, &budget)
    );
    println!(
        "  causally consistent?     {:?}",
        check_causal_consistency(&result.history, &budget)
    );
    assert!(check_fork_linearizability(&result.history, &budget).is_violated());
    assert!(check_weak_fork_linearizability(&result.history, &budget).is_satisfied());

    println!("\n══ Part 2: the same attack against FAUST ══\n");

    let mut driver = FaustDriver::new(
        2,
        Box::new(Fig3Server::new(2, c(0), c(1))),
        FaustDriverConfig::default(),
        b"fig3-faust",
    );
    driver.push_op(c(0), FaustWorkloadOp::Write(Value::from("u")));
    driver.push_ops(
        c(1),
        vec![
            FaustWorkloadOp::Pause(50),
            FaustWorkloadOp::Read(c(0)),
            FaustWorkloadOp::Read(c(0)),
        ],
    );
    let result = driver.run_until(30_000);

    for (client, reason) in &result.failures {
        let time = result
            .failure_time(*client)
            .expect("failed clients have a time");
        println!("  t={time:>5}  fail_{client}: {reason}");
    }
    assert!(
        !result.failures.is_empty(),
        "FAUST must detect the fork via offline version exchange"
    );
    println!("\nFAUST detected the fork that USTOR alone could not flag —");
    println!("accurate (a correct server is never accused) and complete");
    println!("(the forked clients eventually learn of each other's views).");
}
