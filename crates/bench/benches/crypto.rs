//! E10 (part 1): raw cryptographic costs — hashing, MACs, signatures,
//! digest chains. These dominate USTOR's per-operation CPU cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use faust_crypto::chain::chain_extend;
use faust_crypto::hmac::hmac_sha256;
use faust_crypto::sig::{KeySet, SigContext, Signer, Verifier};
use faust_crypto::sha256::sha256;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xAB; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)))
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hmac_sha256");
    for size in [64usize, 1024] {
        let data = vec![0xCD; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| hmac_sha256(b"bench key", black_box(data)))
        });
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let keys = KeySet::generate(4, b"bench");
    let signer = keys.keypair(0).unwrap();
    let registry = keys.registry();
    let msg = vec![0xEF; 128];
    let sig = signer.sign(SigContext::Commit, &msg);

    c.bench_function("sign_128B", |b| {
        b.iter(|| signer.sign(SigContext::Commit, black_box(&msg)))
    });
    c.bench_function("verify_128B", |b| {
        b.iter(|| registry.verify(0, SigContext::Commit, black_box(&msg), &sig))
    });
}

fn bench_chain(c: &mut Criterion) {
    let d = chain_extend(None, 0);
    c.bench_function("chain_extend", |b| {
        b.iter(|| chain_extend(black_box(Some(d)), black_box(3)))
    });
}

criterion_group!(benches, bench_sha256, bench_hmac, bench_signatures, bench_chain);
criterion_main!(benches);
