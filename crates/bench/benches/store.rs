//! Persistence benchmarks: what durability costs on the hot path, and
//! how recovery time scales with log length.
//!
//! * **Append throughput (fsync off)** — raw write-ahead-log appends and
//!   full logged protocol ops, against the in-memory baseline. Fsync-off
//!   isolates the CPU+syscall cost of the format itself (checksum,
//!   encode, one `write_all`); an `Always`-durability line shows what
//!   the fsync adds on this machine's disk.
//! * **Recovery time vs. log length** — `PersistentServer::recover` over
//!   logs of increasing record counts; the per-record cost must stay
//!   flat (linear total), since recovery is one strict scan + replay.
//!
//! Run with: `cargo bench -p faust-bench --bench store`

use faust_bench::timing::{bench, bench_quiet, bench_throughput, section};
use faust_store::codec::LogRecord;
use faust_store::log::Wal;
use faust_store::testutil::{self, run_op};
use faust_store::{Durability, PersistentServer, StoreConfig};
use faust_types::{ClientId, Value, Wire};
use faust_ustor::{UstorClient, UstorServer};
use std::time::{Duration, Instant};

fn no_sync() -> StoreConfig {
    StoreConfig {
        durability: Durability::Never,
        snapshot_every: 0,
    }
}

fn clients(n: usize) -> Vec<UstorClient> {
    testutil::clients(n, b"bench-store")
}

/// Raw log appends of a fixed record, fsync off.
fn bench_wal_append(value_len: usize) {
    let dir = testutil::scratch_dir("bench-append");
    let mut wal = Wal::create(&dir, 2, 0, false).expect("create");
    let mut c = clients(2).remove(0);
    let record = LogRecord::Submit {
        from: ClientId::new(0),
        msg: c.begin_write(Value::new(vec![0xA5; value_len])).unwrap(),
    };
    let bytes = record.encoded_len() + 8 + faust_store::log::RECORD_OVERHEAD;
    bench_throughput(
        &format!("wal append fsync-off ({value_len} B value)"),
        bytes,
        || {
            wal.append(&record, false).expect("append");
        },
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A full protocol op (submit + commit) through a server, memory vs
/// logged fsync-off vs logged fsync-always.
fn bench_logged_op() {
    // A fresh client per server: each server starts from version zero,
    // and a client that had advanced against a previous server would
    // (correctly!) flag the fresh one as a rollback.
    let mut cs = clients(1);
    let mut memory = UstorServer::new(1);
    bench("protocol op, in-memory server", || {
        let submit = cs[0].begin_write(Value::from("x")).unwrap();
        run_op(&mut memory, &mut cs[0], submit);
    });

    let dir = testutil::scratch_dir("bench-op-nosync");
    let mut cs = clients(1);
    let mut persistent = PersistentServer::open(&dir, 1, no_sync()).unwrap();
    bench("protocol op, logged fsync-off", || {
        let submit = cs[0].begin_write(Value::from("x")).unwrap();
        run_op(&mut persistent, &mut cs[0], submit);
    });
    drop(persistent);
    std::fs::remove_dir_all(&dir).ok();

    let dir = testutil::scratch_dir("bench-op-sync");
    let mut cs = clients(1);
    let mut persistent = PersistentServer::open(
        &dir,
        1,
        StoreConfig {
            durability: Durability::Always,
            snapshot_every: 0,
        },
    )
    .unwrap();
    bench("protocol op, logged fsync-always", || {
        let submit = cs[0].begin_write(Value::from("x")).unwrap();
        run_op(&mut persistent, &mut cs[0], submit);
    });
    drop(persistent);
    std::fs::remove_dir_all(&dir).ok();
}

/// Group commit vs per-record fsync: the ≥ 5× claim of the ROADMAP's
/// durability-gap item, asserted on every run.
///
/// Two levels, because they answer different questions:
///
/// * **per-record** (the acceptance bar, ≥ 5×): durable records/s
///   through the log itself — 8 appends + ONE fsync vs fsync-per-append.
///   This isolates exactly what group commit changes: the fsync
///   schedule.
/// * **per-op** (asserted ≥ 3×): full protocol ops (submit + commit,
///   client verification included) through `PersistentServer`, 8
///   clients driving one op each per round. The win is diluted by the
///   protocol's own O(n) reply costs, which no fsync policy can remove.
fn bench_group_commit() {
    const BATCH: usize = 8;

    // --- per-record: the log with and without a per-append fsync.
    let mut c = clients(1).remove(0);
    let record = LogRecord::Submit {
        from: ClientId::new(0),
        msg: c.begin_write(Value::new(vec![0xA5; 64])).unwrap(),
    };
    let dir = testutil::scratch_dir("bench-rec-always");
    let mut wal = Wal::create(&dir, 1, 0, true).expect("create");
    let rec_always = bench_quiet("record append, fsync each", || {
        wal.append(&record, true).expect("append");
    });
    drop(wal);
    std::fs::remove_dir_all(&dir).ok();

    let always_rec_per_s = rec_always.per_second();
    println!(
        "{:<44} {:>12.0} rec/s",
        "record append, fsync each", always_rec_per_s
    );
    let mut speedups = std::collections::BTreeMap::new();
    for batch in [BATCH, 2 * BATCH, 4 * BATCH] {
        let dir = testutil::scratch_dir("bench-rec-group");
        let mut wal = Wal::create(&dir, 1, 0, true).expect("create");
        let rec_group = bench_quiet(&format!("{batch} record appends, one fsync"), || {
            for _ in 0..batch {
                wal.append(&record, false).expect("append");
            }
            wal.sync().expect("group fsync");
        });
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
        let group_rec_per_s = batch as f64 / (rec_group.ns_per_iter / 1e9);
        let rec_speedup = group_rec_per_s / always_rec_per_s;
        println!(
            "{:<44} {:>12.0} rec/s   speedup {:.2}x",
            format!("record append, group-commit (batch {batch})"),
            group_rec_per_s,
            rec_speedup
        );
        speedups.insert(batch, rec_speedup);
    }
    // The fsync itself gets somewhat slower with more dirty bytes, so
    // the amortization is sublinear: asserted ≥ 3× at batch 8 and — the
    // acceptance bar — ≥ 5× within batch ≤ 16.
    assert!(
        speedups[&BATCH] >= 3.0,
        "group commit at batch {BATCH} must beat per-record fsync ≥ 3×, got {:.2}x",
        speedups[&BATCH]
    );
    assert!(
        speedups.values().any(|&s| s >= 5.0),
        "group commit (batch ≥ {BATCH}) must reach ≥ 5× durable record throughput \
         over fsync-each, got {speedups:?}"
    );

    // --- per-op: the full protocol path through PersistentServer.
    let dir = testutil::scratch_dir("bench-group-always");
    let mut cs = clients(1);
    let mut always = PersistentServer::open(
        &dir,
        1,
        StoreConfig {
            durability: Durability::Always,
            snapshot_every: 0,
        },
    )
    .unwrap();
    let base = bench_quiet("protocol op, logged fsync-always", || {
        let submit = cs[0].begin_write(Value::from("x")).unwrap();
        run_op(&mut always, &mut cs[0], submit);
    });
    drop(always);
    std::fs::remove_dir_all(&dir).ok();

    let dir = testutil::scratch_dir("bench-group");
    let mut cs = clients(BATCH);
    let mut grouped = PersistentServer::open(
        &dir,
        BATCH,
        StoreConfig {
            durability: Durability::Group {
                max_records: 10 * BATCH as u64, // explicit flush decides
                max_wait: Duration::from_secs(3600),
            },
            snapshot_every: 0,
        },
    )
    .unwrap();
    let mut round = 0u64;
    let grouped_m = bench_quiet(&format!("round of {BATCH} ops, group-commit"), || {
        faust_bench::group_commit_round(&mut grouped, &mut cs, round);
        round += 1;
    });
    drop(grouped);
    std::fs::remove_dir_all(&dir).ok();

    let base_ops_per_s = base.per_second();
    let group_ops_per_s = BATCH as f64 / (grouped_m.ns_per_iter / 1e9);
    let speedup = group_ops_per_s / base_ops_per_s;
    println!(
        "{:<44} {:>12.0} ops/s",
        "protocol op, logged fsync-always", base_ops_per_s
    );
    println!(
        "{:<44} {:>12.0} ops/s   speedup {:.2}x",
        format!("protocol op, group-commit (batch {BATCH})"),
        group_ops_per_s,
        speedup
    );
    assert!(
        speedup >= 3.0,
        "group commit at batch {BATCH} must beat per-record fsync ≥ 3× on full \
         protocol ops, got {speedup:.2}x \
         ({group_ops_per_s:.0} vs {base_ops_per_s:.0} ops/s)"
    );
}

/// Builds a store whose log holds exactly `records` records (submit +
/// commit pairs, interleaved across 2 clients so `L` stays short).
fn build_log(dir: &std::path::Path, records: u64) {
    let n = 2;
    let mut server = PersistentServer::open(dir, n, no_sync()).expect("open");
    let mut cs = clients(n);
    let mut round = 0u64;
    while server.next_seq() < records {
        let i = (round % n as u64) as usize;
        let submit = cs[i].begin_write(Value::unique(i as u32, round)).unwrap();
        run_op(&mut server, &mut cs[i], submit);
        round += 1;
    }
    assert_eq!(server.next_seq(), records);
}

/// Recovery wall time as the log grows; reports per-record cost too.
fn bench_recovery_scaling() {
    for records in [1_000u64, 4_000, 16_000] {
        let dir = testutil::scratch_dir("bench-recover");
        build_log(&dir, records);
        // recover() is too slow to batch thousands of times; measure a
        // handful of full runs and take the best (I/O cache warm).
        let mut best = f64::MAX;
        for _ in 0..5 {
            let start = Instant::now();
            let server = PersistentServer::recover(&dir, 2, no_sync()).expect("recover");
            assert_eq!(server.next_seq(), records);
            best = best.min(start.elapsed().as_secs_f64());
        }
        println!(
            "recover {records:>6} records                      {:>10.2} ms {:>12.0} records/s",
            best * 1e3,
            records as f64 / best
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn main() {
    section("write-ahead log appends");
    bench_wal_append(64);
    bench_wal_append(1024);

    section("logged protocol operations");
    bench_logged_op();

    section("group commit vs per-record fsync");
    bench_group_commit();

    section("recovery time vs log length");
    bench_recovery_scaling();
}
