//! Fork-linearizable lock-step storage — the baseline the FAUST paper
//! argues against.
//!
//! The paper's key impossibility observation (Section 1, with proofs in
//! the companion papers [4, 5]) is that **no fork-linearizable storage
//! protocol can be wait-free** even when the server is correct: a reader
//! must wait for a concurrent writer. This crate implements the classic
//! protocol structure that achieves fork-linearizability — a SUNDR-style
//! *lock-step* protocol in which every operation observes and signs one
//! globally agreed state, serialized by a server-side lock — precisely to
//! exhibit that cost:
//!
//! * concurrent operations queue behind the lock ([`LockStepServer`]),
//! * a client that crashes while holding the lock wedges every other
//!   client forever ([`LsDriver::crash_at`] demonstrates this), and
//! * throughput degrades linearly with concurrency, while USTOR's
//!   wait-free pipeline is unaffected (experiment E7).
//!
//! # Example
//!
//! ```
//! use faust_baseline::{LsDriver, LsWorkloadOp};
//! use faust_sim::SimConfig;
//! use faust_types::{ClientId, Value};
//!
//! let mut d = LsDriver::new(2, SimConfig::default(), b"doc");
//! d.push_op(ClientId::new(0), LsWorkloadOp::Write(Value::from("v1")));
//! d.push_op(ClientId::new(1), LsWorkloadOp::Read(ClientId::new(0)));
//! let result = d.run();
//! assert_eq!(result.incomplete_ops, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod protocol;

pub use driver::{LsDriver, LsRunResult, LsWorkloadOp};
pub use protocol::{
    LockStepClient, LockStepServer, LsCommit, LsCompletion, LsFault, LsGrant, LsSubmit, SignedState,
};
