//! Building [`SessionHistory`] containers from live state.
//!
//! Two sources: a `faust-store` directory (snapshot + WAL, read through
//! the read-only [`LogCursor`] so a live or crashed server's files can be
//! exported without mutating them), or an in-memory record stream (what
//! the simulator's recording backend captures for volatile servers).
//!
//! The exporter *computes* the claimed commit chain by replaying its own
//! records rather than trusting any caller-supplied value — the manifest
//! therefore binds the chain to the records, and an auditor that replays
//! to a different chain has proof the file was assembled dishonestly.

use std::fmt;
use std::path::Path;

use faust_crypto::SigScheme;
use faust_store::snapshot::read_snapshot;
use faust_store::{LogCursor, LogRecord, StoreError};
use faust_types::History;
use faust_ustor::{ServerState, UstorServer};

use crate::format::SessionHistory;

/// Error exporting a session history from a store directory.
#[derive(Debug)]
pub enum ExportError {
    /// The snapshot or WAL could not be read or failed recovery checks.
    Store(StoreError),
    /// The WAL starts at a non-zero sequence but no snapshot covers the
    /// prefix — the directory does not hold a complete session.
    MissingBaseState {
        /// The WAL's first sequence number.
        base_seq: u64,
    },
    /// The snapshot and WAL disagree about where the log starts.
    BaseMismatch {
        /// Sequence the snapshot covers up to (exclusive).
        snapshot: u64,
        /// The WAL's first sequence number.
        wal: u64,
    },
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Store(err) => write!(f, "cannot read store: {err}"),
            ExportError::MissingBaseState { base_seq } => write!(
                f,
                "WAL starts at sequence {base_seq} but no snapshot covers the prefix"
            ),
            ExportError::BaseMismatch { snapshot, wal } => write!(
                f,
                "snapshot covers up to sequence {snapshot} but the WAL starts at {wal}"
            ),
        }
    }
}

impl std::error::Error for ExportError {}

impl From<StoreError> for ExportError {
    fn from(err: StoreError) -> Self {
        ExportError::Store(err)
    }
}

/// Builds a session history from an in-memory record stream.
///
/// `base` is the state the records apply on top of, tagged with the
/// sequence number of the first record (`None` = a fresh server and
/// records starting at sequence 0). The claimed chain is computed by
/// replaying the records, never taken on trust.
pub fn export_records(
    n: usize,
    scheme: SigScheme,
    base: Option<(u64, ServerState)>,
    records: Vec<(u64, LogRecord)>,
    client_history: Option<History>,
) -> SessionHistory {
    let mut server = match &base {
        Some((_, state)) => UstorServer::from_state(state.clone()),
        None => UstorServer::new(n),
    };
    for (_, record) in &records {
        record.clone().replay(&mut server);
    }
    let final_state = server.export_state();
    SessionHistory {
        n,
        scheme,
        base_seq: base.as_ref().map(|(seq, _)| *seq).unwrap_or(0),
        base_state: base.map(|(_, state)| state),
        records,
        client_history,
        claimed_chain: final_state.sver,
        claimed_proofs: final_state.proofs,
    }
}

/// Exports the session history held in a `faust-store` directory:
/// snapshot (if any) as the base state plus every WAL record, read
/// strictly through [`LogCursor`].
pub fn export_store_dir(
    dir: &Path,
    scheme: SigScheme,
    client_history: Option<History>,
) -> Result<SessionHistory, ExportError> {
    let snapshot = read_snapshot(dir)?;
    let cursor = LogCursor::open(dir)?;
    let header = cursor.header();
    let base = match snapshot {
        Some(snapshot) => {
            if snapshot.next_seq != header.base_seq {
                return Err(ExportError::BaseMismatch {
                    snapshot: snapshot.next_seq,
                    wal: header.base_seq,
                });
            }
            Some((snapshot.next_seq, snapshot.state))
        }
        None if header.base_seq != 0 => {
            return Err(ExportError::MissingBaseState {
                base_seq: header.base_seq,
            });
        }
        None => None,
    };
    let mut records = Vec::new();
    for item in cursor {
        let scanned = item?;
        records.push((scanned.seq, scanned.record));
    }
    Ok(export_records(
        header.n,
        scheme,
        base,
        records,
        client_history,
    ))
}
