//! Simulation driver for the full FAUST stack: `n` FAUST clients, a
//! (correct or Byzantine) storage server, the reliable FIFO links, and the
//! offline client-to-client channel — the complete architecture of
//! Figures 1 and 4.
//!
//! Unlike the USTOR driver, FAUST runs forever (dummy reads and probes
//! re-arm themselves), so runs execute up to a deadline. The driver
//! records the user-visible history, every notification with its time,
//! and per-client failure state — everything the Definition 5 experiments
//! need.

use crate::client::{FaustClient, FaustConfig, UserOp};
use crate::events::{FailReason, Notification, StabilityCut};
use crate::handle::{Event as SessionEvent, SessionCore, SessionOutput};
use crate::offline::OfflineMsg;
use faust_crypto::sig::KeySet;
use faust_net::QueueTransport;
use faust_sim::{Event, MessageSize, NodeId, SimConfig, Simulation};
use faust_types::{ClientId, History, OpId, OpKind, Timestamp, UstorMsg, Value, Wire};
use faust_ustor::{serve, Server, ServerEngine};
use std::collections::{HashMap, VecDeque};

/// One step of a scripted FAUST client workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaustWorkloadOp {
    /// Write a value to the client's own register.
    Write(Value),
    /// Read a register.
    Read(ClientId),
    /// Idle for the given number of ticks before the next step.
    Pause(u64),
    /// Disconnect from all channels for the given duration (the paper's
    /// "Carlos is asleep"); buffered traffic is delivered on reconnect.
    Disconnect(u64),
    /// Crash (permanently).
    Crash,
}

#[derive(Debug, Clone)]
enum NetMsg {
    Ustor(UstorMsg),
    Offline(OfflineMsg),
}

impl MessageSize for NetMsg {
    fn size_bytes(&self) -> usize {
        match self {
            NetMsg::Ustor(m) => m.encoded_len(),
            NetMsg::Offline(m) => m.size_bytes(),
        }
    }
}

/// Timer tags.
const TICK_TAG: u64 = 1;
const RESUME_TAG: u64 = 2;
const RECONNECT_TAG: u64 = 3;

/// Outcome of a FAUST run.
#[derive(Debug)]
pub struct FaustRunResult {
    /// User-visible history (dummy reads excluded).
    pub history: History,
    /// Every notification per client, with the virtual time it occurred.
    pub notifications: Vec<Vec<(u64, Notification)>>,
    /// Clients that emitted `fail_i`, with reasons.
    pub failures: Vec<(ClientId, FailReason)>,
    /// Traffic statistics.
    pub metrics: faust_sim::Metrics,
    /// Virtual time when the run stopped (deadline or quiescence).
    pub final_time: u64,
}

impl FaustRunResult {
    /// The last stability cut a client reported, if any.
    pub fn last_cut(&self, client: ClientId) -> Option<StabilityCut> {
        self.notifications[client.index()]
            .iter()
            .rev()
            .find_map(|(_, n)| match n {
                Notification::Stable(cut) => Some(cut.clone()),
                _ => None,
            })
    }

    /// The time a client first emitted `fail_i`, if it did.
    pub fn failure_time(&self, client: ClientId) -> Option<u64> {
        self.notifications[client.index()]
            .iter()
            .find_map(|(t, n)| matches!(n, Notification::Failed(_)).then_some(*t))
    }

    /// The time a client's stability entry for `other` first reached
    /// timestamp `t`, if it did.
    pub fn stability_time(&self, client: ClientId, other: ClientId, t: Timestamp) -> Option<u64> {
        self.notifications[client.index()]
            .iter()
            .find_map(|(time, n)| match n {
                Notification::Stable(cut) if cut.w[other.index()] >= t => Some(*time),
                _ => None,
            })
    }

    /// Completions of user operations at `client`, in order.
    pub fn completions(&self, client: ClientId) -> Vec<crate::events::FaustCompletion> {
        self.notifications[client.index()]
            .iter()
            .filter_map(|(_, n)| match n {
                Notification::Completed(c) => Some(c.clone()),
                _ => None,
            })
            .collect()
    }
}

struct Slot {
    /// The client side is the same sans-io session core the live
    /// [`crate::FaustHandle`] drives — here inside virtual time.
    core: SessionCore,
    script: VecDeque<FaustWorkloadOp>,
    /// History ids of in-flight *user* ops by ticket (dummy reads are
    /// not ticketed and not recorded).
    ticket_ops: HashMap<u64, OpId>,
    notifications: Vec<(u64, Notification)>,
    crashed: bool,
    /// Script is parked on a Pause or Disconnect until its timer fires.
    waiting: bool,
}

/// Drives the full FAUST stack in simulation.
///
/// # Example
///
/// ```
/// use faust_core::{FaustDriver, FaustDriverConfig, FaustWorkloadOp};
/// use faust_types::{ClientId, Value};
/// use faust_ustor::UstorServer;
///
/// let mut d = FaustDriver::new(
///     2,
///     Box::new(UstorServer::new(2)),
///     FaustDriverConfig::default(),
///     b"doc",
/// );
/// d.push_op(ClientId::new(0), FaustWorkloadOp::Write(Value::from("v")));
/// let result = d.run_until(2_000);
/// assert!(result.failures.is_empty());
/// ```
pub struct FaustDriver {
    n: usize,
    sim: Simulation<NetMsg>,
    /// The server side: protocol state behind the transport-agnostic
    /// engine, fed through the deterministic queue transport.
    engine: ServerEngine,
    net: QueueTransport,
    slots: Vec<Slot>,
    history: History,
    tick_period: u64,
}

/// Configuration of a FAUST simulation run.
#[derive(Debug, Clone, Copy)]
pub struct FaustDriverConfig {
    /// Underlying network simulation parameters.
    pub sim: SimConfig,
    /// FAUST layer tuning.
    pub faust: FaustConfig,
    /// Period of the per-client tick timer (drives dummy reads and probe
    /// checks).
    pub tick_period: u64,
}

impl Default for FaustDriverConfig {
    fn default() -> Self {
        FaustDriverConfig {
            sim: SimConfig::default(),
            faust: FaustConfig::default(),
            tick_period: 25,
        }
    }
}

impl FaustDriver {
    /// Creates a driver for `n` FAUST clients against `server` (HMAC
    /// keys — the simulator fast path; see
    /// [`FaustDriver::new_with_scheme`]).
    pub fn new(
        n: usize,
        server: Box<dyn Server + Send>,
        config: FaustDriverConfig,
        key_seed: &[u8],
    ) -> Self {
        Self::new_with_scheme(n, server, config, key_seed, faust_crypto::SigScheme::Hmac)
    }

    /// [`FaustDriver::new`] with an explicit signature scheme.
    pub fn new_with_scheme(
        n: usize,
        server: Box<dyn Server + Send>,
        config: FaustDriverConfig,
        key_seed: &[u8],
        scheme: faust_crypto::SigScheme,
    ) -> Self {
        let keys = KeySet::generate_with(scheme, n, key_seed);
        let mut sim = Simulation::new(config.sim);
        // Arm the initial tick for every client.
        for i in 0..n {
            sim.set_timer(NodeId(i as u32), config.tick_period, TICK_TAG);
        }
        FaustDriver {
            n,
            sim,
            engine: ServerEngine::new(n, server),
            net: QueueTransport::new(),
            slots: (0..n)
                .map(|i| Slot {
                    core: SessionCore::new(FaustClient::new(
                        ClientId::new(i as u32),
                        n,
                        keys.keypair(i as u32).expect("generated").clone(),
                        keys.registry(),
                        config.faust,
                    )),
                    script: VecDeque::new(),
                    ticket_ops: HashMap::new(),
                    notifications: Vec::new(),
                    crashed: false,
                    waiting: false,
                })
                .collect(),
            history: History::new(),
            tick_period: config.tick_period,
        }
    }

    fn server_node(&self) -> NodeId {
        NodeId(self.n as u32)
    }

    /// Appends one step to a client's script.
    pub fn push_op(&mut self, client: ClientId, op: FaustWorkloadOp) {
        self.slots[client.index()].script.push_back(op);
    }

    /// Appends a whole script.
    pub fn push_ops(&mut self, client: ClientId, ops: impl IntoIterator<Item = FaustWorkloadOp>) {
        self.slots[client.index()].script.extend(ops);
    }

    /// Applies a session-core output: forwards messages, then drains the
    /// core's events into notifications and history records.
    fn apply_output(&mut self, i: usize, out: SessionOutput, now: u64) {
        let node = NodeId(i as u32);
        for msg in out.to_server {
            self.sim.send(node, self.server_node(), NetMsg::Ustor(msg));
        }
        for (to, msg) in out.offline {
            self.sim
                .send_offline(node, NodeId(to.as_u32()), NetMsg::Offline(msg));
        }
        for (t, event) in self.slots[i].core.take_events() {
            let note = match event {
                SessionEvent::Completed { ticket, completion } => {
                    if let Some(op_id) = self.slots[i].ticket_ops.remove(&ticket.index()) {
                        match completion.kind {
                            OpKind::Write => {
                                self.history
                                    .complete_write(op_id, t, Some(completion.timestamp))
                            }
                            OpKind::Read => self.history.complete_read(
                                op_id,
                                t,
                                completion.read_value.clone().flatten(),
                                Some(completion.timestamp),
                            ),
                        }
                    }
                    Notification::Completed(completion)
                }
                SessionEvent::Stable { cut } => Notification::Stable(cut),
                SessionEvent::Violation { reason } => Notification::Failed(reason),
                // The simulated links never fail out from under a client.
                SessionEvent::Disconnected { .. }
                | SessionEvent::Reconnecting { .. }
                | SessionEvent::Resumed => continue,
            };
            self.slots[i].notifications.push((t, note));
        }
        // A completed user op may unblock the next script step.
        if self.slots[i].core.backlog() == 0 {
            self.advance_script(i, now);
        }
    }

    /// Starts the next script step for client `i` if it is idle.
    fn advance_script(&mut self, i: usize, now: u64) {
        loop {
            let slot = &mut self.slots[i];
            if slot.crashed
                || slot.waiting
                || slot.core.failure().is_some()
                || slot.core.backlog() > 0
            {
                return;
            }
            let Some(step) = slot.script.pop_front() else {
                return;
            };
            let client_id = ClientId::new(i as u32);
            let node = NodeId(i as u32);
            match step {
                FaustWorkloadOp::Crash => {
                    slot.crashed = true;
                    self.sim.crash(node);
                    return;
                }
                FaustWorkloadOp::Pause(ticks) => {
                    slot.waiting = true;
                    self.sim.set_timer(node, ticks, RESUME_TAG);
                    return;
                }
                FaustWorkloadOp::Disconnect(duration) => {
                    slot.waiting = true;
                    self.sim.set_connected(node, false);
                    self.sim.set_timer(node, duration, RECONNECT_TAG);
                    return;
                }
                FaustWorkloadOp::Write(value) => {
                    let op_id = self.history.begin_write(client_id, value.clone(), now);
                    let (ticket, out) = self.slots[i].core.submit(UserOp::Write(value), now);
                    self.slots[i].ticket_ops.insert(ticket.index(), op_id);
                    self.apply_output(i, out, now);
                    return;
                }
                FaustWorkloadOp::Read(register) => {
                    if register.index() >= self.n {
                        continue;
                    }
                    let op_id = self.history.begin_read(client_id, register, now);
                    let (ticket, out) = self.slots[i].core.submit(UserOp::Read(register), now);
                    self.slots[i].ticket_ops.insert(ticket.index(), op_id);
                    self.apply_output(i, out, now);
                    return;
                }
            }
        }
    }

    /// Runs until `deadline` (virtual time) or quiescence, whichever is
    /// first.
    pub fn run_until(mut self, deadline: u64) -> FaustRunResult {
        for i in 0..self.n {
            self.advance_script(i, 0);
        }
        while let Some(ev) = self.sim.next() {
            if ev.time > deadline {
                break;
            }
            let now = ev.time;
            match ev.event {
                Event::Timer { node, tag, .. } => {
                    let i = node.0 as usize;
                    if i >= self.n || self.slots[i].crashed {
                        continue;
                    }
                    match tag {
                        TICK_TAG => {
                            // Re-arm and tick the protocol.
                            self.sim.set_timer(node, self.tick_period, TICK_TAG);
                            let out = self.slots[i].core.tick(now);
                            self.apply_output(i, out, now);
                        }
                        RESUME_TAG => {
                            self.slots[i].waiting = false;
                            self.advance_script(i, now);
                        }
                        RECONNECT_TAG => {
                            self.slots[i].waiting = false;
                            self.sim.set_connected(node, true);
                            self.advance_script(i, now);
                        }
                        _ => {}
                    }
                }
                Event::Message { from, to, msg, .. } => {
                    if to == self.server_node() {
                        let client = ClientId::new(from.0);
                        let NetMsg::Ustor(m) = msg else {
                            continue; // offline messages never reach the server
                        };
                        // The simulator acts as the transport: deliveries
                        // flow through the queue transport into the engine
                        // and the outputs return into virtual time.
                        self.net.push_incoming(client, m);
                        serve(&mut self.engine, &mut self.net);
                        let outputs: Vec<_> = self.net.drain_outgoing().collect();
                        for (rcpt, out) in outputs {
                            self.sim.send(
                                self.server_node(),
                                NodeId(rcpt.as_u32()),
                                NetMsg::Ustor(out),
                            );
                        }
                    } else {
                        let i = to.0 as usize;
                        if self.slots[i].crashed {
                            continue;
                        }
                        let out = match msg {
                            NetMsg::Ustor(UstorMsg::Reply(reply)) => {
                                self.slots[i].core.handle_reply(reply, now)
                            }
                            NetMsg::Offline(m) => self.slots[i].core.handle_offline(m, now),
                            _ => SessionOutput::default(),
                        };
                        self.apply_output(i, out, now);
                    }
                }
            }
        }

        let failures = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.core
                    .failure()
                    .cloned()
                    .map(|f| (ClientId::new(i as u32), f))
            })
            .collect();
        FaustRunResult {
            history: self.history,
            notifications: self.slots.into_iter().map(|s| s.notifications).collect(),
            failures,
            metrics: self.sim.metrics().clone(),
            final_time: self.sim.now(),
        }
    }
}

/// Generates a reproducible random FAUST workload (mirrors
/// `faust_ustor::random_workloads`).
pub fn random_faust_workloads(
    n: usize,
    ops_per_client: usize,
    write_fraction: f64,
    seed: u64,
) -> Vec<Vec<FaustWorkloadOp>> {
    let mut rng = faust_sim::SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (0..ops_per_client)
                .map(|seq| {
                    if rng.gen_bool(write_fraction) {
                        FaustWorkloadOp::Write(Value::unique(i as u32, seq as u64))
                    } else {
                        FaustWorkloadOp::Read(ClientId::new(rng.gen_index(n) as u32))
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_ustor::adversary::{CrashServer, Fig3Server, SplitBrainServer};
    use faust_ustor::UstorServer;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    fn default_driver(n: usize, server: Box<dyn Server + Send>) -> FaustDriver {
        FaustDriver::new(n, server, FaustDriverConfig::default(), b"faust-driver")
    }

    #[test]
    fn user_ops_complete_and_stabilize() {
        let mut d = default_driver(2, Box::new(UstorServer::new(2)));
        d.push_ops(
            c(0),
            vec![
                FaustWorkloadOp::Write(Value::from("a1")),
                FaustWorkloadOp::Write(Value::from("a2")),
            ],
        );
        d.push_op(c(1), FaustWorkloadOp::Read(c(0)));
        let r = d.run_until(5_000);
        assert!(r.failures.is_empty());
        // Both of C0's ops eventually become stable w.r.t. C1 — via C1's
        // dummy reads and the probe exchange.
        assert!(
            r.stability_time(c(0), c(1), 2).is_some(),
            "cuts: {:?}",
            r.last_cut(c(0))
        );
    }

    #[test]
    fn no_failures_with_correct_server_ever() {
        // Failure-detection accuracy (Definition 5 property 5).
        for seed in 0..5 {
            let mut d = FaustDriver::new(
                3,
                Box::new(UstorServer::new(3)),
                FaustDriverConfig {
                    sim: SimConfig {
                        seed,
                        link_delay: faust_sim::DelayModel::Uniform(1, 10),
                        offline_delay: faust_sim::DelayModel::Uniform(20, 80),
                    },
                    ..FaustDriverConfig::default()
                },
                b"accuracy",
            );
            for (i, w) in random_faust_workloads(3, 6, 0.5, seed)
                .into_iter()
                .enumerate()
            {
                d.push_ops(c(i as u32), w);
            }
            let r = d.run_until(10_000);
            assert!(r.failures.is_empty(), "seed {seed}: {:?}", r.failures);
        }
    }

    #[test]
    fn fork_detected_by_offline_exchange() {
        // Detection completeness (Definition 5 property 7): the split-
        // brain fork is invisible to USTOR but the offline version
        // exchange reveals incomparable versions at every correct client.
        let server = SplitBrainServer::new(2, vec![vec![c(0)], vec![c(1)]], 0);
        let mut d = default_driver(2, Box::new(server));
        d.push_op(c(0), FaustWorkloadOp::Write(Value::from("a")));
        d.push_op(c(1), FaustWorkloadOp::Write(Value::from("b")));
        let r = d.run_until(20_000);
        assert_eq!(
            r.failures.len(),
            2,
            "both clients must detect: {:?}",
            r.failures
        );
        for i in 0..2 {
            assert!(r.failure_time(c(i)).is_some());
        }
    }

    #[test]
    fn fig3_attack_detected_by_faust() {
        let server = Fig3Server::new(2, c(0), c(1));
        let mut d = default_driver(2, Box::new(server));
        d.push_op(c(0), FaustWorkloadOp::Write(Value::from("u")));
        d.push_ops(
            c(1),
            vec![
                FaustWorkloadOp::Pause(50),
                FaustWorkloadOp::Read(c(0)),
                FaustWorkloadOp::Read(c(0)),
            ],
        );
        let r = d.run_until(20_000);
        // USTOR alone cannot flag the attack, but FAUST's stability
        // mechanism eventually must (the forked versions are
        // incomparable).
        assert!(
            !r.failures.is_empty(),
            "notifications: {:?}",
            r.notifications
        );
    }

    #[test]
    fn mute_server_detection_is_not_triggered_but_stability_stalls() {
        // A silent server violates liveness only: accuracy forbids
        // blaming it. Stability simply stops advancing.
        let server = CrashServer::new(2, 3);
        let mut d = default_driver(2, Box::new(server));
        d.push_ops(
            c(0),
            vec![
                FaustWorkloadOp::Write(Value::from("a1")),
                FaustWorkloadOp::Write(Value::from("a2")),
            ],
        );
        let r = d.run_until(10_000);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn disconnected_client_catches_up_on_reconnect() {
        // The Carlos scenario: a disconnected client misses everything,
        // then reconnects and stabilizes via probes.
        let mut d = default_driver(3, Box::new(UstorServer::new(3)));
        d.push_op(c(2), FaustWorkloadOp::Disconnect(3_000));
        d.push_ops(
            c(0),
            vec![
                FaustWorkloadOp::Write(Value::from("a1")),
                FaustWorkloadOp::Write(Value::from("a2")),
            ],
        );
        d.push_op(c(1), FaustWorkloadOp::Read(c(0)));
        let r = d.run_until(30_000);
        assert!(r.failures.is_empty());
        // While Carlos (C2) was away, C0 could not be stable w.r.t. C2…
        let before = r.notifications[0]
            .iter()
            .filter(|(t, _)| *t < 2_000)
            .filter_map(|(_, n)| match n {
                Notification::Stable(cut) => Some(cut.w[2]),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        assert_eq!(before, 0, "no stability w.r.t. a disconnected client");
        // …but after reconnection stability catches up to both ops.
        assert!(
            r.stability_time(c(0), c(2), 2).is_some(),
            "last cut: {:?}",
            r.last_cut(c(0))
        );
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;
    use faust_ustor::adversary::SplitBrainServer;
    use faust_ustor::UstorServer;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    /// The engine+transport refactor must preserve the simulator's
    /// bit-for-bit reproducibility: identical seeds yield identical
    /// histories, notification streams, and traffic metrics.
    #[test]
    fn fixed_seed_runs_are_bit_identical() {
        let run = |server: Box<dyn Server + Send>| {
            let mut d = FaustDriver::new(
                3,
                server,
                FaustDriverConfig {
                    sim: SimConfig {
                        seed: 17,
                        link_delay: faust_sim::DelayModel::Uniform(1, 9),
                        offline_delay: faust_sim::DelayModel::Uniform(15, 60),
                    },
                    ..FaustDriverConfig::default()
                },
                b"determinism",
            );
            for (i, w) in random_faust_workloads(3, 5, 0.5, 23)
                .into_iter()
                .enumerate()
            {
                d.push_ops(c(i as u32), w);
            }
            let r = d.run_until(6_000);
            (
                r.history,
                r.notifications,
                r.failures,
                r.metrics,
                r.final_time,
            )
        };
        let a = run(Box::new(UstorServer::new(3)));
        let b = run(Box::new(UstorServer::new(3)));
        assert_eq!(a.0, b.0, "histories diverged");
        assert_eq!(a.1, b.1, "notifications diverged");
        assert_eq!(a.2, b.2);
        assert_eq!(a.3, b.3, "traffic metrics diverged");
        assert_eq!(a.4, b.4);

        // Determinism holds for Byzantine servers too.
        let fork = || SplitBrainServer::new(3, vec![vec![c(0), c(1)], vec![c(2)]], 2);
        let a = run(Box::new(fork()));
        let b = run(Box::new(fork()));
        assert_eq!(a.1, b.1, "Byzantine notifications diverged");
        assert_eq!(a.4, b.4);
    }
}
