//! E10 (part 2): end-to-end USTOR operation cost through the client and
//! server state machines (no network), as a function of the number of
//! clients `n` — the paper's efficiency claim in practice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faust_bench::{run_one_read, run_one_write, steady_state};
use faust_types::{ClientId, Value};

fn bench_write_op(c: &mut Criterion) {
    let mut group = c.benchmark_group("ustor_write_op");
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // Persistent state: each iteration is one more operation in a
            // long-running execution (per-op cost is flat in history
            // length — vectors have fixed arity n).
            let (mut server, mut clients) = steady_state(n, 64);
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                run_one_write(&mut server, &mut clients[0], Value::unique(0, seq))
            });
        });
    }
    group.finish();
}

fn bench_read_op(c: &mut Criterion) {
    let mut group = c.benchmark_group("ustor_read_op");
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (mut server, mut clients) = steady_state(n, 64);
            b.iter(|| run_one_read(&mut server, &mut clients[1], ClientId::new(0)));
        });
    }
    group.finish();
}

fn bench_sustained_throughput(c: &mut Criterion) {
    // Sustained alternating writes through one client (server state
    // advances normally — no cloning tricks).
    let mut group = c.benchmark_group("ustor_sustained");
    group.bench_function("write_chain_n16", |b| {
        let (mut server, mut clients) = steady_state(16, 64);
        let mut seq = 1_000u64;
        b.iter(|| {
            seq += 1;
            run_one_write(&mut server, &mut clients[0], Value::unique(0, seq))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_write_op, bench_read_op, bench_sustained_throughput);
criterion_main!(benches);
