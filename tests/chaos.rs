//! Chaos end-to-end tests: the server process is killed abruptly —
//! mid-conversation, no drain, replies vanishing with the sockets — and
//! restarted from its write-ahead log, several times in one run, while
//! auto-reconnecting [`FaustHandle`] sessions keep operating across the
//! outages.
//!
//! This composes the whole robustness stack over real loopback TCP:
//! [`KillableTransport`] severs an incarnation under the clients' feet,
//! the handles observe `Event::Disconnected`, redial through a
//! [`ClientDialer`] under backoff, replay their resend windows (unacked
//! SUBMITs plus the latest COMMIT) byte-identically, and the recovered
//! server answers already-processed timestamps from its duplicate-reply
//! cache — so every operation completes exactly once and an honest
//! (crashy, but honest) deployment is never blamed.
//!
//! Two claims:
//!
//! * **Honest chaos is survivable**: `FAUST_CHAOS_KILLS` (default 3)
//!   kill/restart cycles produce zero violations, every ticket
//!   completes, and a read issued after the final restart sees the data
//!   written before the first kill.
//! * **Chaos is no excuse**: if the log loses acknowledged records
//!   while the server is down, the auto-reconnected session surfaces
//!   [`Event::Violation`] — the resilience machinery must never paper
//!   over a genuine rollback.
//!
//! With `FAUST_CHAOS_STATS_JSON=<path>`, the honest test additionally
//! writes its per-client reconnect/resend counters as JSON for CI
//! artifact collection. With `FAUST_CHAOS_EXPORT_HISTORY=<path>`, it
//! exports the final store directory as a signed `FAUSTHIS` session
//! history before cleanup, so CI can replay the whole chaos run through
//! `faust audit` as an independent offline oracle.

use faust::core::handle::{
    DisconnectCause, Event, FaustHandle, HandleConfig, HandleStats, ReconnectPolicy,
};
use faust::core::{FaustConfig, UserOp};
use faust::net::{tcp, ClientDialer, ClientTransport, KillSwitch, KillableTransport};
use faust::store::{testutil, truncate_tail_records, PersistentBackend, StoreConfig};
use faust::types::{ClientId, Value};
use faust::ustor::ServerBackend;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

/// How many kill/restart cycles the honest test inflicts.
fn chaos_kills() -> usize {
    std::env::var("FAUST_CHAOS_KILLS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Generous per-operation deadline: each wait may span a server restart
/// plus several backoff rounds on a loaded CI machine.
const OP_TIMEOUT: Duration = Duration::from_secs(30);

/// Quiet protocol config: probes and dummy reads off so the only
/// traffic is the test's own operations (and their resends).
fn handle_config() -> HandleConfig {
    HandleConfig {
        faust: FaustConfig {
            probe_period: 1_000_000,
            dummy_reads: false,
            ..FaustConfig::default()
        },
        ..HandleConfig::default()
    }
}

/// Tight backoff so a restart is re-found quickly; the attempt budget is
/// effectively unlimited because the server *will* come back.
fn chaos_policy() -> ReconnectPolicy {
    ReconnectPolicy {
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
        connect_timeout: Duration::from_secs(1),
        ..ReconnectPolicy::default()
    }
}

/// Redials whatever address the harness last published — each restart is
/// a fresh `TcpServerTransport` on a fresh port, exactly like a crashed
/// process coming back behind a service-discovery entry.
struct PublishedAddrDialer {
    addr: Arc<Mutex<SocketAddr>>,
    id: ClientId,
}

impl ClientDialer for PublishedAddrDialer {
    fn dial(&mut self, timeout: Duration) -> std::io::Result<Box<dyn ClientTransport>> {
        let addr = *self.addr.lock().unwrap();
        Ok(Box::new(tcp::connect_timeout(addr, self.id, timeout)?))
    }
}

/// One live server incarnation: engine thread, the switch that stands
/// the serve loop down, and the handle that severs its sockets.
struct Incarnation {
    engine: JoinHandle<faust::ustor::EngineStats>,
    switch: KillSwitch,
    sever: faust::net::TcpSever,
}

impl Incarnation {
    /// Stands up a fresh incarnation from `backend` on a new loopback
    /// port and publishes its address for the dialers.
    fn spawn(backend: &PersistentBackend, n: usize, published: &Arc<Mutex<SocketAddr>>) -> Self {
        let transport =
            faust::net::TcpServerTransport::bind("127.0.0.1:0", n).expect("bind loopback");
        *published.lock().unwrap() = transport.local_addr();
        let sever = transport.sever_handle();
        let (transport, switch) = KillableTransport::new(transport);
        let server = backend.build(n).expect("backend builds/recovers");
        let engine = faust::core::runtime::spawn_engine(n, server, transport);
        Incarnation {
            engine,
            switch,
            sever,
        }
    }

    /// Kills the incarnation abruptly and waits for its thread to die:
    /// the serve loop stands down first (so its final courtesy flush is
    /// swallowed, as a real crash would swallow it), then every socket
    /// is severed so clients observe the loss immediately.
    fn kill(self) {
        self.switch.kill();
        self.sever.sever_all();
        self.engine.join().expect("engine thread panicked");
    }
}

/// Submits one op on `h` and waits it out (possibly across a restart).
fn run_op(h: &mut FaustHandle, op: UserOp) -> faust::core::FaustCompletion {
    let ticket = match op {
        UserOp::Write(v) => h.write(v),
        UserOp::Read(r) => h.read(r),
    };
    h.wait(ticket, OP_TIMEOUT)
        .unwrap_or_else(|e| panic!("client {} op failed: {e}", h.id().index()))
}

/// Drains `h`'s event queue into `sink`.
fn drain_events(h: &mut FaustHandle, sink: &mut Vec<Event>) {
    sink.extend(h.poll().into_iter().map(|(_, e)| e));
}

fn write_stats_json(path: &str, kills: usize, stats: &[HandleStats]) {
    let per_client: Vec<String> = stats
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!(
                concat!(
                    "{{\"client\":{},\"disconnects\":{},\"overload_sheds\":{},",
                    "\"dial_attempts\":{},\"resumes\":{},\"resent_submits\":{}}}"
                ),
                i, s.disconnects, s.overload_sheds, s.dial_attempts, s.resumes, s.resent_submits
            )
        })
        .collect();
    let json = format!(
        "{{\"kills\":{},\"clients\":{},\"per_client\":[{}]}}\n",
        kills,
        stats.len(),
        per_client.join(",")
    );
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(path, json).expect("write chaos stats");
}

#[test]
fn sessions_survive_repeated_abrupt_server_kills() {
    let kills = chaos_kills();
    let n = 2;
    let dir = testutil::scratch_dir("chaos-honest");
    // Real deployment durability: fsync before acknowledging, so every
    // reply a client processed is recoverable after any kill.
    let backend = PersistentBackend::new(&dir, StoreConfig::default());
    let published = Arc::new(Mutex::new("127.0.0.1:1".parse().unwrap()));
    let mut incarnation = Incarnation::spawn(&backend, n, &published);

    let config = handle_config();
    let mut handles: Vec<FaustHandle> = (0..n as u32)
        .map(|i| {
            let conn = tcp::connect(*published.lock().unwrap(), c(i)).expect("connect");
            FaustHandle::new(c(i), n, b"chaos-honest", &config, Box::new(conn)).with_auto_reconnect(
                Box::new(PublishedAddrDialer {
                    addr: Arc::clone(&published),
                    id: c(i),
                }),
                chaos_policy(),
            )
        })
        .collect();
    let mut events: Vec<Vec<Event>> = vec![Vec::new(); n];

    // The value the cross-restart read must still see at the very end:
    // written to client 0's register before the first kill and never
    // overwritten (all of client 0's later chaos ops are reads).
    run_op(&mut handles[0], UserOp::Write(Value::from("pre-chaos")));

    for round in 0..kills {
        // Ops served by the live incarnation.
        let keep = Value::unique(1, round as u64);
        run_op(&mut handles[1], UserOp::Write(keep));
        run_op(&mut handles[0], UserOp::Read(c(1)));

        // Submit on both sessions and kill the server *before* pumping
        // the handles, so the kill races the in-flight round trips: the
        // replies (or the SUBMITs themselves) die with the sockets and
        // only the resend window + duplicate cache can finish the ops.
        let t0 = handles[0].read(c(1));
        let t1 = handles[1].write(Value::unique(1, 100 + round as u64));
        incarnation.kill();
        incarnation = Incarnation::spawn(&backend, n, &published);
        for (h, t) in handles.iter_mut().zip([t0, t1]) {
            let done = match h.wait(t, OP_TIMEOUT) {
                Ok(done) => done,
                Err(e) => {
                    let id = h.id().index();
                    panic!(
                        "round {round}: client {id} op lost to the kill: {e}\n\
                         stats: {:?}\nevents: {:?}",
                        h.stats(),
                        h.poll()
                    );
                }
            };
            assert!(done.timestamp > 0);
        }
        for (h, sink) in handles.iter_mut().zip(events.iter_mut()) {
            drain_events(h, sink);
        }
    }

    // After the final restart: the read crossing every incarnation must
    // see the value written before the first kill.
    let done = run_op(&mut handles[1], UserOp::Read(c(0)));
    assert_eq!(
        done.read_value,
        Some(Some(Value::from("pre-chaos"))),
        "cross-restart read lost data"
    );

    let mut stats = Vec::new();
    for (h, sink) in handles.iter_mut().zip(events.iter_mut()) {
        drain_events(h, sink);
        stats.push(h.stats());
        h.disconnect();
    }
    incarnation.kill();

    for (i, sink) in events.iter().enumerate() {
        assert!(
            !sink.iter().any(|e| matches!(e, Event::Violation { .. })),
            "client {i}: honest chaos must never be blamed: {sink:?}"
        );
        let resumes = sink.iter().filter(|e| matches!(e, Event::Resumed)).count();
        assert!(
            resumes >= kills,
            "client {i}: expected ≥{kills} resumes, saw {resumes}"
        );
        assert!(
            sink.iter().any(|e| matches!(
                e,
                Event::Disconnected {
                    reason: DisconnectCause::TransportLoss | DisconnectCause::Overloaded
                }
            )),
            "client {i}: kills must surface as Disconnected events"
        );
    }
    for (i, s) in stats.iter().enumerate() {
        assert_eq!(
            s.disconnects as usize, kills,
            "client {i}: one disconnect per kill: {s:?}"
        );
        assert!(
            s.resumes as usize >= kills && s.dial_attempts >= s.resumes,
            "client {i}: implausible reconnect accounting: {s:?}"
        );
    }

    if let Ok(path) = std::env::var("FAUST_CHAOS_STATS_JSON") {
        write_stats_json(&path, kills, &stats);
    }
    if let Ok(path) = std::env::var("FAUST_CHAOS_EXPORT_HISTORY") {
        let session = faust::audit::export_store_dir(&dir, faust::crypto::SigScheme::Hmac, None)
            .expect("export chaos store directory");
        session
            .write_to(std::path::Path::new(&path))
            .expect("write chaos history");
        println!(
            "exported {} records across {} incarnations to {path}",
            session.records.len(),
            kills + 1
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_log_restart_is_flagged_through_auto_reconnect() {
    // The flip side: resilience must not become complicity. The sessions
    // reconnect to the restarted server on their own — and then convict
    // it, because the log lost acknowledged operations while it was
    // down.
    let n = 2;
    let dir = testutil::scratch_dir("chaos-truncated");
    // No auto-snapshots: the whole acknowledged history sits in the log,
    // so the truncation below provably discards acknowledged records.
    let backend = PersistentBackend::new(
        &dir,
        StoreConfig {
            snapshot_every: 0,
            ..StoreConfig::default()
        },
    );
    let published = Arc::new(Mutex::new("127.0.0.1:1".parse().unwrap()));
    let incarnation = Incarnation::spawn(&backend, n, &published);

    let config = handle_config();
    let mut handles: Vec<FaustHandle> = (0..n as u32)
        .map(|i| {
            let conn = tcp::connect(*published.lock().unwrap(), c(i)).expect("connect");
            FaustHandle::new(c(i), n, b"chaos-truncated", &config, Box::new(conn))
                .with_auto_reconnect(
                    Box::new(PublishedAddrDialer {
                        addr: Arc::clone(&published),
                        id: c(i),
                    }),
                    chaos_policy(),
                )
        })
        .collect();

    for k in 0..3 {
        run_op(&mut handles[0], UserOp::Write(Value::unique(0, k)));
        run_op(&mut handles[1], UserOp::Write(Value::unique(1, k)));
    }
    incarnation.kill();

    // While the server is down, its log loses acknowledged records (a
    // rollback, not a wipe: earlier operations survive).
    let kept = truncate_tail_records(&dir, 4).expect("tamper with the log");
    assert!(kept > 0, "a rollback, not a wipe");
    let incarnation = Incarnation::spawn(&backend, n, &published);

    // The next operations go through the full auto-reconnect machinery
    // and must end in a conviction: at least one client pins the
    // rolled-back schedule as a violation (the convicting session has
    // halted, so its wait reports the violation instead of completing).
    let mut convicted = false;
    for h in handles.iter_mut() {
        let ticket = h.write(Value::from("after-rollback"));
        match h.wait(ticket, OP_TIMEOUT) {
            Err(faust::core::handle::WaitError::Violation(_)) => {
                let events = h.poll();
                assert!(
                    events
                        .iter()
                        .any(|(_, e)| matches!(e, Event::Violation { .. })),
                    "violation event missing: {events:?}"
                );
                assert!(
                    h.stats().resumes >= 1,
                    "the conviction must arrive through a resumed connection: {:?}",
                    h.stats()
                );
                convicted = true;
            }
            Ok(_) => {} // this client's evidence may be insufficient alone
            Err(e) => panic!("client {}: unexpected error: {e}", h.id().index()),
        }
    }
    assert!(
        convicted,
        "a rolled-back server must be convicted by some client"
    );
    for mut h in handles {
        h.disconnect();
    }
    incarnation.kill();
    std::fs::remove_dir_all(&dir).ok();
}
