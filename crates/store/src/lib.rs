//! Crash-safe persistent backend for the USTOR server: an append-only
//! write-ahead log plus periodic snapshots, hand-rolled on the wire
//! codecs of `faust-types` and the SHA-256 of `faust-crypto` — no
//! external dependencies, no `unsafe`.
//!
//! # Why the *untrusted* server needs durability
//!
//! FAUST's guarantees come from clients cross-checking the server's
//! schedule; the server itself is untrusted and may crash. But a server
//! whose `MEM`/`SVER` live only in memory turns every restart into a
//! *rollback*: the erased schedule is indistinguishable from the fork
//! attack clients are built to detect, so an honest crash permanently
//! wedges the deployment (see
//! `faust-ustor/tests/attacks.rs::volatile_server_restart_is_detected_as_rollback`).
//! With this backend, every state mutation is logged **before it is
//! acknowledged**, so [`PersistentServer::recover`] rebuilds
//! bit-identical state and an honest restart is invisible to clients —
//! while a *truncated* log recovers into exactly the rollback clients
//! flag as a violation. Durable-but-truncatable state is where the
//! fail-aware argument bites: local checks ([`StoreError`]) catch
//! corruption the filesystem can see, clients catch the rollbacks it
//! cannot. `docs/persistence.md` specifies the format and invariants.
//!
//! # Layout
//!
//! * [`log`] — the write-ahead log: length-prefixed, SHA-256-checksummed,
//!   sequence-numbered records of every inbound protocol message.
//! * [`snapshot`] — atomic (write-temp + rename) snapshots of the full
//!   [`ServerState`](faust_ustor::ServerState); snapshots compact the log.
//! * [`server`] — [`PersistentServer`]: the `Server` impl that logs
//!   before acknowledging, and [`PersistentBackend`]: the
//!   [`ServerBackend`](faust_ustor::ServerBackend) every runtime
//!   (simulator, threaded, TCP) can plug in.
//! * [`testutil`] — fresh scratch directories for tests and benches.
//!
//! # Example
//!
//! ```
//! use faust_store::{testutil, Durability, PersistentServer, StoreConfig};
//! use faust_ustor::Server;
//!
//! let dir = testutil::scratch_dir("doc-example");
//! let config = StoreConfig { durability: Durability::Never, ..StoreConfig::default() };
//! let server = PersistentServer::open(&dir, 2, config.clone()).unwrap();
//! drop(server); // crash...
//! let recovered = PersistentServer::recover(&dir, 2, config).unwrap();
//! assert_eq!(recovered.next_seq(), 0); // nothing was logged yet
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod log;
pub mod server;
pub mod session;
pub mod sharded;
pub mod snapshot;
pub mod testutil;

pub use codec::LogRecord;
pub use log::{truncate_tail_records, wal_record_spans, LogCursor};
pub use server::{Durability, PersistentBackend, PersistentServer, SimClock, StoreConfig};
pub use sharded::{shard_dir, ShardStore, ShardedBackend};

use faust_types::WireError;
use std::fmt;
use std::io;

/// A structured recovery/persistence error. Recovery **never panics** and
/// never silently loads a prefix of the log: any anomaly — torn tail,
/// checksum mismatch, duplicated or missing sequence numbers, corrupt
/// snapshot — surfaces as one of these variants, telling the operator
/// exactly which invariant the on-disk state broke.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// A file did not start with its magic string (`file` names it).
    BadMagic {
        /// Which file: `"wal"` or `"snapshot"`.
        file: &'static str,
    },
    /// A file's format version is unknown to this build.
    UnsupportedVersion {
        /// Which file: `"wal"` or `"snapshot"`.
        file: &'static str,
        /// The version found on disk.
        version: u32,
    },
    /// A file ended inside its fixed-size header.
    TruncatedHeader {
        /// Which file: `"wal"` or `"snapshot"`.
        file: &'static str,
    },
    /// The on-disk state was written for a different client count.
    ClientCountMismatch {
        /// The client count the caller expects.
        expected: usize,
        /// The client count recorded on disk.
        found: usize,
    },
    /// The snapshot payload hash does not match its header digest.
    SnapshotChecksum,
    /// The snapshot payload failed to decode.
    SnapshotCorrupt(WireError),
    /// The session-file payload hash does not match its header digest.
    SessionChecksum,
    /// The session-file payload failed to decode.
    SessionCorrupt(WireError),
    /// The log ended in the middle of a record — a torn tail. Record
    /// `seq` was being read when the bytes ran out.
    TornRecord {
        /// Sequence number the torn record would have carried.
        seq: u64,
        /// How many more bytes the record needed.
        missing: usize,
    },
    /// A record's payload hash does not match its stored digest (bit rot
    /// or deliberate tampering).
    RecordChecksum {
        /// Sequence number expected at this position.
        seq: u64,
    },
    /// A record's checksum held but its payload failed to decode.
    RecordCorrupt {
        /// Sequence number expected at this position.
        seq: u64,
        /// The wire-level decode error.
        error: WireError,
    },
    /// A record repeats an already-seen sequence number (e.g. a
    /// duplicated tail).
    DuplicateRecord {
        /// Sequence number expected at this position.
        expected: u64,
        /// Sequence number actually found.
        found: u64,
    },
    /// Sequence numbers jumped forward — records are missing from the
    /// middle of the log.
    SequenceGap {
        /// Sequence number expected at this position.
        expected: u64,
        /// Sequence number actually found.
        found: u64,
    },
    /// A record declares an implausibly large payload length.
    ImplausibleRecordLength {
        /// Sequence number expected at this position.
        seq: u64,
        /// The declared payload length.
        len: u64,
    },
    /// A snapshot exists but the write-ahead log file is gone. Rotation
    /// always leaves a log file behind, so a missing log means the
    /// post-snapshot suffix of the history was discarded — a rollback.
    MissingWal,
    /// The snapshot covers operations the log has never heard of (the
    /// log restarts *after* the snapshot point, leaving a hole).
    SnapshotAheadOfLog {
        /// First sequence number not covered by the snapshot.
        snapshot_next: u64,
        /// First sequence number present in the log.
        base_seq: u64,
    },
    /// The log *ends* before the snapshot's coverage does: records the
    /// snapshot has absorbed were truncated off the log's tail. The
    /// snapshot alone could serve the state — but accepting it would
    /// rewind the sequence counter below `snapshot_next`, and records
    /// appended at those reused numbers would be silently skipped by
    /// the *next* recovery. Refused for the same reason every other
    /// anomaly is: no silent prefixes, ever.
    LogEndsBeforeSnapshot {
        /// First sequence number not covered by the snapshot.
        snapshot_next: u64,
        /// Sequence number the log would hand out next.
        log_next: u64,
    },
    /// [`PersistentServer::recover`] was asked to recover from a
    /// directory holding no state at all.
    MissingState,
    /// A sharded store was opened with a different shard count than it
    /// was created with. Re-partitioning would silently change register
    /// ownership and scatter the logs' global order, so the count is
    /// part of the on-disk layout.
    ShardLayoutMismatch {
        /// Shard count the backend was configured with.
        expected: usize,
        /// `shard-<i>/` directories actually present.
        found: usize,
    },
    /// A shard's log contained a record without a global sequence
    /// number (a single-engine record inside a sharded store) — the
    /// merged recovery cannot place it in the global order.
    UnroutedRecord {
        /// Which shard's log.
        shard: usize,
        /// The record's local sequence number.
        seq: u64,
    },
    /// A shard's snapshot does not record its global coverage (it was
    /// written by a single-engine store) — recovery cannot tell how far
    /// the replica's state reaches.
    UnshardedSnapshot {
        /// Which shard's snapshot.
        shard: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic { file } => write!(f, "{file}: bad magic"),
            StoreError::UnsupportedVersion { file, version } => {
                write!(f, "{file}: unsupported format version {version}")
            }
            StoreError::TruncatedHeader { file } => write!(f, "{file}: truncated header"),
            StoreError::ClientCountMismatch { expected, found } => {
                write!(f, "state is for {found} clients, expected {expected}")
            }
            StoreError::SnapshotChecksum => f.write_str("snapshot: payload checksum mismatch"),
            StoreError::SnapshotCorrupt(e) => write!(f, "snapshot: undecodable payload: {e}"),
            StoreError::SessionChecksum => f.write_str("session: payload checksum mismatch"),
            StoreError::SessionCorrupt(e) => write!(f, "session: undecodable payload: {e}"),
            StoreError::TornRecord { seq, missing } => {
                write!(f, "log: record {seq} torn ({missing} bytes missing)")
            }
            StoreError::RecordChecksum { seq } => {
                write!(f, "log: record {seq} checksum mismatch")
            }
            StoreError::RecordCorrupt { seq, error } => {
                write!(f, "log: record {seq} undecodable: {error}")
            }
            StoreError::DuplicateRecord { expected, found } => {
                write!(f, "log: duplicate record {found} where {expected} expected")
            }
            StoreError::SequenceGap { expected, found } => {
                write!(
                    f,
                    "log: sequence gap, record {found} where {expected} expected"
                )
            }
            StoreError::ImplausibleRecordLength { seq, len } => {
                write!(f, "log: record {seq} declares implausible length {len}")
            }
            StoreError::MissingWal => {
                f.write_str("snapshot present but log file missing: post-snapshot suffix discarded")
            }
            StoreError::SnapshotAheadOfLog {
                snapshot_next,
                base_seq,
            } => write!(
                f,
                "log starts at {base_seq} but snapshot already covers up to {snapshot_next}"
            ),
            StoreError::LogEndsBeforeSnapshot {
                snapshot_next,
                log_next,
            } => write!(
                f,
                "log ends at {log_next} but snapshot covers up to {snapshot_next}: \
                 snapshot-covered records were truncated off the log"
            ),
            StoreError::MissingState => f.write_str("no persistent state in directory"),
            StoreError::ShardLayoutMismatch { expected, found } => write!(
                f,
                "store holds {found} shard directories, backend configured for {expected}"
            ),
            StoreError::UnroutedRecord { shard, seq } => write!(
                f,
                "shard {shard}: record {seq} carries no global sequence number"
            ),
            StoreError::UnshardedSnapshot { shard } => write!(
                f,
                "shard {shard}: snapshot records no global coverage (single-engine format)"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<StoreError> for io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let e = StoreError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
        for e in [
            StoreError::BadMagic { file: "wal" },
            StoreError::TornRecord { seq: 7, missing: 3 },
            StoreError::RecordChecksum { seq: 1 },
            StoreError::DuplicateRecord {
                expected: 5,
                found: 4,
            },
            StoreError::MissingWal,
            StoreError::MissingState,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn store_error_converts_to_io_error() {
        let io_err: io::Error = StoreError::RecordChecksum { seq: 9 }.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("record 9"));
    }
}
