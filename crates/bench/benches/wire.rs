//! E6 companion: wire codec throughput for the protocol messages whose
//! sizes the `experiments` binary reports, plus the stream framing used
//! by the TCP transport.

use faust_bench::steady_state;
use faust_bench::timing::{bench, section};
use faust_types::frame::{frame_bytes, FrameDecoder};
use faust_types::{ClientId, ReplyMsg, UstorMsg, Value, Wire};
use faust_ustor::Server;
use std::hint::black_box;

/// Builds a representative steady-state read REPLY for `n` clients.
fn sample_reply(n: usize) -> ReplyMsg {
    let (mut server, mut clients) = steady_state(n, 64);
    let submit = clients[1].begin_read(ClientId::new(0)).expect("idle");
    server
        .on_submit(ClientId::new(1), submit)
        .pop()
        .expect("reply")
        .1
}

fn main() {
    section("reply encode/decode");
    for n in [4usize, 16, 64] {
        let reply = sample_reply(n);
        bench(&format!("reply_encode/n{n}"), || {
            black_box(black_box(&reply).encode());
        });
        let bytes = reply.encode();
        bench(&format!("reply_decode/n{n}"), || {
            black_box(ReplyMsg::decode(black_box(&bytes)).expect("valid"));
        });
    }

    section("submit encode/decode");
    let (_, mut clients) = steady_state(4, 64);
    let submit = clients[0]
        .begin_write(Value::new(vec![0xA5; 64]))
        .expect("idle");
    let bytes = submit.encode();
    bench("submit_encode", || {
        black_box(black_box(&submit).encode());
    });
    bench("submit_decode", || {
        black_box(faust_types::SubmitMsg::decode(black_box(&bytes)).expect("valid"));
    });

    section("stream framing");
    let msg = UstorMsg::Reply(sample_reply(16));
    bench("frame_encode/n16_reply", || {
        black_box(frame_bytes(black_box(&msg)));
    });
    let framed = frame_bytes(&msg);
    bench("frame_decode/n16_reply", || {
        let mut dec = FrameDecoder::new();
        dec.extend(black_box(&framed));
        black_box(dec.next_frame::<UstorMsg>().expect("valid").expect("one"));
    });
}
