//! End-to-end tests over real loopback TCP: the same FAUST protocol stack
//! the deterministic simulator exercises, with every client↔server
//! message crossing a socket as a length-prefixed frame.
//!
//! Two claims are checked: a correct server serves a write/read workload
//! with *no* `fail` notifications (failure-detection accuracy survives a
//! real transport), and a forked (split-brain) server is detected by
//! every client (detection completeness does too).

use faust::core::runtime::spawn_engine_with;
use faust::core::threaded_faust::{
    run_threaded_faust_over, run_threaded_faust_tcp, ThreadedFaustConfig,
};
use faust::core::{Notification, UserOp};
use faust::crypto::{KeySet, SigScheme};
use faust::net::{tcp, ClientConn, TcpServerTransport};
use faust::types::{ClientId, Value};
use faust::ustor::adversary::SplitBrainServer;
use faust::ustor::{IngressVerification, ServerEngine, UstorServer};
use std::sync::Arc;
use std::time::Duration;

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

/// A config generous enough for CI machines: probes every 50 ms, runs for
/// just over a second of wall time.
fn config() -> ThreadedFaustConfig {
    ThreadedFaustConfig {
        run_for: Duration::from_millis(1200),
        ..ThreadedFaustConfig::default()
    }
}

#[test]
fn three_clients_over_loopback_tcp_complete_without_failures() {
    let n = 3;
    let workloads = vec![
        vec![
            UserOp::Write(Value::from("a1")),
            UserOp::Write(Value::from("a2")),
            UserOp::Read(c(1)),
        ],
        vec![UserOp::Write(Value::from("b1")), UserOp::Read(c(0))],
        vec![UserOp::Read(c(0)), UserOp::Write(Value::from("c1"))],
    ];
    let report = run_threaded_faust_tcp(
        n,
        workloads,
        Box::new(UstorServer::new(n)),
        config(),
        b"tcp-e2e",
    )
    .expect("loopback TCP available");

    // Accuracy: a correct server is never blamed, even over TCP.
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    // Every user operation completed.
    assert_eq!(report.completions(c(0)), 3);
    assert_eq!(report.completions(c(1)), 2);
    assert_eq!(report.completions(c(2)), 2);
    // Reads carried values: C1's read of register 0 saw a2 or an earlier
    // consistent state, never garbage (any completed read suffices here —
    // value correctness is the simulator tests' job; this checks the
    // transport didn't corrupt anything en route).
    let read_completions: usize = (0..n as u32)
        .map(|i| {
            report.notifications[i as usize]
                .iter()
                .filter(|(_, note)| {
                    matches!(note, Notification::Completed(done) if done.read_value.is_some())
                })
                .count()
        })
        .sum();
    assert_eq!(read_completions, 3, "all three reads completed");
    // Stability spread across the TCP deployment.
    let cut = report.last_cut(c(0)).expect("stability cuts issued");
    assert!(
        cut.iter().all(|&w| w >= 2),
        "C0's writes should become globally stable, got {cut:?}"
    );
    // The engine actually carried the traffic.
    assert!(report.engine_stats.submits >= 7);
    assert_eq!(report.engine_stats.rejected, 0);
}

#[test]
fn forked_server_over_tcp_is_detected_by_every_client() {
    let n = 2;
    let server = SplitBrainServer::new(n, vec![vec![c(0)], vec![c(1)]], 0);
    let workloads = vec![
        vec![UserOp::Write(Value::from("left"))],
        vec![UserOp::Write(Value::from("right"))],
    ];
    let report = run_threaded_faust_tcp(n, workloads, Box::new(server), config(), b"tcp-fork")
        .expect("loopback TCP available");
    assert_eq!(
        report.failures.len(),
        2,
        "both clients must detect the fork over TCP: {:?}",
        report.failures
    );
}

#[test]
fn ed25519_ingress_verification_serves_tcp_clients() {
    // The sound deployment of docs/trust-model.md, end to end over real
    // sockets: clients hold Ed25519 signing keys, the server engine holds
    // *only the public-key registry* and batch-verifies every SUBMIT at
    // ingress. Honest traffic is never rejected, the full FAUST layer
    // (stability, failure detection) behaves exactly as with HMAC keys —
    // but unlike HMAC, this registry grants the server no forging power.
    let n = 3;
    let key_seed = b"tcp-ed25519";
    let keys = KeySet::generate_ed25519(n, key_seed);
    let registry = keys.registry();
    assert!(registry.is_public(), "server-side keys must be public-only");

    let transport = TcpServerTransport::bind("127.0.0.1:0", n).expect("bind loopback");
    let addr = transport.local_addr();
    let engine = ServerEngine::new(n, Box::new(UstorServer::new(n)))
        .with_verification(IngressVerification::Batched(Arc::new(registry)));
    let engine_thread = spawn_engine_with(engine, transport);
    let conns: Vec<ClientConn> = (0..n)
        .map(|i| tcp::connect(addr, c(i as u32)).expect("connect"))
        .collect();

    let workloads = vec![
        vec![
            UserOp::Write(Value::from("pk-1")),
            UserOp::Write(Value::from("pk-2")),
        ],
        vec![UserOp::Read(c(0))],
        vec![UserOp::Write(Value::from("pk-3")), UserOp::Read(c(0))],
    ];
    let config = ThreadedFaustConfig {
        scheme: SigScheme::Ed25519,
        ..config()
    };
    let report = run_threaded_faust_over(n, workloads, conns, config, key_seed, engine_thread);

    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(
        report.engine_stats.rejected, 0,
        "honest traffic must pass Ed25519 ingress verification"
    );
    assert_eq!(report.completions(c(0)), 2);
    assert_eq!(report.completions(c(1)), 1);
    assert_eq!(report.completions(c(2)), 2);
    assert!(report.engine_stats.submits >= 5);
}

#[test]
fn batched_ingress_verification_serves_tcp_clients() {
    // The same TCP deployment with the engine's batched SUBMIT
    // verification enabled over the HMAC fast path: honest traffic is
    // never rejected and the run behaves identically. (With HMAC keys
    // this configuration is a benchmarking device, not a sound
    // deployment — see docs/trust-model.md.)
    let n = 3;
    let key_seed = b"tcp-verified";
    let keys = KeySet::generate(n, key_seed);

    let transport = TcpServerTransport::bind("127.0.0.1:0", n).expect("bind loopback");
    let addr = transport.local_addr();
    let engine = ServerEngine::new(n, Box::new(UstorServer::new(n)))
        .with_verification(IngressVerification::Batched(Arc::new(keys.registry())));
    let engine_thread = spawn_engine_with(engine, transport);
    let conns: Vec<ClientConn> = (0..n)
        .map(|i| tcp::connect(addr, c(i as u32)).expect("connect"))
        .collect();

    let workloads = vec![
        vec![
            UserOp::Write(Value::from("v1")),
            UserOp::Write(Value::from("v2")),
        ],
        vec![UserOp::Read(c(0))],
        vec![UserOp::Write(Value::from("w1")), UserOp::Read(c(0))],
    ];
    let report = run_threaded_faust_over(n, workloads, conns, config(), key_seed, engine_thread);

    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(
        report.engine_stats.rejected, 0,
        "honest traffic must pass batched ingress verification"
    );
    assert_eq!(report.completions(c(0)), 2);
    assert_eq!(report.completions(c(1)), 1);
    assert_eq!(report.completions(c(2)), 2);
}
