//! The payoff of the persistent backend, proved through the simulated
//! full-protocol driver with crash/restart fault injection
//! ([`CrashRestartServer`]): an honest crash + recovery is **invisible**
//! to clients, while recovery from a truncated (rolled-back) or wiped
//! log is **detected** as a FAUST violation — the paper's fail-aware
//! guarantee extended to the server's own storage.

use faust_sim::SimConfig;
use faust_store::{testutil, truncate_tail_records, Durability, PersistentBackend, StoreConfig};
use faust_types::{ClientId, Value};
use faust_ustor::{CrashRestartServer, Driver, Fault, WorkloadOp};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn no_sync() -> StoreConfig {
    StoreConfig {
        durability: Durability::Never,
        ..StoreConfig::default()
    }
}

fn workload(driver: &mut Driver) {
    driver.push_ops(
        c(0),
        vec![
            WorkloadOp::Write(Value::from("a1")),
            WorkloadOp::Write(Value::from("a2")),
            WorkloadOp::Read(c(1)),
            WorkloadOp::Write(Value::from("a3")),
        ],
    );
    driver.push_ops(
        c(1),
        vec![
            WorkloadOp::Write(Value::from("b1")),
            WorkloadOp::Read(c(0)),
            WorkloadOp::Write(Value::from("b2")),
            WorkloadOp::Read(c(0)),
        ],
    );
}

#[test]
fn honest_crash_and_recovery_is_invisible_to_clients() {
    let dir = testutil::scratch_dir("attack-honest");
    let backend = PersistentBackend::new(&dir, no_sync());
    // Crash after message 9 of 16 (8 ops × submit+commit), mid-run.
    let server = CrashRestartServer::new(2, Box::new(backend), 9).unwrap();
    let mut driver = Driver::new(2, Box::new(server), SimConfig::default(), b"honest-crash");
    workload(&mut driver);
    let result = driver.run();
    assert!(
        !result.detected_fault(),
        "honest recovery must be invisible, got {:?}",
        result.faults
    );
    assert_eq!(result.incomplete_ops, 0, "every op completes");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn honest_crash_recovery_with_snapshots_is_also_invisible() {
    // Same, but with aggressive compaction so the crash recovers from
    // snapshot + short log rather than the full history.
    let dir = testutil::scratch_dir("attack-honest-snap");
    let backend = PersistentBackend::new(
        &dir,
        StoreConfig {
            durability: Durability::Never,
            snapshot_every: 3,
        },
    );
    let server = CrashRestartServer::new(2, Box::new(backend), 11).unwrap();
    let mut driver = Driver::new(2, Box::new(server), SimConfig::default(), b"honest-snap");
    workload(&mut driver);
    let result = driver.run();
    assert!(!result.detected_fault(), "{:?}", result.faults);
    assert_eq!(result.incomplete_ops, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The faults a lost/rolled-back schedule manifests as.
fn is_state_loss(fault: &Fault) -> bool {
    matches!(
        fault,
        Fault::VersionRegression | Fault::OwnTimestampMismatch | Fault::MissingProofSignature
    )
}

#[test]
fn truncated_log_recovery_is_detected_as_rollback() {
    // The server (or whoever holds its disk) truncates the log at a
    // record boundary while "down": local recovery is flawless, but the
    // acknowledged suffix is gone. Clients, whose version vectors
    // remember those acknowledgements, must flag the violation.
    let dir = testutil::scratch_dir("attack-truncate");
    let backend = PersistentBackend::new(&dir, no_sync());
    let hook_dir = dir.clone();
    let server = CrashRestartServer::new(2, Box::new(backend), 9)
        .unwrap()
        .with_hook(Box::new(move || {
            let kept = truncate_tail_records(&hook_dir, 4).expect("tamper");
            assert!(kept > 0, "rollback, not a wipe");
        }));
    let mut driver = Driver::new(2, Box::new(server), SimConfig::default(), b"truncated");
    workload(&mut driver);
    let result = driver.run();
    assert!(
        result.detected_fault(),
        "rolled-back recovery must be detected"
    );
    assert!(
        result.faults.iter().any(|(_, f)| is_state_loss(f)),
        "expected a state-loss fault, got {:?}",
        result.faults
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wiped_store_recovery_is_detected_like_a_volatile_server() {
    // Deleting the whole store directory degrades the persistent server
    // to the volatile one — and triggers the same detection.
    let dir = testutil::scratch_dir("attack-wipe");
    let backend = PersistentBackend::new(&dir, no_sync());
    let hook_dir = dir.clone();
    let server = CrashRestartServer::new(2, Box::new(backend), 9)
        .unwrap()
        .with_hook(Box::new(move || {
            std::fs::remove_dir_all(&hook_dir).expect("wipe");
        }));
    let mut driver = Driver::new(2, Box::new(server), SimConfig::default(), b"wiped");
    workload(&mut driver);
    let result = driver.run();
    assert!(result.detected_fault(), "wiped recovery must be detected");
    assert!(
        result.faults.iter().any(|(_, f)| is_state_loss(f)),
        "expected a state-loss fault, got {:?}",
        result.faults
    );
    std::fs::remove_dir_all(&dir).ok();
}
