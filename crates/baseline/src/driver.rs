//! Simulation driver for the lock-step baseline, mirroring
//! `faust_ustor::Driver` so the two protocols can be compared head-to-head
//! on identical workloads (experiment E7: wait-freedom vs. blocking).

use crate::protocol::{
    LockStepClient, LockStepServer, LsCommit, LsCompletion, LsFault, LsGrant, LsSubmit,
};
use faust_crypto::sig::KeySet;
use faust_sim::{Event, MessageSize, NodeId, SimConfig, Simulation};
use faust_types::{ClientId, History, OpId, OpKind, Value};
use std::collections::VecDeque;

/// One step of a scripted client workload (identical shape to the USTOR
/// driver's, so benchmarks can share workload generators).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsWorkloadOp {
    /// Write a value to the client's own register.
    Write(Value),
    /// Read a register.
    Read(ClientId),
    /// Idle for the given virtual-time ticks.
    Pause(u64),
    /// Crash the client (taking the global lock down with it if held —
    /// that is the point of the experiment).
    Crash,
}

/// Timer tag used by [`LsDriver::crash_at`].
const CRASH_TAG: u64 = u64::MAX;

#[derive(Debug, Clone)]
enum LsNetMsg {
    Submit(LsSubmit),
    Grant(Box<LsGrant>),
    Commit(Box<LsCommit>),
}

impl MessageSize for LsNetMsg {
    fn size_bytes(&self) -> usize {
        // Rough wire-size model: states dominate (seq + counts + hashes +
        // signature); values carried verbatim.
        match self {
            LsNetMsg::Submit(m) => 16 + m.value.as_ref().map_or(0, |v| v.len()),
            LsNetMsg::Grant(g) => {
                40 + g.state.counts.len() * 41 + g.value.as_ref().map_or(0, |v| v.len())
            }
            LsNetMsg::Commit(c) => {
                40 + c.state.counts.len() * 41 + c.value.as_ref().map_or(0, |v| v.len())
            }
        }
    }
}

/// Outcome of a lock-step run.
#[derive(Debug)]
pub struct LsRunResult {
    /// The recorded history.
    pub history: History,
    /// Completions per client.
    pub completions: Vec<Vec<LsCompletion>>,
    /// Faults detected by clients.
    pub faults: Vec<(ClientId, LsFault)>,
    /// Traffic statistics.
    pub metrics: faust_sim::Metrics,
    /// Virtual time at quiescence.
    pub final_time: u64,
    /// Operations that never completed — the blocking the paper proves
    /// unavoidable for fork-linearizable protocols.
    pub incomplete_ops: usize,
}

struct Slot {
    proto: LockStepClient,
    queue: VecDeque<LsWorkloadOp>,
    current: Option<OpId>,
    completions: Vec<LsCompletion>,
    fault: Option<LsFault>,
    crashed: bool,
}

/// Drives `n` lock-step clients against the lock-step server.
///
/// # Example
///
/// ```
/// use faust_baseline::{LsDriver, LsWorkloadOp};
/// use faust_sim::SimConfig;
/// use faust_types::{ClientId, Value};
///
/// let mut d = LsDriver::new(2, SimConfig::default(), b"ex");
/// d.push_op(ClientId::new(0), LsWorkloadOp::Write(Value::from("v")));
/// d.push_op(ClientId::new(1), LsWorkloadOp::Read(ClientId::new(0)));
/// let r = d.run();
/// assert_eq!(r.incomplete_ops, 0);
/// ```
pub struct LsDriver {
    n: usize,
    sim: Simulation<LsNetMsg>,
    server: LockStepServer,
    slots: Vec<Slot>,
    history: History,
}

impl LsDriver {
    /// Creates a driver for `n` clients with a correct lock-step server
    /// (HMAC keys; see [`LsDriver::new_with_scheme`]).
    pub fn new(n: usize, sim: SimConfig, key_seed: &[u8]) -> Self {
        Self::new_with_scheme(n, sim, key_seed, faust_crypto::SigScheme::Hmac)
    }

    /// [`LsDriver::new`] with an explicit signature scheme, for
    /// comparisons on equal cryptographic footing with the USTOR driver.
    pub fn new_with_scheme(
        n: usize,
        sim: SimConfig,
        key_seed: &[u8],
        scheme: faust_crypto::SigScheme,
    ) -> Self {
        let keys = KeySet::generate_with(scheme, n, key_seed);
        LsDriver {
            n,
            sim: Simulation::new(sim),
            server: LockStepServer::new(n),
            slots: (0..n)
                .map(|i| Slot {
                    proto: LockStepClient::new(
                        ClientId::new(i as u32),
                        n,
                        keys.keypair(i as u32).expect("generated").clone(),
                        keys.registry(),
                    ),
                    queue: VecDeque::new(),
                    current: None,
                    completions: Vec::new(),
                    fault: None,
                    crashed: false,
                })
                .collect(),
            history: History::new(),
        }
    }

    fn server_node(&self) -> NodeId {
        NodeId(self.n as u32)
    }

    /// Appends one step to a client's script.
    pub fn push_op(&mut self, client: ClientId, op: LsWorkloadOp) {
        self.slots[client.index()].queue.push_back(op);
    }

    /// Appends a whole script for a client.
    pub fn push_ops(&mut self, client: ClientId, ops: impl IntoIterator<Item = LsWorkloadOp>) {
        self.slots[client.index()].queue.extend(ops);
    }

    /// Schedules `client` to crash at absolute virtual time `time`,
    /// regardless of what it is doing — including mid-operation while
    /// holding the global lock, which is the blocking scenario of
    /// experiment E7.
    pub fn crash_at(&mut self, client: ClientId, time: u64) {
        self.sim.set_timer(NodeId(client.as_u32()), time, CRASH_TAG);
    }

    fn try_start(&mut self, i: usize) {
        loop {
            let slot = &mut self.slots[i];
            if slot.crashed || slot.fault.is_some() || slot.current.is_some() {
                return;
            }
            let Some(op) = slot.queue.pop_front() else {
                return;
            };
            let client_id = ClientId::new(i as u32);
            let now = self.sim.now();
            match op {
                LsWorkloadOp::Crash => {
                    slot.crashed = true;
                    self.sim.crash(NodeId(i as u32));
                    return;
                }
                LsWorkloadOp::Pause(ticks) => {
                    self.sim.set_timer(NodeId(i as u32), ticks, i as u64);
                    return;
                }
                LsWorkloadOp::Write(value) => {
                    let submit = slot.proto.begin_write(value.clone());
                    slot.current = Some(self.history.begin_write(client_id, value, now));
                    self.sim.send(
                        NodeId(i as u32),
                        self.server_node(),
                        LsNetMsg::Submit(submit),
                    );
                    return;
                }
                LsWorkloadOp::Read(register) => {
                    if register.index() >= self.n {
                        continue;
                    }
                    let submit = slot.proto.begin_read(register);
                    slot.current = Some(self.history.begin_read(client_id, register, now));
                    self.sim.send(
                        NodeId(i as u32),
                        self.server_node(),
                        LsNetMsg::Submit(submit),
                    );
                    return;
                }
            }
        }
    }

    /// Runs to quiescence.
    pub fn run(mut self) -> LsRunResult {
        for i in 0..self.n {
            self.try_start(i);
        }
        while let Some(ev) = self.sim.next() {
            let Event::Message { from, to, msg, .. } = ev.event else {
                if let Event::Timer { node, tag, .. } = ev.event {
                    if tag == CRASH_TAG {
                        self.slots[node.0 as usize].crashed = true;
                        self.sim.crash(node);
                    } else {
                        self.try_start(node.0 as usize);
                    }
                }
                continue;
            };
            if to == self.server_node() {
                let client = ClientId::new(from.0);
                let grants = match msg {
                    LsNetMsg::Submit(m) => self.server.on_submit(client, m),
                    LsNetMsg::Commit(m) => self.server.on_commit(client, *m),
                    LsNetMsg::Grant(_) => Vec::new(),
                };
                for (rcpt, grant) in grants {
                    self.sim.send(
                        self.server_node(),
                        NodeId(rcpt.as_u32()),
                        LsNetMsg::Grant(Box::new(grant)),
                    );
                }
            } else {
                let i = to.0 as usize;
                let LsNetMsg::Grant(grant) = msg else {
                    continue;
                };
                let now = self.sim.now();
                let slot = &mut self.slots[i];
                if slot.crashed || slot.fault.is_some() {
                    continue;
                }
                match slot.proto.handle_grant(*grant) {
                    Ok((commit, done)) => {
                        if let Some(op_id) = slot.current.take() {
                            match done.kind {
                                OpKind::Write => {
                                    self.history.complete_write(op_id, now, Some(done.seq))
                                }
                                OpKind::Read => self.history.complete_read(
                                    op_id,
                                    now,
                                    done.read_value.clone().flatten(),
                                    Some(done.seq),
                                ),
                            }
                        }
                        slot.completions.push(done);
                        self.sim.send(
                            NodeId(i as u32),
                            self.server_node(),
                            LsNetMsg::Commit(Box::new(commit)),
                        );
                        self.try_start(i);
                    }
                    Err(fault) => {
                        slot.fault = Some(fault);
                        slot.current = None;
                    }
                }
            }
        }
        let faults = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.fault.clone().map(|f| (ClientId::new(i as u32), f)))
            .collect();
        let incomplete_ops = self
            .history
            .ops()
            .iter()
            .filter(|o| !o.is_complete())
            .count();
        LsRunResult {
            incomplete_ops,
            faults,
            completions: self.slots.iter().map(|s| s.completions.clone()).collect(),
            metrics: self.sim.metrics().clone(),
            final_time: self.sim.now(),
            history: self.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    #[test]
    fn sequential_workload_completes() {
        let mut d = LsDriver::new(2, SimConfig::default(), b"ls1");
        d.push_ops(
            c(0),
            vec![
                LsWorkloadOp::Write(Value::from("a")),
                LsWorkloadOp::Write(Value::from("b")),
            ],
        );
        d.push_ops(c(1), vec![LsWorkloadOp::Read(c(0))]);
        let r = d.run();
        assert!(r.faults.is_empty());
        assert_eq!(r.incomplete_ops, 0);
        assert_eq!(r.history.len(), 3);
    }

    #[test]
    fn crash_while_holding_lock_blocks_everyone() {
        // C0's crash lands after its grant arrived but before its commit
        // is processed: the lock is never released, so C1's and C2's
        // operations never complete — the protocol is not wait-free.
        let mut d = LsDriver::new(
            3,
            SimConfig {
                link_delay: faust_sim::DelayModel::Fixed(10),
                ..SimConfig::default()
            },
            b"ls2",
        );
        d.push_op(c(0), LsWorkloadOp::Write(Value::from("w")));
        d.push_ops(c(1), vec![LsWorkloadOp::Pause(5), LsWorkloadOp::Read(c(0))]);
        d.push_ops(c(2), vec![LsWorkloadOp::Pause(5), LsWorkloadOp::Read(c(0))]);
        // Grant arrives at t=20 (submit 10 + grant 10); crash at t=15,
        // while the grant is in flight.
        d.crash_at(c(0), 15);
        let r = d.run();
        assert!(r.faults.is_empty());
        // C0's write and both readers' ops are wedged forever.
        assert_eq!(r.incomplete_ops, 3, "history: {:?}", r.history);
    }

    #[test]
    fn lock_serializes_concurrent_clients() {
        // All clients submit at t=0; ops serialize behind the lock, so
        // the run takes ~2 round trips per op in sequence.
        let mut d = LsDriver::new(
            4,
            SimConfig {
                link_delay: faust_sim::DelayModel::Fixed(10),
                ..SimConfig::default()
            },
            b"ls4",
        );
        for i in 0..4 {
            d.push_op(c(i), LsWorkloadOp::Write(Value::unique(i, 0)));
        }
        let r = d.run();
        assert_eq!(r.incomplete_ops, 0);
        // Each op needs grant (10) + commit (10) before the next grant:
        // total ≥ 4 sequential ops ≈ 4 × 20 = 80 ticks. USTOR on the same
        // workload finishes in ~2 round trips total (all concurrent).
        assert!(
            r.final_time >= 70,
            "ops must serialize, got {}",
            r.final_time
        );
    }
}
