//! A realistic application on top of FAUST: a shared document built from
//! per-author append-only edit logs — the Wiki/Google-Docs-style
//! collaboration the paper's introduction motivates.
//!
//! Each author stores their own edit log in their SWMR register (writing
//! the whole log on each edit keeps values unique and the register model
//! intact). Authors read each other's registers to merge the document.
//! FAUST's stability cuts tell each author which of their edits are
//! *stable* — guaranteed to be in a common view with every collaborator —
//! and which are still "pending trust"; if the provider ever forked the
//! document, `fail` would fire instead.
//!
//! Run with: `cargo run --example shared_doc`

use faust::core::{FaustConfig, FaustDriver, FaustDriverConfig, FaustWorkloadOp, Notification};
use faust::sim::{DelayModel, SimConfig};
use faust::types::{ClientId, Value};
use faust::ustor::UstorServer;

const AUTHORS: [&str; 3] = ["ana", "bruno", "chen"];

/// Serializes an author's edit log as one register value.
fn log_value(author: usize, edits: &[&str]) -> Value {
    let mut text = String::new();
    for (i, edit) in edits.iter().enumerate() {
        text.push_str(&format!("{}#{}: {}\n", AUTHORS[author], i + 1, edit));
    }
    Value::new(text.into_bytes())
}

fn main() {
    let n = 3;
    let mut driver = FaustDriver::new(
        n,
        Box::new(UstorServer::new(n)),
        FaustDriverConfig {
            sim: SimConfig {
                seed: 7,
                link_delay: DelayModel::Fixed(2),
                offline_delay: DelayModel::Fixed(30),
            },
            faust: FaustConfig {
                probe_period: 300,
                dummy_reads: true,
                commit_mode: faust::ustor::CommitMode::Immediate,
                pipeline: 1,
            },
            tick_period: 25,
        },
        b"shared-doc",
    );

    // Ana drafts the intro, Bruno the middle, Chen the conclusion; each
    // also reads the others' sections while working.
    let ana = ClientId::new(0);
    let bruno = ClientId::new(1);
    let chen = ClientId::new(2);

    driver.push_ops(
        ana,
        vec![
            FaustWorkloadOp::Write(log_value(0, &["# Shared design doc"])),
            FaustWorkloadOp::Write(log_value(
                0,
                &["# Shared design doc", "## Goals: fail-aware storage"],
            )),
            FaustWorkloadOp::Pause(60),
            FaustWorkloadOp::Read(bruno),
            FaustWorkloadOp::Write(log_value(
                0,
                &[
                    "# Shared design doc",
                    "## Goals: fail-aware storage",
                    "(reviewed Bruno's part)",
                ],
            )),
        ],
    );
    driver.push_ops(
        bruno,
        vec![
            FaustWorkloadOp::Pause(20),
            FaustWorkloadOp::Write(log_value(1, &["## Protocol: USTOR, one round/op"])),
            FaustWorkloadOp::Read(ana),
            FaustWorkloadOp::Write(log_value(
                1,
                &[
                    "## Protocol: USTOR, one round/op",
                    "## Versions: (V, M) with ≼",
                ],
            )),
        ],
    );
    driver.push_ops(
        chen,
        vec![
            FaustWorkloadOp::Pause(40),
            FaustWorkloadOp::Read(ana),
            FaustWorkloadOp::Read(bruno),
            FaustWorkloadOp::Write(log_value(2, &["## Conclusion: trust, but verify"])),
        ],
    );

    let result = driver.run_until(5_000);
    assert!(result.failures.is_empty(), "provider was honest");

    // Assemble the final document from each author's last write.
    println!("=== merged document ===");
    for (i, author) in AUTHORS.iter().enumerate() {
        let last_write = result
            .history
            .ops()
            .iter()
            .rfind(|op| op.client.index() == i && op.written.is_some());
        if let Some(op) = last_write {
            let text = String::from_utf8_lossy(op.written.as_ref().unwrap().as_bytes());
            print!("{text}");
        } else {
            println!("({author} wrote nothing)");
        }
    }

    // Per-author trust report from the stability cuts.
    println!("\n=== trust report ===");
    for (i, author) in AUTHORS.iter().enumerate() {
        let id = ClientId::new(i as u32);
        let completions = result.completions(id);
        let last_cut = result.last_cut(id).expect("stability cuts were issued");
        let globally_stable = last_cut.w.iter().copied().min().unwrap_or(0);
        let total = completions.last().map(|done| done.timestamp).unwrap_or(0);
        println!(
            "{author:>6}: {total} ops; stable w.r.t. everyone up to timestamp \
{globally_stable} (cut {last_cut})"
        );
        assert!(
            globally_stable >= total,
            "with an honest provider and live collaborators, everything stabilizes"
        );
    }
    let any_failed = result
        .notifications
        .iter()
        .flatten()
        .any(|(_, note)| matches!(note, Notification::Failed(_)));
    println!(
        "\nno forks detected: {}",
        if any_failed {
            "NO (!!)"
        } else {
            "correct — every edit is mutually vouched"
        }
    );
}
