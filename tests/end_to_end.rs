//! Cross-crate integration tests: the complete FAUST stack against the
//! paper's scenarios and every adversary, with histories validated by the
//! consistency checkers.

use faust::baseline::{LsDriver, LsWorkloadOp};
use faust::consistency::{
    check_causal_consistency, check_fork_linearizability, check_linearizability,
    check_weak_fork_linearizability, Budget, Verdict,
};
use faust::core::{FaustConfig, FaustDriver, FaustDriverConfig, FaustWorkloadOp, Notification};
use faust::sim::{DelayModel, SimConfig};
use faust::types::{ClientId, Value};
use faust::ustor::adversary::{CrashServer, Fig3Server, SplitBrainServer, Tamper, TamperServer};
use faust::ustor::UstorServer;

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

/// Figure 2, mechanically: Alice receives exactly stable_Alice([10,8,3])
/// and — after Carlos reconnects — eventually stable_Alice([10,10,10]).
#[test]
fn figure_2_stability_cut() {
    const ALICE: ClientId = ClientId::new(0);
    const BOB: ClientId = ClientId::new(1);
    const CARLOS: ClientId = ClientId::new(2);

    let mut driver = FaustDriver::new(
        3,
        Box::new(UstorServer::new(3)),
        FaustDriverConfig {
            sim: SimConfig {
                seed: 2,
                link_delay: DelayModel::Fixed(1),
                offline_delay: DelayModel::Fixed(20),
            },
            faust: FaustConfig {
                probe_period: 2_000,
                dummy_reads: false,
                commit_mode: faust::ustor::CommitMode::Immediate,
                pipeline: 1,
            },
            tick_period: 25,
        },
        b"figure-2",
    );
    driver.push_ops(
        ALICE,
        vec![
            FaustWorkloadOp::Write(Value::from("alice rev 1")),
            FaustWorkloadOp::Write(Value::from("alice rev 2")),
            FaustWorkloadOp::Write(Value::from("alice rev 3")),
            FaustWorkloadOp::Pause(100),
            FaustWorkloadOp::Read(CARLOS),
            FaustWorkloadOp::Write(Value::from("alice rev 4")),
            FaustWorkloadOp::Write(Value::from("alice rev 5")),
            FaustWorkloadOp::Write(Value::from("alice rev 6")),
            FaustWorkloadOp::Write(Value::from("alice rev 7")),
            FaustWorkloadOp::Pause(150),
            FaustWorkloadOp::Read(BOB),
            FaustWorkloadOp::Write(Value::from("alice rev 8")),
        ],
    );
    driver.push_ops(
        BOB,
        vec![FaustWorkloadOp::Pause(230), FaustWorkloadOp::Read(ALICE)],
    );
    driver.push_ops(
        CARLOS,
        vec![
            FaustWorkloadOp::Pause(55),
            FaustWorkloadOp::Read(ALICE),
            FaustWorkloadOp::Disconnect(8_000),
        ],
    );

    let result = driver.run_until(30_000);
    assert!(result.failures.is_empty(), "{:?}", result.failures);

    let cuts: Vec<Vec<u64>> = result.notifications[ALICE.index()]
        .iter()
        .filter_map(|(_, n)| match n {
            Notification::Stable(cut) => Some(cut.w.clone()),
            _ => None,
        })
        .collect();
    assert!(
        cuts.contains(&vec![10, 8, 3]),
        "expected the Figure 2 cut [10,8,3] among {cuts:?}"
    );
    let last = cuts.last().expect("cuts were issued");
    assert!(
        last.iter().all(|&w| w >= 10),
        "eventual stability: {last:?}"
    );
    // Integrity (Definition 5 property 4): Alice's timestamps increase.
    let stamps: Vec<u64> = result
        .completions(ALICE)
        .iter()
        .map(|done| done.timestamp)
        .collect();
    assert_eq!(stamps, (1..=10).collect::<Vec<u64>>());
}

/// The full FAUST stack on a correct server: linearizable, wait-free, no
/// false accusations, histories pass every checker.
#[test]
fn faust_correct_server_properties() {
    let budget = Budget::default();
    for seed in 0..5 {
        let mut driver = FaustDriver::new(
            3,
            Box::new(UstorServer::new(3)),
            FaustDriverConfig {
                sim: SimConfig {
                    seed,
                    link_delay: DelayModel::Uniform(1, 10),
                    offline_delay: DelayModel::Uniform(20, 60),
                },
                ..FaustDriverConfig::default()
            },
            b"e2e-correct",
        );
        for (i, w) in faust::core::random_faust_workloads(3, 5, 0.5, seed)
            .into_iter()
            .enumerate()
        {
            driver.push_ops(c(i as u32), w);
        }
        let result = driver.run_until(20_000);
        assert!(result.failures.is_empty(), "seed {seed}");
        let incomplete = result
            .history
            .ops()
            .iter()
            .filter(|o| !o.is_complete())
            .count();
        assert_eq!(incomplete, 0, "wait-freedom, seed {seed}");
        assert_eq!(
            check_linearizability(&result.history, &budget),
            Verdict::Satisfied,
            "seed {seed}"
        );
    }
}

/// Every adversary type ends in either detection or, for pure liveness
/// attacks, silence — never a false accusation and never an undetected
/// *consistency* violation.
#[test]
fn adversary_matrix() {
    // (server, expect_detection)
    let cases: Vec<(Box<dyn faust::ustor::Server + Send>, bool, &str)> = vec![
        (
            Box::new(SplitBrainServer::new(
                3,
                vec![vec![c(0)], vec![c(1), c(2)]],
                0,
            )),
            true,
            "split-brain",
        ),
        (Box::new(Fig3Server::new(3, c(0), c(1))), true, "fig3"),
        (
            Box::new(TamperServer::new(3, c(1), 1, Tamper::CorruptCommitSig)),
            true,
            "corrupt-commit-sig",
        ),
        (
            Box::new(TamperServer::new(
                3,
                c(1),
                2,
                Tamper::RegressToInitialVersion,
            )),
            true,
            "regress-version",
        ),
        (Box::new(CrashServer::new(3, 4)), false, "mute-server"),
        (Box::new(UstorServer::new(3)), false, "correct"),
    ];
    for (server, expect_detection, name) in cases {
        let mut driver =
            FaustDriver::new(3, server, FaustDriverConfig::default(), b"adversary-matrix");
        for i in 0..3u32 {
            driver.push_ops(
                c(i),
                vec![
                    FaustWorkloadOp::Write(Value::unique(i, 1)),
                    FaustWorkloadOp::Pause(30 * (i as u64 + 1)),
                    FaustWorkloadOp::Read(c((i + 1) % 3)),
                    FaustWorkloadOp::Write(Value::unique(i, 2)),
                ],
            );
        }
        let result = driver.run_until(30_000);
        if expect_detection {
            assert!(
                !result.failures.is_empty(),
                "{name}: expected detection, got none"
            );
        } else {
            assert!(
                result.failures.is_empty(),
                "{name}: false accusation {:?}",
                result.failures
            );
        }
    }
}

/// The lock-step baseline produces linearizable (hence fork-linearizable)
/// histories when the server is correct.
#[test]
fn lockstep_histories_linearizable() {
    let budget = Budget::default();
    for seed in 0..5 {
        let mut d = LsDriver::new(
            3,
            SimConfig {
                seed,
                link_delay: DelayModel::Uniform(1, 10),
                offline_delay: DelayModel::Fixed(50),
            },
            b"ls-lin",
        );
        for i in 0..3u32 {
            for s in 0..4u64 {
                if s % 2 == 0 {
                    d.push_op(c(i), LsWorkloadOp::Write(Value::unique(i, s)));
                } else {
                    d.push_op(c(i), LsWorkloadOp::Read(c((i + 1) % 3)));
                }
            }
        }
        let r = d.run();
        assert!(r.faults.is_empty());
        assert_eq!(r.incomplete_ops, 0);
        assert_eq!(
            check_linearizability(&r.history, &budget),
            Verdict::Satisfied,
            "seed {seed}"
        );
        assert_eq!(
            check_fork_linearizability(&r.history, &budget),
            Verdict::Satisfied,
            "seed {seed}"
        );
    }
}

/// Histories under the forking adversaries satisfy exactly the paper's
/// guaranteed notions: causal consistency and weak fork-linearizability.
#[test]
fn forked_faust_histories_meet_the_guarantees() {
    let budget = Budget::default();
    let server = SplitBrainServer::new(4, vec![vec![c(0), c(1)], vec![c(2), c(3)]], 2);
    let mut driver = FaustDriver::new(
        4,
        Box::new(server),
        FaustDriverConfig {
            faust: FaustConfig {
                // Long probe period: the user ops complete before
                // detection halts the clients.
                probe_period: 5_000,
                dummy_reads: false,
                commit_mode: faust::ustor::CommitMode::Immediate,
                pipeline: 1,
            },
            ..FaustDriverConfig::default()
        },
        b"fork-guarantees",
    );
    for i in 0..4u32 {
        driver.push_ops(
            c(i),
            vec![
                FaustWorkloadOp::Write(Value::unique(i, 1)),
                FaustWorkloadOp::Pause(20),
                FaustWorkloadOp::Read(c((i + 1) % 4)),
            ],
        );
    }
    let result = driver.run_until(2_000);
    assert_eq!(
        check_causal_consistency(&result.history, &budget),
        Verdict::Satisfied,
        "causality holds under forks: {:?}",
        result.history
    );
    let weak = check_weak_fork_linearizability(&result.history, &budget);
    assert!(
        weak == Verdict::Satisfied || matches!(weak, Verdict::Unknown(_)),
        "weak fork-linearizability: {weak:?}"
    );
}

/// FAUST on top of piggybacked commits (Section 5 optimization): same
/// guarantees, one message fewer per operation.
#[test]
fn faust_with_piggybacked_commits() {
    let budget = Budget::default();
    let mut driver = FaustDriver::new(
        3,
        Box::new(UstorServer::new(3)),
        FaustDriverConfig {
            faust: FaustConfig {
                probe_period: 200,
                dummy_reads: true,
                commit_mode: faust::ustor::CommitMode::Piggyback,
                pipeline: 1,
            },
            ..FaustDriverConfig::default()
        },
        b"faust-piggyback",
    );
    for (i, w) in faust::core::random_faust_workloads(3, 5, 0.5, 9)
        .into_iter()
        .enumerate()
    {
        driver.push_ops(c(i as u32), w);
    }
    let result = driver.run_until(10_000);
    assert!(result.failures.is_empty(), "{:?}", result.failures);
    let incomplete = result
        .history
        .ops()
        .iter()
        .filter(|o| !o.is_complete())
        .count();
    assert_eq!(incomplete, 0);
    assert_eq!(
        check_linearizability(&result.history, &budget),
        Verdict::Satisfied
    );
    // Stability still works without separate commits: dummy reads carry
    // the piggybacked commits to the server.
    for i in 0..3u32 {
        let cut = result.last_cut(c(i)).expect("stability advanced");
        assert!(cut.w.iter().any(|&w| w > 0), "client {i}: {cut:?}");
    }
}

/// A fork is still detected when commits are piggybacked.
#[test]
fn piggybacked_faust_still_detects_forks() {
    let server = SplitBrainServer::new(2, vec![vec![c(0)], vec![c(1)]], 0);
    let mut driver = FaustDriver::new(
        2,
        Box::new(server),
        FaustDriverConfig {
            faust: FaustConfig {
                probe_period: 200,
                dummy_reads: true,
                commit_mode: faust::ustor::CommitMode::Piggyback,
                pipeline: 1,
            },
            ..FaustDriverConfig::default()
        },
        b"piggyback-fork",
    );
    driver.push_op(c(0), FaustWorkloadOp::Write(Value::from("a")));
    driver.push_op(c(1), FaustWorkloadOp::Write(Value::from("b")));
    let result = driver.run_until(20_000);
    assert_eq!(result.failures.len(), 2, "{:?}", result.failures);
}
