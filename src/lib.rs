//! Umbrella crate for the FAUST reproduction.
//!
//! Re-exports the full protocol stack. See the individual crates for
//! details; start with [`core`] for the fail-aware service and [`ustor`]
//! for the underlying storage protocol.
//!
//! # Architecture: engine — session — transport
//!
//! The server side is layered so that *what the server computes* is
//! independent of *how bytes reach it*:
//!
//! ```text
//!   ┌────────────────────────────────────────────────────────────┐
//!   │ ServerEngine (faust-ustor)                                 │
//!   │   · pure: enqueue (ClientId, UstorMsg) → process → poll    │
//!   │   · per-client Session state (counters, timestamps, x̄)     │
//!   │   · optional ingress verification of SUBMIT signatures,    │
//!   │     per-message or batched (HMAC: amortized key schedule;  │
//!   │     Ed25519: one multi-scalar batch equation) — sound in   │
//!   │     the paper's trust model with public-key registries     │
//!   │   · wraps any `Server`: the correct UstorServer or a       │
//!   │     Byzantine adversary                                    │
//!   └──────────────────────────▲─────────────────────────────────┘
//!                              │ ServerTransport (faust-net)
//!          ┌──────────────┬────┴──────────────┬──────────────────┐
//!          │              │                   │                  │
//!   QueueTransport   channel transport   TCP transport    ReactorTransport
//!   (deterministic   (std::sync::mpsc,   (std::net,       (unix: one event
//!   sim adapter; the  thread-per-client  length-prefixed  loop, many conns,
//!   discrete-event    runtimes)          frames, one      admission control —
//!   simulator stays                      reader thread    docs/networking.md)
//!   bit-reproducible)                    per client)
//! ```
//!
//! One engine code path serves all four: the simulation drivers
//! ([`ustor::Driver`],
//! [`core::FaustDriver`]) pump it through the
//! queue transport inside virtual time, while the threaded runtimes
//! ([`core::runtime`],
//! [`core::threaded_faust`]) put it behind a
//! channel or a real loopback-TCP listener. Client threads hold a
//! transport-independent [`net::ClientConn`].
//!
//! Messages are encoded by the hand-rolled, byte-exact codec in
//! [`types::wire`]; stream transports add the
//! length-prefixed framing of [`types::frame`].
//!
//! Below the engine sits a pluggable [`ustor::ServerBackend`]: the
//! volatile [`ustor::MemoryBackend`], or the crash-safe
//! [`store::PersistentBackend`] (append-only write-ahead log +
//! snapshots, `docs/persistence.md`), under which a restarted server
//! resumes mid-protocol invisibly to clients — and a rolled-back log is
//! detected by them as a violation.
//! The sharded serving path and the single-threaded many-connection
//! reactor both landed exactly this way — behind
//! `ServerTransport`/`ServerEngine`, without touching protocol code;
//! further scaling work follows the same seam (see ROADMAP.md).
//!
//! Orthogonal to the serving stack, [`audit`] adds the offline half of
//! fail-awareness: a store directory (or an in-memory record stream)
//! exports as a signed, self-authenticating `FAUSTHIS` session history,
//! and `faust audit` replays it after the fact — certifying
//! fork-linearizability or pinning the exact first divergent version
//! with a typed cause (`docs/audit.md`).

#![forbid(unsafe_code)]

/// The first-class fail-aware client API: live [`client::FaustHandle`]
/// sessions with pipelined operations and a typed [`client::Event`]
/// stream. (An alias for [`faust_core::handle`].)
pub use faust_core::handle as client;

pub use faust_audit as audit;
pub use faust_baseline as baseline;
pub use faust_consistency as consistency;
pub use faust_core as core;
pub use faust_crypto as crypto;
pub use faust_net as net;
pub use faust_sim as sim;
pub use faust_store as store;
pub use faust_types as types;
pub use faust_ustor as ustor;
