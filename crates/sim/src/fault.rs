//! Building blocks for fault-plan harnesses: activation windows over
//! virtual time, and a delta-debugging shrinker that minimizes a failing
//! plan to a small reproducer.
//!
//! The types here are protocol-agnostic; `faust-core`'s simulator defines
//! the concrete fault clauses and feeds them through [`shrink`] when an
//! oracle trips.

/// A half-open interval `[start, end)` of virtual time during which a
/// fault clause is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeWindow {
    /// First tick at which the clause applies.
    pub start: u64,
    /// First tick at which it no longer applies.
    pub end: u64,
}

impl TimeWindow {
    /// A window covering `[start, end)`.
    pub fn new(start: u64, end: u64) -> Self {
        TimeWindow { start, end }
    }

    /// Whether virtual time `t` falls inside the window.
    pub fn contains(&self, t: u64) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether the window is empty (contains no tick).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl std::fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Minimizes a failing input by delta debugging (Zeller's `ddmin`).
///
/// `items` is the list to minimize (here: fault clauses) and
/// `still_fails` re-runs the system on a candidate subset, returning
/// `true` when the failure still reproduces. The returned subset is
/// *1-minimal*: removing any single remaining item makes the failure
/// disappear. Item order is preserved, which matters when items are
/// applied sequentially.
///
/// `still_fails` is never called on the full input (the caller already
/// knows it fails) and the worst-case number of probe runs is
/// `O(n^2)` — fine for the handful-of-clauses plans the simulator
/// generates.
///
/// If the failure does not depend on `items` at all (e.g. a seed-only
/// schedule bug), the result is empty.
pub fn shrink<T: Clone, F: FnMut(&[T]) -> bool>(items: &[T], mut still_fails: F) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if current.is_empty() {
        return current;
    }
    if still_fails(&[]) {
        return Vec::new();
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // Complement of current[start..end].
            let candidate: Vec<T> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break; // 1-minimal
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    // A single survivor may itself be unnecessary (failure needs none of
    // the items); the empty check above already covered that, so a
    // 1-element result is genuinely needed.
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_is_half_open() {
        let w = TimeWindow::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(!w.is_empty());
        assert!(TimeWindow::new(5, 5).is_empty());
        assert_eq!(format!("{w}"), "[10, 20)");
    }

    #[test]
    fn shrink_finds_single_culprit() {
        let items: Vec<u32> = (0..16).collect();
        let out = shrink(&items, |subset| subset.contains(&11));
        assert_eq!(out, vec![11]);
    }

    #[test]
    fn shrink_keeps_interacting_pair() {
        let items: Vec<u32> = (0..10).collect();
        let out = shrink(&items, |subset| subset.contains(&2) && subset.contains(&7));
        assert_eq!(out, vec![2, 7], "order preserved, both kept");
    }

    #[test]
    fn shrink_returns_empty_when_items_irrelevant() {
        let items: Vec<u32> = (0..8).collect();
        let out = shrink(&items, |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn shrink_result_is_1_minimal() {
        // Failure requires at least 3 of the even items.
        let items: Vec<u32> = (0..12).collect();
        let out = shrink(&items, |subset| {
            subset.iter().filter(|x| **x % 2 == 0).count() >= 3
        });
        assert_eq!(out.iter().filter(|x| **x % 2 == 0).count(), 3);
        for skip in 0..out.len() {
            let without: Vec<u32> = out
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, x)| *x)
                .collect();
            assert!(
                without.iter().filter(|x| **x % 2 == 0).count() < 3,
                "dropping any survivor must break the repro"
            );
        }
    }

    #[test]
    fn shrink_on_empty_input_is_empty() {
        let out = shrink(&Vec::<u32>::new(), |_| true);
        assert!(out.is_empty());
    }
}
