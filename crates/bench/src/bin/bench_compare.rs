//! CI bench-regression gate: diffs a fresh `bench_smoke` JSON report
//! against a checked-in baseline and fails (exit 1) when any data point
//! shared by both files lost more than the allowed fraction of its
//! `per_second` throughput.
//!
//! Only the *intersection* of point names is compared, so a baseline
//! from an older schema (fewer points) still gates the points it knows
//! about, and brand-new points ride along ungated until the baseline is
//! refreshed. The parser is hand-rolled for exactly the JSON
//! `bench_smoke` emits — fixed ASCII names, flat `results` array — in
//! keeping with the repo's no-external-dependencies rule.
//!
//! Usage: `bench_compare <current.json> <baseline.json> [--max-regression PCT]`

use std::process::ExitCode;

/// Extracts `(name, per_second)` for every entry of the `results` array.
///
/// Works on the shape `bench_smoke` writes: each result object holds a
/// `"name"` string (fixed ASCII, no escapes) followed by a
/// `"per_second"` number.
fn parse_points(json: &str) -> Vec<(String, f64)> {
    let mut points = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"name\": \"") {
        rest = &rest[at + "\"name\": \"".len()..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        rest = &rest[end..];
        let Some(at) = rest.find("\"per_second\": ") else {
            break;
        };
        rest = &rest[at + "\"per_second\": ".len()..];
        let end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        match rest[..end].parse::<f64>() {
            Ok(v) => points.push((name, v)),
            Err(_) => break,
        }
        rest = &rest[end..];
    }
    points
}

fn load(path: &str) -> Vec<(String, f64)> {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_compare: cannot read {path}: {e}"));
    let points = parse_points(&json);
    assert!(!points.is_empty(), "bench_compare: no points in {path}");
    points
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut paths: Vec<String> = Vec::new();
    let mut max_regression = 30.0f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regression" => {
                max_regression = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-regression needs a percentage");
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_compare <current.json> <baseline.json> [--max-regression PCT]"
                );
                return ExitCode::from(2);
            }
        }
    }
    let [current_path, baseline_path] = &paths[..] else {
        eprintln!("usage: bench_compare <current.json> <baseline.json> [--max-regression PCT]");
        return ExitCode::from(2);
    };

    let current = load(current_path);
    let baseline = load(baseline_path);
    println!("bench_compare: {current_path} vs {baseline_path} (fail below -{max_regression:.0}%)");
    let mut compared = 0usize;
    let mut failed = 0usize;
    for (name, base) in &baseline {
        let Some((_, now)) = current.iter().find(|(n, _)| n == name) else {
            println!("  (gone)    {name}");
            continue;
        };
        compared += 1;
        let delta = (now / base - 1.0) * 100.0;
        let verdict = if delta < -max_regression {
            failed += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("  {verdict:<9} {name:<46} {base:>14.0} -> {now:>14.0} iter/s ({delta:+.1}%)");
    }
    for (name, _) in &current {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("  (new)     {name}");
        }
    }
    assert!(compared > 0, "bench_compare: no shared points to compare");
    if failed > 0 {
        eprintln!(
            "bench_compare: {failed}/{compared} point(s) regressed more than {max_regression:.0}%"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_compare: all {compared} shared point(s) within the budget");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::parse_points;

    #[test]
    fn parses_the_bench_smoke_shape() {
        let json = r#"{
  "schema": 4,
  "results": [
    {"name": "wire: encode REPLY (n=8, read)", "ns_per_iter": 245.8, "per_second": 4067552.9},
    {"name": "e2e: tcp write op, sharded(4) (4x16)", "ns_per_iter": 72121.5, "per_second": 13865.0}
  ],
  "egress": {"frames_out": 32, "flushes": 4, "max_egress_batch": 8}
}"#;
        let points = parse_points(json);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].0, "wire: encode REPLY (n=8, read)");
        assert!((points[0].1 - 4067552.9).abs() < 1e-6);
        assert_eq!(points[1].0, "e2e: tcp write op, sharded(4) (4x16)");
        assert!((points[1].1 - 13865.0).abs() < 1e-6);
    }

    #[test]
    fn empty_or_garbage_yields_no_points() {
        assert!(parse_points("{}").is_empty());
        assert!(parse_points("\"name\": \"x\" no number").is_empty());
    }
}
