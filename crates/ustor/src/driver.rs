//! Simulation harness: runs `n` USTOR clients against a (correct or
//! Byzantine) server over the `faust-sim` network, records the resulting
//! [`History`], and reports completions, detected faults, and traffic
//! metrics.
//!
//! The driver is what tests, property tests, and the experiment harness
//! use to produce executions; the FAUST layer has its own, richer driver
//! in `faust-core` that additionally exercises the offline channel.

use crate::client::{OpCompletion, UstorClient};
use crate::engine::{serve, ServerEngine};
use crate::fault::Fault;
use crate::server::Server;
use faust_crypto::sig::KeySet;
use faust_net::QueueTransport;
use faust_sim::SmallRng;
use faust_sim::{Event, MessageSize, NodeId, SimConfig, Simulation};
use faust_types::{ClientId, History, OpId, OpKind, UstorMsg, Value, Wire};
use std::collections::VecDeque;

/// One step of a scripted client workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Write a value to the client's own register.
    Write(Value),
    /// Read a register.
    Read(ClientId),
    /// Stay idle for the given number of virtual-time ticks before the
    /// next step (used to sequence scripted scenarios).
    Pause(u64),
    /// Crash the client (crash-stop; any in-flight operation is lost).
    Crash,
}

/// Network message of the USTOR driver (clients ↔ server only).
#[derive(Debug, Clone)]
struct NetMsg(UstorMsg);

impl MessageSize for NetMsg {
    fn size_bytes(&self) -> usize {
        self.0.encoded_len()
    }
}

/// Outcome of a simulated run.
#[derive(Debug)]
pub struct RunResult {
    /// The recorded invocation/response history (FAUST-internal dummy
    /// reads excluded — the USTOR driver has none).
    pub history: History,
    /// Completions per client, in completion order.
    pub completions: Vec<Vec<OpCompletion>>,
    /// Faults detected by clients (client, fault), in detection order.
    pub faults: Vec<(ClientId, Fault)>,
    /// Traffic statistics.
    pub metrics: faust_sim::Metrics,
    /// Virtual time when the run went quiescent.
    pub final_time: u64,
    /// Operations that never completed (crashed clients' in-flight ops,
    /// ops swallowed by a mute server, ops after a halt).
    pub incomplete_ops: usize,
}

impl RunResult {
    /// Whether any client detected a server fault.
    pub fn detected_fault(&self) -> bool {
        !self.faults.is_empty()
    }
}

struct Slot {
    proto: UstorClient,
    queue: VecDeque<WorkloadOp>,
    current: Option<OpId>,
    completions: Vec<OpCompletion>,
    fault: Option<Fault>,
    crashed: bool,
}

/// Drives `n` USTOR clients against a [`Server`] over the simulated
/// network.
///
/// # Example
///
/// ```
/// use faust_sim::SimConfig;
/// use faust_types::{ClientId, Value};
/// use faust_ustor::{Driver, UstorServer, WorkloadOp};
///
/// let mut driver = Driver::new(2, Box::new(UstorServer::new(2)), SimConfig::default(), b"ex");
/// driver.push_op(ClientId::new(0), WorkloadOp::Write(Value::from("v")));
/// driver.push_op(ClientId::new(1), WorkloadOp::Read(ClientId::new(0)));
/// let result = driver.run();
/// assert!(!result.detected_fault());
/// assert_eq!(result.incomplete_ops, 0);
/// ```
pub struct Driver {
    n: usize,
    sim: Simulation<NetMsg>,
    /// The server side: protocol state behind the transport-agnostic
    /// engine, fed through the deterministic queue transport.
    engine: ServerEngine,
    net: QueueTransport,
    slots: Vec<Slot>,
    history: History,
}

impl Driver {
    /// Creates a driver for `n` clients talking to `server`. Keys are
    /// generated deterministically from `key_seed` under the HMAC fast
    /// path; [`Driver::new_with_scheme`] selects the scheme.
    pub fn new(n: usize, server: Box<dyn Server + Send>, sim: SimConfig, key_seed: &[u8]) -> Self {
        Self::new_with_scheme(n, server, sim, key_seed, faust_crypto::SigScheme::Hmac)
    }

    /// [`Driver::new`] with an explicit signature scheme — the simulated
    /// stack runs identically over HMAC or Ed25519 keys, since protocol
    /// code only sees the `Signer`/`Verifier` traits.
    pub fn new_with_scheme(
        n: usize,
        server: Box<dyn Server + Send>,
        sim: SimConfig,
        key_seed: &[u8],
        scheme: faust_crypto::SigScheme,
    ) -> Self {
        let keys = KeySet::generate_with(scheme, n, key_seed);
        let slots = (0..n)
            .map(|i| Slot {
                proto: UstorClient::new(
                    ClientId::new(i as u32),
                    n,
                    keys.keypair(i as u32).expect("generated").clone(),
                    keys.registry(),
                ),
                queue: VecDeque::new(),
                current: None,
                completions: Vec::new(),
                fault: None,
                crashed: false,
            })
            .collect();
        Driver {
            n,
            sim: Simulation::new(sim),
            engine: ServerEngine::new(n, server),
            net: QueueTransport::new(),
            slots,
            history: History::new(),
        }
    }

    /// Read access to the server engine (session and batch statistics).
    pub fn engine(&self) -> &ServerEngine {
        &self.engine
    }

    fn server_node(&self) -> NodeId {
        NodeId(self.n as u32)
    }

    fn client_node(&self, c: ClientId) -> NodeId {
        NodeId(c.as_u32())
    }

    /// Switches every client to the given commit-transmission mode
    /// (Section 5 piggybacking optimization). Call before `run`.
    pub fn set_commit_mode(&mut self, mode: crate::client::CommitMode) {
        for slot in &mut self.slots {
            slot.proto.set_commit_mode(mode);
        }
    }

    /// Appends one step to a client's script.
    pub fn push_op(&mut self, client: ClientId, op: WorkloadOp) {
        self.slots[client.index()].queue.push_back(op);
    }

    /// Appends a whole script for a client.
    pub fn push_ops(&mut self, client: ClientId, ops: impl IntoIterator<Item = WorkloadOp>) {
        self.slots[client.index()].queue.extend(ops);
    }

    /// Starts the next queued operation of client `i`, if it is idle.
    fn try_start(&mut self, i: usize) {
        loop {
            let slot = &mut self.slots[i];
            if slot.crashed || slot.fault.is_some() || slot.current.is_some() {
                return;
            }
            let Some(op) = slot.queue.pop_front() else {
                return;
            };
            let client_id = ClientId::new(i as u32);
            let now = self.sim.now();
            match op {
                WorkloadOp::Crash => {
                    slot.crashed = true;
                    let node = NodeId(i as u32);
                    self.sim.crash(node);
                    return;
                }
                WorkloadOp::Pause(ticks) => {
                    self.sim.set_timer(NodeId(i as u32), ticks, i as u64);
                    return;
                }
                WorkloadOp::Write(value) => {
                    let submit = slot
                        .proto
                        .begin_write(value.clone())
                        .expect("idle client can begin");
                    slot.current = Some(self.history.begin_write(client_id, value, now));
                    let (from, to) = (self.client_node(client_id), self.server_node());
                    self.sim.send(from, to, NetMsg(UstorMsg::Submit(submit)));
                    return;
                }
                WorkloadOp::Read(register) => {
                    if register.index() >= self.n {
                        // Skip invalid script entries rather than panic.
                        continue;
                    }
                    let submit = slot
                        .proto
                        .begin_read(register)
                        .expect("idle client can begin");
                    slot.current = Some(self.history.begin_read(client_id, register, now));
                    let (from, to) = (self.client_node(client_id), self.server_node());
                    self.sim.send(from, to, NetMsg(UstorMsg::Submit(submit)));
                    return;
                }
            }
        }
    }

    /// Runs the simulation to quiescence and returns the outcome.
    pub fn run(mut self) -> RunResult {
        for i in 0..self.n {
            self.try_start(i);
        }
        while let Some(ev) = self.sim.next() {
            let Event::Message { from, to, msg, .. } = ev.event else {
                if let Event::Timer { node, .. } = ev.event {
                    // A Pause elapsed; resume that client's script.
                    self.try_start(node.0 as usize);
                }
                continue;
            };
            if to == self.server_node() {
                // The simulator is the transport here: each delivered
                // message passes through the queue transport into the
                // engine, and the engine's outputs go back into virtual
                // time as ordinary link messages.
                let client = ClientId::new(from.0);
                self.net.push_incoming(client, msg.0);
                serve(&mut self.engine, &mut self.net);
                let outputs: Vec<_> = self.net.drain_outgoing().collect();
                for (rcpt, out) in outputs {
                    self.sim
                        .send(self.server_node(), self.client_node(rcpt), NetMsg(out));
                }
            } else {
                let i = to.0 as usize;
                let UstorMsg::Reply(reply) = msg.0 else {
                    continue; // only replies flow to clients
                };
                let now = self.sim.now();
                let slot = &mut self.slots[i];
                if slot.crashed || slot.fault.is_some() {
                    continue;
                }
                match slot.proto.handle_reply(reply) {
                    Ok((commit, done)) => {
                        if let Some(op_id) = slot.current.take() {
                            match done.kind {
                                OpKind::Write => {
                                    self.history
                                        .complete_write(op_id, now, Some(done.timestamp))
                                }
                                OpKind::Read => self.history.complete_read(
                                    op_id,
                                    now,
                                    done.read_value.clone().flatten(),
                                    Some(done.timestamp),
                                ),
                            }
                        }
                        slot.completions.push(done);
                        if let Some(commit) = commit {
                            let (from, to) = (NodeId(i as u32), self.server_node());
                            self.sim.send(from, to, NetMsg(UstorMsg::Commit(commit)));
                        }
                        self.try_start(i);
                    }
                    Err(fault) => {
                        slot.fault = Some(fault);
                        slot.current = None;
                    }
                }
            }
        }

        let faults = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.fault.clone().map(|f| (ClientId::new(i as u32), f)))
            .collect();
        let incomplete_ops = self
            .history
            .ops()
            .iter()
            .filter(|o| !o.is_complete())
            .count();
        RunResult {
            incomplete_ops,
            faults,
            completions: self.slots.iter().map(|s| s.completions.clone()).collect(),
            metrics: self.sim.metrics().clone(),
            final_time: self.sim.now(),
            history: self.history,
        }
    }
}

/// Generates a reproducible random workload: `ops_per_client` operations
/// per client, each a write with probability `write_fraction` (else a
/// read of a uniformly random register).
pub fn random_workloads(
    n: usize,
    ops_per_client: usize,
    write_fraction: f64,
    seed: u64,
) -> Vec<Vec<WorkloadOp>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (0..ops_per_client)
                .map(|seq| {
                    if rng.gen_bool(write_fraction) {
                        WorkloadOp::Write(Value::unique(i as u32, seq as u64))
                    } else {
                        WorkloadOp::Read(ClientId::new(rng.gen_index(n) as u32))
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::UstorServer;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    fn correct_driver(n: usize) -> Driver {
        Driver::new(
            n,
            Box::new(UstorServer::new(n)),
            SimConfig::default(),
            b"driver-tests",
        )
    }

    #[test]
    fn all_ops_complete_with_correct_server() {
        let mut d = correct_driver(3);
        for (i, w) in random_workloads(3, 10, 0.5, 1).into_iter().enumerate() {
            d.push_ops(c(i as u32), w);
        }
        let r = d.run();
        assert!(!r.detected_fault());
        assert_eq!(r.incomplete_ops, 0);
        assert_eq!(r.history.len(), 30);
        assert!(r.history.is_well_formed());
    }

    #[test]
    fn timestamps_are_monotone_per_client() {
        let mut d = correct_driver(2);
        for (i, w) in random_workloads(2, 20, 0.3, 7).into_iter().enumerate() {
            d.push_ops(c(i as u32), w);
        }
        let r = d.run();
        for comps in &r.completions {
            for pair in comps.windows(2) {
                assert!(pair[0].timestamp < pair[1].timestamp);
            }
        }
    }

    #[test]
    fn crashed_client_does_not_block_others() {
        let mut d = correct_driver(3);
        d.push_ops(
            c(0),
            vec![
                WorkloadOp::Write(Value::from("w0")),
                WorkloadOp::Crash,
                WorkloadOp::Write(Value::from("never")),
            ],
        );
        let mut workloads = random_workloads(2, 10, 0.5, 2).into_iter();
        d.push_ops(c(1), workloads.next().expect("two workloads"));
        d.push_ops(c(2), workloads.next().expect("two workloads"));
        let r = d.run();
        assert!(!r.detected_fault());
        // C1 and C2 finish everything; only C0's post-crash script is cut.
        assert_eq!(r.completions[1].len(), 10);
        assert_eq!(r.completions[2].len(), 10);
    }

    #[test]
    fn crash_mid_flight_leaves_op_incomplete_but_system_live() {
        let mut d = Driver::new(
            2,
            Box::new(UstorServer::new(2)),
            SimConfig {
                // Long link delay so the crash lands mid-operation.
                link_delay: faust_sim::DelayModel::Fixed(100),
                ..SimConfig::default()
            },
            b"crash-test",
        );
        d.push_ops(
            c(0),
            vec![WorkloadOp::Write(Value::from("w")), WorkloadOp::Crash],
        );
        d.push_ops(c(1), vec![WorkloadOp::Read(c(0)), WorkloadOp::Read(c(0))]);
        let r = d.run();
        assert!(!r.detected_fault());
        assert_eq!(r.completions[1].len(), 2);
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut d = correct_driver(3);
            for (i, w) in random_workloads(3, 8, 0.5, 3).into_iter().enumerate() {
                d.push_ops(c(i as u32), w);
            }
            let r = d.run();
            (r.final_time, r.metrics.link_messages_sent, r.history)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn piggyback_mode_saves_one_message_per_op() {
        // Section 5 ablation: with piggybacked commits, each op costs 2
        // link messages (SUBMIT with the previous COMMIT inside + REPLY)
        // instead of 3.
        let run = |mode| {
            let mut d = correct_driver(3);
            d.set_commit_mode(mode);
            for (i, w) in random_workloads(3, 10, 0.5, 5).into_iter().enumerate() {
                d.push_ops(c(i as u32), w);
            }
            d.run()
        };
        let imm = run(crate::client::CommitMode::Immediate);
        let pig = run(crate::client::CommitMode::Piggyback);
        assert!(!imm.detected_fault() && !pig.detected_fault());
        assert_eq!(imm.incomplete_ops, 0);
        assert_eq!(pig.incomplete_ops, 0);
        assert_eq!(imm.metrics.link_messages_sent, 3 * 30);
        // Piggyback: 2 per op, except each client's very first op has no
        // previous commit and its last commit is never sent at all.
        assert_eq!(pig.metrics.link_messages_sent, 2 * 30);
        // Same results either way.
        for (a, b) in imm.completions.iter().zip(&pig.completions) {
            let va: Vec<_> = a.iter().map(|x| (&x.read_value, x.timestamp)).collect();
            let vb: Vec<_> = b.iter().map(|x| (&x.read_value, x.timestamp)).collect();
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn one_round_per_operation() {
        // Experiment E5: every operation costs exactly one SUBMIT, one
        // REPLY, and one COMMIT on the link.
        let mut d = correct_driver(2);
        d.push_ops(
            c(0),
            vec![WorkloadOp::Write(Value::from("a")), WorkloadOp::Read(c(1))],
        );
        d.push_ops(c(1), vec![WorkloadOp::Write(Value::from("b"))]);
        let r = d.run();
        // 3 ops × 3 messages.
        assert_eq!(r.metrics.link_messages_sent, 9);
    }
}
