//! Acceptance tests for the sharded serving path.
//!
//! * A seeded property: the same random script through a live,
//!   *threaded* sharded deployment (N = 1, 2, 4) over the channel
//!   transport completes the same operations with the same fail-aware
//!   timestamps and converges to the same stability cuts as the
//!   deterministic `FaustDriver` reference — with zero violations. The
//!   client stack is entirely unchanged: sharding must be invisible.
//! * Kill-and-restart end-to-end over real TCP with the per-shard
//!   persistent backend: an honest restart (merged multi-log recovery)
//!   is invisible through the handle, while a truncated *shard* log is
//!   refused by strict recovery and — after explicit repair — recovers
//!   into the rollback clients flag as a violation.

use faust::client::{offline_mesh, Event, FaustHandle, HandleConfig, WaitError};
use faust::core::runtime::spawn_engine;
use faust::core::{
    random_faust_workloads, FaustConfig, FaustDriver, FaustDriverConfig, FaustWorkloadOp,
};
use faust::sim::SmallRng;
use faust::store::log::{Wal, WAL_FILE};
use faust::store::{
    shard_dir, testutil, truncate_tail_records, Durability, ShardedBackend, StoreConfig,
};
use faust::types::{ClientId, OpKind, Timestamp, Value};
use faust::ustor::{ServerBackend, ShardedServer, UstorServer};
use std::time::{Duration, Instant};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

/// (kind, target, timestamp) — the completion facts that are
/// deterministic regardless of interleaving.
type CompletionFacts = Vec<(OpKind, ClientId, Timestamp)>;

#[test]
fn sharded_deployments_match_the_driver_script() {
    let n = 3;
    let ops_per_client = 4u64;
    for seed in 0..2u64 {
        let workloads = random_faust_workloads(n, ops_per_client as usize, 0.5, seed);

        // Reference: the deterministic single-engine simulation.
        let mut driver = FaustDriver::new(
            n,
            Box::new(UstorServer::new(n)),
            FaustDriverConfig::default(),
            b"sharded-prop",
        );
        for (i, w) in workloads.clone().into_iter().enumerate() {
            driver.push_ops(c(i as u32), w);
        }
        let reference = driver.run_until(60_000);
        assert!(reference.failures.is_empty(), "seed {seed}");
        let reference_facts: Vec<CompletionFacts> = (0..n)
            .map(|i| {
                reference
                    .completions(c(i as u32))
                    .into_iter()
                    .map(|done| (done.kind, done.target, done.timestamp))
                    .collect()
            })
            .collect();
        let user_stable = |w: &[Timestamp]| w.iter().all(|&x| x >= ops_per_client);

        // The same script through live handles against threaded sharded
        // deployments of every width.
        for shards in [1usize, 2, 4] {
            let (transport, conns) = faust::net::channel::pair(n);
            let server = ShardedServer::volatile(n, shards, true);
            let engine = spawn_engine(n, Box::new(server), transport);
            let config = HandleConfig {
                faust: FaustConfig {
                    probe_period: 50,
                    pipeline: 3,
                    ..FaustConfig::default()
                },
                tick_interval: Duration::from_millis(5),
                ..HandleConfig::default()
            };
            let mut links = offline_mesh(n);
            links.reverse();
            let workers: Vec<_> = conns
                .into_iter()
                .zip(workloads.clone())
                .enumerate()
                .map(|(i, (conn, workload))| {
                    let link = links.pop().expect("one link per client");
                    std::thread::spawn(move || {
                        let mut handle = FaustHandle::new(
                            c(i as u32),
                            n,
                            b"sharded-prop",
                            &config,
                            Box::new(conn),
                        )
                        .with_offline(link);
                        for op in workload {
                            match op {
                                FaustWorkloadOp::Write(value) => handle.write(value),
                                FaustWorkloadOp::Read(register) => handle.read(register),
                                _ => unreachable!("random workloads are reads and writes"),
                            };
                        }
                        let deadline = Instant::now() + Duration::from_secs(20);
                        let mut events = Vec::new();
                        while Instant::now() < deadline {
                            events.extend(handle.run_for(Duration::from_millis(20)));
                            let cut = handle.stability_cut();
                            if handle.backlog() == 0 && cut.w.iter().all(|&x| x >= ops_per_client) {
                                break;
                            }
                        }
                        let facts: CompletionFacts = events
                            .iter()
                            .filter_map(|(_, e)| match e {
                                Event::Completed { completion, .. } => {
                                    Some((completion.kind, completion.target, completion.timestamp))
                                }
                                _ => None,
                            })
                            .collect();
                        let violations = events
                            .iter()
                            .filter(|(_, e)| matches!(e, Event::Violation { .. }))
                            .count();
                        let cut = handle.stability_cut();
                        assert!(
                            handle.failure().is_none(),
                            "sharding must be invisible, client {i}"
                        );
                        (facts, cut, violations)
                    })
                })
                .collect();
            for (i, worker) in workers.into_iter().enumerate() {
                let (facts, cut, violations) = worker.join().expect("client thread");
                assert_eq!(
                    facts, reference_facts[i],
                    "seed {seed}, {shards} shards: client {i} completions \
                     must match the driver"
                );
                assert!(
                    user_stable(&cut.w),
                    "seed {seed}, {shards} shards: client {i} converges to \
                     full user-op stability, got {cut}"
                );
                assert_eq!(violations, 0, "seed {seed}, {shards} shards");
            }
            engine.join().expect("engine thread");
        }
    }
}

/// Quiet handles: the restart story is about reads/writes, not probes.
fn restart_config() -> HandleConfig {
    HandleConfig {
        faust: FaustConfig {
            probe_period: u64::MAX / 2,
            dummy_reads: false,
            pipeline: 2,
            ..FaustConfig::default()
        },
        tick_interval: Duration::from_millis(5),
        ..HandleConfig::default()
    }
}

fn group_store() -> StoreConfig {
    StoreConfig {
        durability: Durability::Group {
            max_records: 8,
            max_wait: Duration::from_millis(2),
        },
        snapshot_every: 0,
    }
}

/// Stands up one server incarnation from `backend` on a fresh loopback
/// socket; returns its address and engine thread.
fn incarnation(
    backend: &dyn ServerBackend,
    n: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<faust::ustor::EngineStats>,
) {
    let transport = faust::net::TcpServerTransport::bind("127.0.0.1:0", n).expect("bind");
    let addr = transport.local_addr();
    let server = backend.build(n).expect("backend builds/recovers");
    (addr, spawn_engine(n, server, transport))
}

#[test]
fn honest_sharded_restart_is_invisible_through_the_handle() {
    let n = 2;
    let wait = Duration::from_secs(10);
    let dir = testutil::scratch_dir("sharded-e2e-honest");
    let backend = ShardedBackend::new(&dir, group_store(), 2, true);
    let config = restart_config();

    // Incarnation 1: two clients, registers homed on different shards.
    let (addr, engine) = incarnation(&backend, n);
    let mut h0 = FaustHandle::connect_tcp(addr, c(0), n, b"sharded-e2e", &config).expect("connect");
    let mut h1 = FaustHandle::connect_tcp(addr, c(1), n, b"sharded-e2e", &config).expect("connect");
    let a1 = h0.write(Value::from("a1"));
    let a2 = h0.write(Value::from("a2"));
    assert_eq!(h0.wait(a1, wait).expect("completes").timestamp, 1);
    assert_eq!(h0.wait(a2, wait).expect("completes").timestamp, 2);
    let b1 = h1.write(Value::from("b1"));
    h1.wait(b1, wait).expect("completes");
    h0.disconnect();
    h1.disconnect();
    engine.join().expect("engine thread");

    // Incarnation 2: the merged recovery stitches both shard logs back
    // into one history; the same handles reconnect seamlessly.
    let (addr, engine) = incarnation(&backend, n);
    h0.reconnect(Box::new(
        faust::net::tcp::connect(addr, c(0)).expect("redial"),
    ));
    h1.reconnect(Box::new(
        faust::net::tcp::connect(addr, c(1)).expect("redial"),
    ));

    // A cross-client, cross-SHARD read across the restart: C1 (homed on
    // shard 1) reads C0's register (homed on shard 0).
    let r = h1.read(c(0));
    let done = h1.wait(r, wait).expect("cross-restart read");
    assert_eq!(done.read_value, Some(Some(Value::from("a2"))));
    let a3 = h0.write(Value::from("a3"));
    assert_eq!(h0.wait(a3, wait).expect("completes").timestamp, 3);
    for handle in [&mut h0, &mut h1] {
        assert!(handle.failure().is_none());
        let events = handle.poll();
        assert!(
            !events
                .iter()
                .any(|(_, e)| matches!(e, Event::Violation { .. } | Event::Disconnected { .. })),
            "honest sharded restart must be invisible: {events:?}"
        );
    }
    h0.disconnect();
    h1.disconnect();
    engine.join().expect("engine thread");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_shard_log_is_refused_then_flagged_after_repair() {
    let n = 2;
    let wait = Duration::from_secs(10);
    let dir = testutil::scratch_dir("sharded-e2e-truncated");
    let backend = ShardedBackend::new(&dir, group_store(), 2, true);
    let config = restart_config();

    let (addr, engine) = incarnation(&backend, n);
    let mut h0 =
        FaustHandle::connect_tcp(addr, c(0), n, b"sharded-rollback", &config).expect("connect");
    let mut h1 =
        FaustHandle::connect_tcp(addr, c(1), n, b"sharded-rollback", &config).expect("connect");
    // Strictly sequential phase 1, so the global order is pinned:
    // C0's ops land first (shard 0's log), C1's after (shard 1's log).
    let a1 = h0.write(Value::from("a1"));
    h0.wait(a1, wait).expect("completes");
    let a2 = h0.write(Value::from("a2"));
    h0.wait(a2, wait).expect("completes");
    let b1 = h1.write(Value::from("b1"));
    h1.wait(b1, wait).expect("completes");
    h0.disconnect();
    h1.disconnect();
    engine.join().expect("engine thread");

    // The rollback attack against ONE shard: shard 0 loses its tail,
    // including the acknowledged submit of a2.
    let kept = truncate_tail_records(&shard_dir(&dir, 0), 3).expect("tamper with the log");
    assert!(kept > 0, "a rollback, not a wipe");

    // Strict recovery refuses: shard 1's records now sit past a hole in
    // the merged global order. No silent prefixes, ever.
    let err = match backend.build(n) {
        Ok(_) => panic!("strict recovery must refuse"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("sequence gap"),
        "expected a global sequence gap, got: {err}"
    );

    // The operator explicitly repairs: every shard is cut back to the
    // longest consistent prefix (dropping C1's b1 along with the hole)
    // and recovery proceeds — into a rolled-back history.
    let repairing = ShardedBackend {
        repair: true,
        ..backend.clone()
    };
    let (addr, engine) = incarnation(&repairing, n);
    h0.reconnect(Box::new(
        faust::net::tcp::connect(addr, c(0)).expect("redial"),
    ));
    h1.reconnect(Box::new(
        faust::net::tcp::connect(addr, c(1)).expect("redial"),
    ));
    // C0's next operation hits the rolled-back schedule: the wait
    // surfaces the violation, and the event stream carries it.
    let a3 = h0.write(Value::from("a3"));
    let err = h0.wait(a3, wait).expect_err("rollback must be detected");
    assert!(matches!(err, WaitError::Violation(_)), "got {err:?}");
    let events = h0.poll();
    assert!(
        events
            .iter()
            .any(|(_, e)| matches!(e, Event::Violation { .. })),
        "expected Event::Violation, got {events:?}"
    );
    assert!(h0.failure().is_some());
    h0.disconnect();
    h1.disconnect();
    engine.join().expect("engine thread");
    std::fs::remove_dir_all(&dir).ok();
}

/// Byte-for-byte copy of a store directory tree.
fn copy_store(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("readdir") {
        let entry = entry.expect("dir entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_store(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy");
        }
    }
}

/// The seeded generalisation of the test above: **random multi-shard
/// truncation points**. Each iteration runs a pinned round-robin write
/// schedule against a persistent sharded deployment (one client per
/// shard, every wait observed, so each op's global position is known
/// exactly), then cuts a random whole-op tail off a random non-empty
/// subset of shard logs. The oracle is computed from the truncation
/// points alone:
///
/// * strict recovery must refuse with a [`StoreError::SequenceGap`]
///   exactly when the surviving records are *not* a prefix of the
///   global order (and must succeed — into a silently rolled-back tail
///   — exactly when they are);
/// * after explicit repair the history is the longest consistent
///   prefix. A reconnecting resilient session *replays its latest
///   COMMIT* (the resend window retains it as the Algorithm 1 line 41
///   anchor), which re-anchors the client's own history on the
///   rolled-back server — so plain version regression is no longer
///   visible to a write; a tail rollback whose evidence was entirely
///   superseded heals silently (reads that could observe lost data
///   still detect, which `tests/crash_recovery.rs` and `tests/chaos.rs`
///   exercise against shared incarnations). What a write still proves
///   is a surviving-but-uncovered pending SUBMIT whose signature cannot
///   verify at the healed version's expected timestamp; the oracle
///   below predicts exactly those flags. Every other client must stay
///   clean: fail-aware detection is accurate, not just complete.
///
/// The oracle reads the global sequence numbers back from the logs
/// themselves rather than assuming a schedule: the waits pin each
/// *client's* record order, but a COMMIT can legitimately be overtaken
/// by the next client's SUBMIT in the cross-shard global order.
#[test]
fn random_multi_shard_truncation_points_recover_into_flagged_rollbacks() {
    let wait = Duration::from_secs(10);
    for seed in 0..5u64 {
        let mut rng = SmallRng::seed_from_u64(0x5A_D0 ^ seed);
        let shards = rng.gen_range_inclusive(2, 4) as usize;
        let n = shards; // client i's register is homed on shard i
        let rounds = rng.gen_range_inclusive(2, 3) as usize;
        let dir = testutil::scratch_dir(&format!("sharded-truncation-prop-{seed}"));
        let backend = ShardedBackend::new(&dir, group_store(), shards, true);
        let config = restart_config();

        // Phase 1: `rounds` round-robin writes per client, strictly
        // sequential; client i's SUBMIT + COMMIT records land, in that
        // order, in shard i's log, tagged with their cross-shard global
        // sequence numbers.
        let (addr, engine) = incarnation(&backend, n);
        let mut handles: Vec<FaustHandle> = (0..n)
            .map(|i| {
                FaustHandle::connect_tcp(addr, c(i as u32), n, b"sharded-trunc-prop", &config)
                    .expect("connect")
            })
            .collect();
        for r in 0..rounds {
            for (i, h) in handles.iter_mut().enumerate() {
                let ticket = h.write(Value::from(vec![b'v', i as u8, r as u8]));
                let done = h.wait(ticket, wait).expect("phase-1 write completes");
                assert_eq!(done.timestamp, (r + 1) as u64, "seed {seed}");
            }
        }
        for h in &mut handles {
            h.disconnect();
        }
        engine.join().expect("engine thread");

        // Ground truth before tampering: every record's global sequence
        // number, per shard. Shard i holds exactly client i's records,
        // appended in global-sequence order, alternating SUBMIT (even
        // index) and COMMIT (odd index).
        let logs: Vec<Vec<u64>> = (0..shards)
            .map(|s| {
                Wal::scan(&shard_dir(&dir, s).join(WAL_FILE))
                    .expect("scan shard log")
                    .records
                    .iter()
                    .map(|r| r.record.global_seq().expect("sharded records are routed"))
                    .collect()
            })
            .collect();
        for (s, log) in logs.iter().enumerate() {
            assert_eq!(log.len(), 2 * rounds, "seed {seed}, shard {s}");
        }

        // The attack: cut a random even-length (= whole-op) tail off a
        // random non-empty subset of shard logs. `cuts[i]` is the number
        // of client i's *ops* rolled off shard i's tail.
        let mut cuts = vec![0usize; shards];
        for cut in cuts.iter_mut() {
            if rng.gen_bool(0.5) {
                *cut = rng.gen_range_inclusive(1, rounds as u64 - 1) as usize;
            }
        }
        if cuts.iter().all(|&k| k == 0) {
            cuts[rng.gen_index(shards)] = 1;
        }
        for (i, &k) in cuts.iter().enumerate() {
            if k > 0 {
                let kept =
                    truncate_tail_records(&shard_dir(&dir, i), 2 * k).expect("tamper with the log");
                assert!(kept > 0, "a rollback, not a wipe");
            }
        }

        // The oracle, from the logged sequence numbers and the cut
        // points. The recovered history (after repair, or strict if no
        // gap) is the longest prefix below the first dropped record.
        let first_hole = cuts
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k > 0)
            .map(|(i, &k)| logs[i][logs[i].len() - 2 * k])
            .min()
            .expect("at least one cut");
        let gap_expected = logs.iter().enumerate().any(|(i, log)| {
            log[..log.len() - 2 * cuts[i]]
                .iter()
                .any(|&s| s > first_hole)
        });
        // What the recovered server still holds, per client: SUBMIT
        // records sit at even indices of shard i's log, COMMITs at odd
        // (one client's own stream is never reordered, so within a
        // shard the pairs are strictly interleaved).
        let submits = |i: usize| logs[i].iter().copied().step_by(2);
        let commits = |i: usize| logs[i].iter().copied().skip(1).step_by(2);
        let effective: Vec<usize> = (0..n)
            .map(|i| submits(i).filter(|&s| s < first_hole).count())
            .collect();
        let eff_commits: Vec<usize> = (0..n)
            .map(|i| commits(i).filter(|&s| s < first_hole).count())
            .collect();
        // The version committed for client m's op r: entry i counts i's
        // SUBMITs processed up to m's r-th SUBMIT (its own included).
        // All versions along one schedule are totally ordered, so an
        // entry-wise comparison identifies the dominant one.
        let version_at = |m: usize, r: usize| -> Vec<usize> {
            let pivot = logs[m][2 * (r - 1)];
            (0..n)
                .map(|i| submits(i).filter(|&s| s <= pivot).count())
                .collect()
        };
        let dominates = |a: &[usize], b: &[usize]| a.iter().zip(b).all(|(x, y)| x >= y);
        // The dominant surviving commit version: recovery replays the
        // surviving COMMITs in global order and `on_commit` keeps the
        // greatest.
        let v_surviving = (0..n)
            .flat_map(|m| (1..=rounds).map(move |r| (m, r)))
            .filter(|&(m, r)| logs[m][2 * r - 1] < first_hole)
            .map(|(m, r)| version_at(m, r))
            .reduce(|a, b| if dominates(&b, &a) { b } else { a })
            .expect("round-1 commits always survive");
        // Phase-2 oracle under resilient-session semantics: client j's
        // reconnect replays its final COMMIT, so the reply it folds
        // starts from the dominant of {best surviving version, j's own
        // final version} — plain version regression is re-anchored, not
        // flagged. What remains visible is a surviving-but-uncovered
        // pending SUBMIT (a COMMIT that fell past the hole while its
        // SUBMIT survived — possible exactly because a COMMIT may be
        // overtaken by the next client's SUBMIT in the global order):
        // the fold checks each pending tuple's SUBMIT-signature at the
        // healed version's expected timestamp, and a healed entry that
        // moved past the tuple's true timestamp cannot verify.
        //
        // Which pending tuples the reply folds depends on the replayed
        // COMMIT's pruning (Algorithm 2 lines 118–121): the replay
        // advances the schedule head only if j's final version is the
        // dominant one, and it prunes (j's covered tuple and everything
        // queued before it) only if the covered tuple is actually in L —
        // i.e. j's own uncovered SUBMIT is its *final* one. Otherwise
        // nothing is pruned, and j's own stale pending tuple — expected
        // at the healed `rounds + 1` but signed at its true timestamp —
        // always flags.
        let pend = |k: usize| effective[k] == eff_commits[k] + 1;
        // Global-order position of client k's surviving pending SUBMIT.
        let pend_seq = |k: usize| logs[k][2 * (effective[k] - 1)];
        let must_flag: Vec<bool> = (0..n)
            .map(|j| {
                let own = version_at(j, rounds);
                let own_dominant = dominates(&own, &v_surviving);
                assert!(
                    own_dominant || dominates(&v_surviving, &own),
                    "seed {seed}: schedule versions are totally ordered"
                );
                let heal = if own_dominant { &own } else { &v_surviving };
                let prunes = pend(j) && own_dominant && effective[j] == rounds;
                let own_folds = pend(j) && !prunes;
                let peer_folds =
                    |k: usize| pend(k) && (!prunes || pend_seq(k) > logs[j][2 * (rounds - 1)]);
                own_folds
                    || (0..n)
                        .filter(|&k| k != j)
                        .any(|k| peer_folds(k) && heal[k] != eff_commits[k])
            })
            .collect();

        // Freeze the tampered logs: each client gets its verdict
        // against a pristine copy, so one client's post-repair SUBMIT
        // (logged, replayed as pending, folded into candidates) cannot
        // mask the regression the next client would otherwise see.
        let copies: Vec<std::path::PathBuf> = (0..n)
            .map(|j| {
                let copy = dir.with_file_name(format!(
                    "{}-client{j}",
                    dir.file_name().unwrap().to_string_lossy()
                ));
                copy_store(&dir, &copy);
                copy
            })
            .collect();

        // Strict recovery refuses iff the survivors are not a global
        // prefix; repair (a no-op on a clean prefix) then proceeds.
        match backend.build(n) {
            Ok(_) => assert!(
                !gap_expected,
                "seed {seed}, cuts {cuts:?}: strict recovery accepted a holed order"
            ),
            Err(err) => {
                assert!(
                    gap_expected,
                    "seed {seed}, cuts {cuts:?}: spurious refusal: {err}"
                );
                assert!(
                    err.to_string().contains("sequence gap"),
                    "seed {seed}: expected a global sequence gap, got: {err}"
                );
            }
        }
        // Phase 2: each client reconnects to its own repaired
        // incarnation and writes once. Exactly the predicted clients
        // flag the rollback; the rest stay clean.
        for (j, h) in handles.iter_mut().enumerate() {
            let repairing = ShardedBackend {
                dir: copies[j].clone(),
                repair: true,
                ..backend.clone()
            };
            let (addr, engine) = incarnation(&repairing, n);
            // The transport serves exactly n client slots; fill the
            // others with idle connections so the engine can retire.
            let fillers: Vec<_> = (0..n)
                .filter(|&m| m != j)
                .map(|m| faust::net::tcp::connect(addr, c(m as u32)).expect("filler"))
                .collect();
            h.reconnect(Box::new(
                faust::net::tcp::connect(addr, c(j as u32)).expect("redial"),
            ));
            let ticket = h.write(Value::from(vec![b'p', j as u8]));
            if must_flag[j] {
                let err = h.wait(ticket, wait).expect_err("rollback must be detected");
                assert!(
                    matches!(err, WaitError::Violation(_)),
                    "seed {seed}, client {j}: got {err:?}"
                );
                assert!(
                    h.poll()
                        .iter()
                        .any(|(_, e)| matches!(e, Event::Violation { .. })),
                    "seed {seed}, client {j}: expected Event::Violation"
                );
                assert!(h.failure().is_some(), "seed {seed}, client {j}");
            } else {
                let done = h.wait(ticket, wait).unwrap_or_else(|e| {
                    panic!(
                        "seed {seed}, client {j}, cuts {cuts:?}: detection must be \
                         accurate, but the clean client saw {e:?}"
                    )
                });
                // The session kept its own clock: the replayed COMMIT
                // re-anchored the server, and the write lands at the
                // client's true next timestamp, rolled-back tail or not.
                assert_eq!(done.timestamp, rounds as u64 + 1, "seed {seed}");
                assert!(h.failure().is_none(), "seed {seed}, client {j}");
            }
            h.disconnect();
            drop(fillers);
            engine.join().expect("engine thread");
            std::fs::remove_dir_all(&copies[j]).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
