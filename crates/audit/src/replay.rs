//! The offline certifier: replays a [`SessionHistory`] and either proves
//! the run fork-linearizable or pinpoints the first divergent version.
//!
//! The auditor trusts nothing in the file beyond raw integrity (already
//! checked by the container parser). It re-derives the server's whole
//! behaviour from the accepted messages:
//!
//! 1. **Base state** — every carried signature (COMMIT, PROOF, DATA) is
//!    verified and the committed versions must already form a chain.
//! 2. **Schedule** — per client, SUBMIT timestamps must be consecutive
//!    (`ScheduleGap` otherwise: a removed or reordered record), and every
//!    SUBMIT- and DATA-signature must verify under the client's key.
//! 3. **Commits** — COMMIT- and PROOF-signatures must verify; a commit
//!    may only reference operations the log actually contains
//!    (`UnjustifiedCommit`); per client, commits must advance
//!    monotonically; globally, **all** committed versions must form a
//!    totally ordered chain — two signed incomparable versions are the
//!    paper's fork proof and are returned verbatim as
//!    [`Divergence::ForkedCommits`].
//! 4. **Claim check** — the replayed final state must equal the
//!    manifest's claimed chain (`ChainMismatch`).
//! 5. **Client view** — if the file carries the client-side history,
//!    every completed operation must appear in the replayed schedule with
//!    matching parameters and result (`OmittedOperation` /
//!    `MisreportedOperation`), and the history must certify as
//!    linearizable ([`faust_consistency::certify_linearizable`]).
//!
//! `first_bad_version` in a [`AuditVerdict::Diverged`] is the global
//! sequence number of the record where the divergence becomes evident —
//! "the schedule was honest up to here".

use std::collections::HashMap;
use std::fmt;

use faust_consistency::{certify_linearizable, CertifyOutcome};
use faust_crypto::{sha256, Digest, SigContext, SigScheme, Signature, Verifier, VerifierRegistry};
use faust_store::LogRecord;
use faust_types::op::{data_signing_bytes, proof_signing_bytes, submit_signing_bytes};
use faust_types::{
    ClientId, CommitMsg, OpId, OpKind, OpOutcome, SignedVersion, Timestamp, Value, Version,
    VersionCmp,
};
use faust_ustor::{Server, UstorServer};

use crate::format::SessionHistory;

/// Which protocol signature failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigKind {
    /// SUBMIT-signature `σ` over `(kind, register, timestamp)`.
    Submit,
    /// DATA-signature `δ` over `(timestamp, value hash)`.
    Data,
    /// COMMIT-signature `φ` over the version.
    Commit,
    /// PROOF-signature `ψ` over `M[i]`.
    Proof,
}

impl fmt::Display for SigKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigKind::Submit => write!(f, "SUBMIT"),
            SigKind::Data => write!(f, "DATA"),
            SigKind::Commit => write!(f, "COMMIT"),
            SigKind::Proof => write!(f, "PROOF"),
        }
    }
}

/// Why the auditor refused to certify, pinned to a record by the
/// enclosing [`AuditVerdict::Diverged`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Two committed versions are incomparable: the signed fork proof.
    /// Both carry valid COMMIT-signatures, so this pair convicts the
    /// server to any third party holding the verification keys.
    ForkedCommits {
        /// The incomparable signed versions.
        evidence: Box<(SignedVersion, SignedVersion)>,
    },
    /// A client's committed version moved strictly backwards.
    CommitRollback {
        /// The client whose chain regressed.
        client: ClientId,
        /// The version previously committed.
        from: Box<Version>,
        /// The strictly older version committed later.
        to: Box<Version>,
    },
    /// A protocol signature failed verification.
    BadSignature {
        /// The client the signature claims to be from.
        client: ClientId,
        /// Which signature failed.
        what: SigKind,
    },
    /// A client's SUBMIT timestamps are not consecutive — a record was
    /// removed, reordered, or forged.
    ScheduleGap {
        /// The client with the gap.
        client: ClientId,
        /// The timestamp the schedule requires next.
        expected: Timestamp,
        /// The timestamp found.
        found: Timestamp,
    },
    /// A commit references an operation the log never admitted.
    UnjustifiedCommit {
        /// The committing client.
        committer: ClientId,
        /// The client whose operations are over-counted.
        victim: ClientId,
        /// Operations of `victim` the version claims.
        claimed: Timestamp,
        /// Operations of `victim` the log holds.
        submitted: Timestamp,
    },
    /// The replayed final state disagrees with the manifest's claimed
    /// chain — the exporter's claim and its own records contradict.
    ChainMismatch {
        /// First client whose entry disagrees.
        client: ClientId,
    },
    /// A completed client operation does not appear in the schedule.
    OmittedOperation {
        /// The client whose operation vanished.
        client: ClientId,
        /// The operation's timestamp.
        timestamp: Timestamp,
    },
    /// A client operation appears in the schedule with different
    /// parameters or a different result than the client observed.
    MisreportedOperation {
        /// The affected client.
        client: ClientId,
        /// The operation's timestamp.
        timestamp: Timestamp,
        /// What disagrees.
        detail: String,
    },
    /// A record is structurally impossible for an honest server to have
    /// accepted (wrong sender, out-of-range ids, read with a value, …).
    MalformedRecord {
        /// What is wrong with it.
        detail: String,
    },
    /// The replayed schedule is internally consistent but the client-side
    /// history it serves is not linearizable.
    HistoryNotLinearizable {
        /// Two operations witnessing the contradiction.
        witness: (OpId, OpId),
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::ForkedCommits { evidence } => write!(
                f,
                "forked commits: incomparable signed versions {:?} / {:?}",
                evidence.0.version.v(),
                evidence.1.version.v()
            ),
            Divergence::CommitRollback { client, from, to } => write!(
                f,
                "{client} committed {:?} after {:?} — its chain rolled back",
                to.v(),
                from.v()
            ),
            Divergence::BadSignature { client, what } => {
                write!(f, "{what}-signature attributed to {client} does not verify")
            }
            Divergence::ScheduleGap {
                client,
                expected,
                found,
            } => write!(
                f,
                "{client}'s schedule skips from timestamp {expected} to {found}"
            ),
            Divergence::UnjustifiedCommit {
                committer,
                victim,
                claimed,
                submitted,
            } => write!(
                f,
                "{committer} committed a version claiming {claimed} operations of {victim}, \
                 but the log holds only {submitted}"
            ),
            Divergence::ChainMismatch { client } => write!(
                f,
                "replayed final state disagrees with the claimed chain at {client}"
            ),
            Divergence::OmittedOperation { client, timestamp } => write!(
                f,
                "{client}'s completed operation (timestamp {timestamp}) is missing \
                 from the schedule"
            ),
            Divergence::MisreportedOperation {
                client,
                timestamp,
                detail,
            } => write!(
                f,
                "{client}'s operation (timestamp {timestamp}) disagrees with the \
                 schedule: {detail}"
            ),
            Divergence::MalformedRecord { detail } => write!(f, "malformed record: {detail}"),
            Divergence::HistoryNotLinearizable { witness, reason } => write!(
                f,
                "client history is not linearizable ({:?} vs {:?}): {reason}",
                witness.0, witness.1
            ),
        }
    }
}

/// The auditor's verdict over one session history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditVerdict {
    /// Every check passed: the history is an honest execution.
    Certified {
        /// Whether the client-observed history was proven linearizable
        /// (`false` only if the certifier could not decide — never for
        /// histories with unique written values).
        fork_linearizable: bool,
        /// Operations in the replayed schedule.
        ops: u64,
        /// Clients in the session.
        clients: u32,
    },
    /// The history is not an honest execution.
    Diverged {
        /// Global sequence number of the record where the divergence
        /// becomes evident; the schedule is honest before it.
        first_bad_version: u64,
        /// What diverged.
        divergence: Divergence,
    },
}

impl AuditVerdict {
    /// Whether the verdict certifies the history.
    pub fn is_certified(&self) -> bool {
        matches!(self, AuditVerdict::Certified { .. })
    }

    /// The incomparable committed version pair, if the divergence is a
    /// fork.
    pub fn conflicting_pair(&self) -> Option<(&Version, &Version)> {
        self.signed_evidence()
            .map(|(a, b)| (&a.version, &b.version))
    }

    /// The signed fork evidence — two validly signed, mutually
    /// incomparable committed versions — if the divergence is a fork.
    pub fn signed_evidence(&self) -> Option<(&SignedVersion, &SignedVersion)> {
        match self {
            AuditVerdict::Diverged {
                divergence: Divergence::ForkedCommits { evidence },
                ..
            } => Some((&evidence.0, &evidence.1)),
            _ => None,
        }
    }
}

/// Statistics and verdict from one audit run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// The verdict.
    pub verdict: AuditVerdict,
    /// Records replayed before the audit concluded.
    pub records_replayed: u64,
    /// Protocol signatures verified.
    pub signatures_checked: u64,
    /// Commit messages checked (including piggybacked ones).
    pub commits_checked: u64,
}

/// The audit could not even start: the verifier does not match the
/// history's parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// Registry and history disagree about the number of clients.
    ClientCountMismatch {
        /// Clients the registry verifies for.
        registry: usize,
        /// Clients the history claims.
        history: usize,
    },
    /// Registry and history disagree about the signature scheme.
    SchemeMismatch {
        /// The registry's scheme.
        registry: SigScheme,
        /// The history's scheme.
        history: SigScheme,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::ClientCountMismatch { registry, history } => write!(
                f,
                "verifier covers {registry} clients but the history claims {history}"
            ),
            AuditError::SchemeMismatch { registry, history } => write!(
                f,
                "verifier uses {registry:?} but the history claims {history:?}"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// One scheduled operation, as reconstructed from the record stream.
struct ScheduledOp {
    seq: u64,
    kind: OpKind,
    register: ClientId,
    written: Option<Value>,
    read_value: Option<Value>,
}

/// The replay state threaded through the record loop.
struct Auditor<'a> {
    verifier: &'a VerifierRegistry,
    n: usize,
    server: UstorServer,
    /// Next expected SUBMIT timestamp per client.
    next_t: Vec<Timestamp>,
    /// Hash of each client's last written value (`x̄` in the paper).
    xbar: Vec<Option<Digest>>,
    /// Each client's last committed version.
    last_committed: Vec<SignedVersion>,
    /// All distinct committed versions, ascending; kept totally ordered
    /// or the audit has already diverged.
    chain: Vec<SignedVersion>,
    /// `(client, timestamp)` → reconstructed operation.
    schedule: HashMap<(usize, Timestamp), ScheduledOp>,
    signatures_checked: u64,
    commits_checked: u64,
}

/// Early exit from the replay loop with a divergence.
struct Diverged {
    first_bad_version: u64,
    divergence: Divergence,
}

impl<'a> Auditor<'a> {
    fn verify(
        &mut self,
        client: ClientId,
        context: SigContext,
        message: &[u8],
        sig: &Signature,
    ) -> bool {
        self.signatures_checked += 1;
        self.verifier
            .verify(client.index() as u32, context, message, sig)
    }

    /// Verifies the signatures a base state carries and seeds the replay
    /// trackers from it. Divergences point at `base_seq`.
    fn seed(&mut self, history: &SessionHistory) -> Result<(), Diverged> {
        let at = history.base_seq;
        let bad = |divergence| Diverged {
            first_bad_version: at,
            divergence,
        };
        let state = match &history.base_state {
            Some(state) => state.clone(),
            None => {
                self.chain.push(SignedVersion::initial(self.n));
                return Ok(());
            }
        };
        for i in 0..self.n {
            let client = ClientId::new(i as u32);
            let sver = &state.sver[i];
            if sver.version.num_clients() != self.n {
                return Err(bad(Divergence::MalformedRecord {
                    detail: format!("base SVER[{i}] has the wrong dimension"),
                }));
            }
            if !sver.version.is_initial() {
                let Some(sig) = &sver.sig else {
                    return Err(bad(Divergence::MalformedRecord {
                        detail: format!("base SVER[{i}] is non-initial but unsigned"),
                    }));
                };
                if !self.verify(
                    client,
                    SigContext::Commit,
                    &sver.version.signing_bytes(),
                    sig,
                ) {
                    return Err(bad(Divergence::BadSignature {
                        client,
                        what: SigKind::Commit,
                    }));
                }
            }
            if let Some(sig) = &state.proofs[i] {
                let message = proof_signing_bytes(sver.version.m().get(client));
                if !self.verify(client, SigContext::Proof, &message, sig) {
                    return Err(bad(Divergence::BadSignature {
                        client,
                        what: SigKind::Proof,
                    }));
                }
            } else if !sver.version.is_initial() {
                return Err(bad(Divergence::MalformedRecord {
                    detail: format!("base SVER[{i}] committed but PROOF[{i}] is missing"),
                }));
            }
            let mem = &state.mem[i];
            if mem.timestamp == 0 {
                if mem.value.is_some() || mem.data_sig.is_some() {
                    return Err(bad(Divergence::MalformedRecord {
                        detail: format!("base MEM[{i}] has data at timestamp 0"),
                    }));
                }
            } else {
                let Some(sig) = &mem.data_sig else {
                    return Err(bad(Divergence::MalformedRecord {
                        detail: format!("base MEM[{i}] has no DATA-signature"),
                    }));
                };
                let hash = mem.value.as_ref().map(|v| sha256(v.as_bytes()));
                let message = data_signing_bytes(mem.timestamp, hash);
                if !self.verify(client, SigContext::Data, &message, sig) {
                    return Err(bad(Divergence::BadSignature {
                        client,
                        what: SigKind::Data,
                    }));
                }
            }
            self.next_t[i] = mem.timestamp + 1;
            self.xbar[i] = mem.value.as_ref().map(|v| sha256(v.as_bytes()));
        }
        // The base chain must itself be totally ordered.
        for sver in &state.sver {
            self.insert_into_chain(sver.clone())
                .map_err(|evidence| Diverged {
                    first_bad_version: at,
                    divergence: Divergence::ForkedCommits { evidence },
                })?;
        }
        self.last_committed = state.sver.clone();
        self.server = UstorServer::from_state(state);
        Ok(())
    }

    /// Inserts a committed version into the global chain, failing with
    /// the incomparable pair if the chain stops being a total order.
    ///
    /// The chain is kept sorted ascending. Scanning from the top: every
    /// element the new version is `≥` closes the scan (transitivity
    /// orders it against everything below); every element it is `<`
    /// keeps scanning; an incomparable element is a fork.
    fn insert_into_chain(
        &mut self,
        new: SignedVersion,
    ) -> Result<(), Box<(SignedVersion, SignedVersion)>> {
        let mut i = self.chain.len();
        while i > 0 {
            match new.version.compare(&self.chain[i - 1].version) {
                VersionCmp::Equal => return Ok(()),
                VersionCmp::Greater => break,
                VersionCmp::Less => i -= 1,
                VersionCmp::Incomparable => {
                    return Err(Box::new((self.chain[i - 1].clone(), new)));
                }
            }
        }
        self.chain.insert(i, new);
        Ok(())
    }

    fn check_commit(&mut self, seq: u64, from: ClientId, msg: &CommitMsg) -> Result<(), Diverged> {
        let bad = |divergence| Diverged {
            first_bad_version: seq,
            divergence,
        };
        self.commits_checked += 1;
        if msg.version.num_clients() != self.n {
            return Err(bad(Divergence::MalformedRecord {
                detail: format!("commit by client {} has the wrong dimension", from.index()),
            }));
        }
        if !self.verify(
            from,
            SigContext::Commit,
            &msg.version.signing_bytes(),
            &msg.commit_sig,
        ) {
            return Err(bad(Divergence::BadSignature {
                client: from,
                what: SigKind::Commit,
            }));
        }
        if !self.verify(
            from,
            SigContext::Proof,
            &proof_signing_bytes(msg.version.m().get(from)),
            &msg.proof_sig,
        ) {
            return Err(bad(Divergence::BadSignature {
                client: from,
                what: SigKind::Proof,
            }));
        }
        // Justification: the version may only count operations the log
        // admitted. A higher count means the committer was shown an
        // operation this log does not contain — records were removed or
        // the reply was fabricated.
        for j in 0..self.n {
            let victim = ClientId::new(j as u32);
            let claimed = msg.version.v().get(victim);
            let submitted = self.next_t[j] - 1;
            if claimed > submitted {
                return Err(bad(Divergence::UnjustifiedCommit {
                    committer: from,
                    victim,
                    claimed,
                    submitted,
                }));
            }
        }
        // Per-client monotonicity.
        let previous = &self.last_committed[from.index()];
        match msg.version.compare(&previous.version) {
            VersionCmp::Greater | VersionCmp::Equal => {}
            VersionCmp::Less => {
                return Err(bad(Divergence::CommitRollback {
                    client: from,
                    from: Box::new(previous.version.clone()),
                    to: Box::new(msg.version.clone()),
                }));
            }
            VersionCmp::Incomparable => {
                return Err(bad(Divergence::ForkedCommits {
                    evidence: Box::new((
                        previous.clone(),
                        SignedVersion {
                            version: msg.version.clone(),
                            sig: Some(msg.commit_sig),
                        },
                    )),
                }));
            }
        }
        let signed = SignedVersion {
            version: msg.version.clone(),
            sig: Some(msg.commit_sig),
        };
        self.last_committed[from.index()] = signed.clone();
        // Global total order.
        self.insert_into_chain(signed).map_err(|evidence| Diverged {
            first_bad_version: seq,
            divergence: Divergence::ForkedCommits { evidence },
        })
    }

    fn check_submit(
        &mut self,
        seq: u64,
        from: ClientId,
        msg: &faust_types::SubmitMsg,
    ) -> Result<(), Diverged> {
        let bad = |divergence| Diverged {
            first_bad_version: seq,
            divergence,
        };
        if msg.tuple.client != from {
            return Err(bad(Divergence::MalformedRecord {
                detail: format!(
                    "submit record from client {} carries a tuple by client {}",
                    from.index(),
                    msg.tuple.client.index()
                ),
            }));
        }
        let register = msg.tuple.register;
        if register.index() >= self.n {
            return Err(bad(Divergence::MalformedRecord {
                detail: format!("submit targets out-of-range register {}", register.index()),
            }));
        }
        match msg.tuple.kind {
            OpKind::Write => {
                if register != from {
                    return Err(bad(Divergence::MalformedRecord {
                        detail: format!(
                            "client {} writes register {} it does not own",
                            from.index(),
                            register.index()
                        ),
                    }));
                }
                if msg.value.is_none() {
                    return Err(bad(Divergence::MalformedRecord {
                        detail: "write submit carries no value".into(),
                    }));
                }
            }
            OpKind::Read => {
                if msg.value.is_some() {
                    return Err(bad(Divergence::MalformedRecord {
                        detail: "read submit carries a value".into(),
                    }));
                }
            }
        }
        let t = msg.timestamp;
        let expected = self.next_t[from.index()];
        if t != expected {
            return Err(bad(Divergence::ScheduleGap {
                client: from,
                expected,
                found: t,
            }));
        }
        if !self.verify(
            from,
            SigContext::Submit,
            &submit_signing_bytes(msg.tuple.kind, register, t),
            &msg.tuple.sig,
        ) {
            return Err(bad(Divergence::BadSignature {
                client: from,
                what: SigKind::Submit,
            }));
        }
        if msg.tuple.kind == OpKind::Write {
            self.xbar[from.index()] = msg.value.as_ref().map(|v| sha256(v.as_bytes()));
        }
        if !self.verify(
            from,
            SigContext::Data,
            &data_signing_bytes(t, self.xbar[from.index()]),
            &msg.data_sig,
        ) {
            return Err(bad(Divergence::BadSignature {
                client: from,
                what: SigKind::Data,
            }));
        }
        // The value a read observes is the register's content at its
        // position in the schedule — recorded before applying, though a
        // read submit never changes `MEM[j].x`.
        let read_value = match msg.tuple.kind {
            OpKind::Read => self.server.mem(register).value.clone(),
            OpKind::Write => None,
        };
        self.schedule.insert(
            (from.index(), t),
            ScheduledOp {
                seq,
                kind: msg.tuple.kind,
                register,
                written: msg.value.clone(),
                read_value,
            },
        );
        self.next_t[from.index()] = t + 1;
        Ok(())
    }

    fn check_record(&mut self, seq: u64, record: &LogRecord) -> Result<(), Diverged> {
        let inner = match record {
            LogRecord::Routed { inner, .. } => inner.as_ref(),
            other => other,
        };
        match inner {
            LogRecord::Submit { from, msg } => {
                if from.index() >= self.n {
                    return Err(Diverged {
                        first_bad_version: seq,
                        divergence: Divergence::MalformedRecord {
                            detail: format!("submit from out-of-range client {}", from.index()),
                        },
                    });
                }
                if let Some(piggyback) = &msg.piggyback {
                    self.check_commit(seq, *from, piggyback)?;
                }
                self.check_submit(seq, *from, msg)?;
                self.server.on_submit(*from, msg.clone());
            }
            LogRecord::Commit { from, msg } => {
                if from.index() >= self.n {
                    return Err(Diverged {
                        first_bad_version: seq,
                        divergence: Divergence::MalformedRecord {
                            detail: format!("commit from out-of-range client {}", from.index()),
                        },
                    });
                }
                self.check_commit(seq, *from, msg)?;
                self.server.on_commit(*from, msg.clone());
            }
            LogRecord::Routed { .. } => {
                return Err(Diverged {
                    first_bad_version: seq,
                    divergence: Divergence::MalformedRecord {
                        detail: "nested routed record".into(),
                    },
                });
            }
        }
        Ok(())
    }

    /// Cross-checks the client-observed history against the replayed
    /// schedule. `base_t[i]` is the highest timestamp of client `i`
    /// folded into the base state (those operations predate the exported
    /// window and cannot be cross-checked record-by-record).
    fn check_client_history(
        &self,
        history: &faust_types::History,
        base_t: &[Timestamp],
        end_seq: u64,
    ) -> Result<(), Diverged> {
        for op in history.ops() {
            if !op.is_complete() {
                continue;
            }
            let Some(t) = op.timestamp else {
                continue;
            };
            let client = op.client;
            if client.index() >= self.n {
                return Err(Diverged {
                    first_bad_version: end_seq,
                    divergence: Divergence::MalformedRecord {
                        detail: format!(
                            "client history names out-of-range client {}",
                            client.index()
                        ),
                    },
                });
            }
            if t <= base_t[client.index()] {
                continue;
            }
            let Some(scheduled) = self.schedule.get(&(client.index(), t)) else {
                return Err(Diverged {
                    first_bad_version: end_seq,
                    divergence: Divergence::OmittedOperation {
                        client,
                        timestamp: t,
                    },
                });
            };
            let misreported = |detail: String| Diverged {
                first_bad_version: scheduled.seq,
                divergence: Divergence::MisreportedOperation {
                    client,
                    timestamp: t,
                    detail,
                },
            };
            if op.kind != scheduled.kind {
                return Err(misreported(format!(
                    "client observed a {:?} but the schedule holds a {:?}",
                    op.kind, scheduled.kind
                )));
            }
            if op.register != scheduled.register {
                return Err(misreported(format!(
                    "client targeted register {} but the schedule holds register {}",
                    op.register.index(),
                    scheduled.register.index()
                )));
            }
            match (&op.outcome, op.kind) {
                (OpOutcome::WriteOk, OpKind::Write) => {
                    if op.written != scheduled.written {
                        return Err(misreported(
                            "written value differs from the scheduled value".into(),
                        ));
                    }
                }
                (OpOutcome::ReadReturned(observed), OpKind::Read) => {
                    if observed != &scheduled.read_value {
                        return Err(misreported(format!(
                            "read returned {:?} but the schedule serves {:?}",
                            observed.as_ref().map(|v| v.as_bytes()),
                            scheduled.read_value.as_ref().map(|v| v.as_bytes()),
                        )));
                    }
                }
                _ => {
                    return Err(misreported("outcome does not match the kind".into()));
                }
            }
        }
        Ok(())
    }
}

/// Audits a session history against a verifier registry, replaying every
/// record and checking every signature (see module docs for the check
/// sequence). Returns the verdict and replay statistics; errs only if
/// `verifier` cannot possibly match the history.
pub fn audit(
    history: &SessionHistory,
    verifier: &VerifierRegistry,
) -> Result<AuditReport, AuditError> {
    if verifier.num_clients() != history.n {
        return Err(AuditError::ClientCountMismatch {
            registry: verifier.num_clients(),
            history: history.n,
        });
    }
    if verifier.scheme() != history.scheme {
        return Err(AuditError::SchemeMismatch {
            registry: verifier.scheme(),
            history: history.scheme,
        });
    }
    let n = history.n;
    let mut auditor = Auditor {
        verifier,
        n,
        server: UstorServer::new(n),
        next_t: vec![1; n],
        xbar: vec![None; n],
        last_committed: vec![SignedVersion::initial(n); n],
        chain: Vec::new(),
        schedule: HashMap::new(),
        signatures_checked: 0,
        commits_checked: 0,
    };

    let mut records_replayed = 0u64;
    let end_seq = history.base_seq + history.records.len() as u64;
    let outcome = (|| -> Result<(), Diverged> {
        auditor.seed(history)?;
        let base_t: Vec<Timestamp> = auditor.next_t.iter().map(|t| t - 1).collect();
        for (seq, record) in &history.records {
            auditor.check_record(*seq, record)?;
            records_replayed += 1;
        }
        // The exporter's claimed chain must match the replay.
        let final_state = auditor.server.export_state();
        for i in 0..n {
            if final_state.sver[i] != history.claimed_chain[i]
                || final_state.proofs[i] != history.claimed_proofs[i]
            {
                return Err(Diverged {
                    first_bad_version: end_seq,
                    divergence: Divergence::ChainMismatch {
                        client: ClientId::new(i as u32),
                    },
                });
            }
        }
        if let Some(client_history) = &history.client_history {
            auditor.check_client_history(client_history, &base_t, end_seq)?;
        }
        Ok(())
    })();

    let verdict = match outcome {
        Err(diverged) => AuditVerdict::Diverged {
            first_bad_version: diverged.first_bad_version,
            divergence: diverged.divergence,
        },
        Ok(()) => {
            // Op-level certification of the client-observed history.
            let fork_linearizable = match &history.client_history {
                None => true,
                Some(client_history) => match certify_linearizable(client_history) {
                    CertifyOutcome::Linearizable { .. } => true,
                    CertifyOutcome::Unknown(_) => false,
                    CertifyOutcome::Violated { witness, reason } => {
                        // Pin the divergence to the later witness op's
                        // position in the schedule if we can find it.
                        let seq_of = |id: OpId| {
                            client_history.op(id).and_then(|op| {
                                let t = op.timestamp?;
                                auditor.schedule.get(&(op.client.index(), t)).map(|s| s.seq)
                            })
                        };
                        let at = seq_of(witness.0)
                            .into_iter()
                            .chain(seq_of(witness.1))
                            .max()
                            .unwrap_or(end_seq);
                        return Ok(AuditReport {
                            verdict: AuditVerdict::Diverged {
                                first_bad_version: at,
                                divergence: Divergence::HistoryNotLinearizable { witness, reason },
                            },
                            records_replayed,
                            signatures_checked: auditor.signatures_checked,
                            commits_checked: auditor.commits_checked,
                        });
                    }
                },
            };
            AuditVerdict::Certified {
                fork_linearizable,
                ops: auditor.schedule.len() as u64,
                clients: n as u32,
            }
        }
    };
    Ok(AuditReport {
        verdict,
        records_replayed,
        signatures_checked: auditor.signatures_checked,
        commits_checked: auditor.commits_checked,
    })
}
