//! Wire messages of the USTOR protocol (Algorithms 1–2) with an exact
//! binary encoding.
//!
//! Three message types flow between a client and the server:
//!
//! * [`SubmitMsg`] — `⟨SUBMIT, t, (i, oc, j, σ), x, δ⟩`;
//! * [`ReplyMsg`] — `⟨REPLY, c, SVER[c], [SVER[j], MEM[j],] L, P⟩`;
//! * [`CommitMsg`] — `⟨COMMIT, V_i, M_i, φ, ψ⟩`.
//!
//! The encoding is hand-rolled (length-prefixed, big-endian) so message
//! sizes are exact and reproducible; experiment E6 (the paper's `O(n)`
//! bits-per-request claim) measures [`Wire::encoded_len`] of these messages
//! as a function of the number of clients `n`.

use crate::ids::{ClientId, Timestamp};
use crate::op::{InvocationTuple, OpKind};
use crate::value::Value;
use crate::version::{DigestVec, SignedVersion, TimestampVec, Version};
use faust_crypto::sig::Signature;
use faust_crypto::Digest;
use std::fmt;

/// Error produced when decoding a malformed wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the message was complete.
    Truncated,
    /// A tag byte had an unknown value.
    BadTag(u8),
    /// A length prefix exceeded sane bounds.
    BadLength(u64),
    /// Trailing bytes remained after a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("input truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            WireError::BadLength(l) => write!(f, "implausible length prefix {l}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum plausible element count in a decoded collection; guards against
/// hostile length prefixes.
const MAX_LEN: u64 = 1 << 24;

/// Types with an exact binary wire encoding.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes a value from the front of `input`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the input is truncated or malformed.
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Exact encoded size in bytes.
    fn encoded_len(&self) -> usize {
        self.encode().len()
    }

    /// Decodes a value that must consume the entire input.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if decoding fails or bytes remain.
    fn decode(mut input: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode_from(&mut input)?;
        if input.is_empty() {
            Ok(v)
        } else {
            Err(WireError::TrailingBytes(input.len()))
        }
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

impl Wire for u8 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(take(input, 1)?[0])
    }
}

impl Wire for u32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(u32::from_be_bytes(
            take(input, 4)?.try_into().expect("4 bytes"),
        ))
    }
}

impl Wire for u64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(u64::from_be_bytes(
            take(input, 8)?.try_into().expect("8 bytes"),
        ))
    }
}

impl Wire for ClientId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_u32().encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ClientId::new(u32::decode_from(input)?))
    }
}

impl Wire for Signature {
    // One scheme-tag byte, then the scheme's fixed-length raw bytes: a
    // 32-byte MAC or a 64-byte Ed25519 signature. Truncation inside the
    // raw bytes surfaces as `Truncated`; an unknown scheme tag as
    // `BadTag` — decoding never fabricates a verifiable signature.
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Signature::Mac(_) => out.push(0),
            Signature::Ed25519(_) => out.push(1),
        }
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode_from(input)? {
            0 => {
                let raw = take(input, 32)?;
                Ok(Signature::Mac(raw.try_into().expect("fixed length")))
            }
            1 => {
                let raw = take(input, 64)?;
                Ok(Signature::Ed25519(raw.try_into().expect("fixed length")))
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for Digest {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        let raw = take(input, 32)?;
        Ok(Digest::from_bytes(raw.try_into().expect("fixed length")))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode_from(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(input)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_into(out);
        for item in self {
            item.encode_into(out);
        }
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode_from(input)? as u64;
        if len > MAX_LEN {
            return Err(WireError::BadLength(len));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::decode_from(input)?);
        }
        Ok(out)
    }
}

impl Wire for Value {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_into(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode_from(input)? as u64;
        if len > MAX_LEN {
            return Err(WireError::BadLength(len));
        }
        Ok(Value::new(take(input, len as usize)?.to_vec()))
    }
}

impl Wire for OpKind {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode_from(input)? {
            0 => Ok(OpKind::Read),
            1 => Ok(OpKind::Write),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for InvocationTuple {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.client.encode_into(out);
        self.kind.encode_into(out);
        self.register.encode_into(out);
        self.sig.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(InvocationTuple {
            client: ClientId::decode_from(input)?,
            kind: OpKind::decode_from(input)?,
            register: ClientId::decode_from(input)?,
            sig: Signature::decode_from(input)?,
        })
    }
}

impl Wire for TimestampVec {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_into(out);
        for &t in self.as_slice() {
            t.encode_into(out);
        }
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode_from(input)? as u64;
        if len > MAX_LEN {
            return Err(WireError::BadLength(len));
        }
        let mut entries = Vec::with_capacity(len as usize);
        for _ in 0..len {
            entries.push(u64::decode_from(input)?);
        }
        Ok(TimestampVec::from_vec(entries))
    }

    fn encoded_len(&self) -> usize {
        4 + 8 * self.len()
    }
}

impl Wire for DigestVec {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_into(out);
        for d in self.as_slice() {
            d.encode_into(out);
        }
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode_from(input)? as u64;
        if len > MAX_LEN {
            return Err(WireError::BadLength(len));
        }
        let mut entries = Vec::with_capacity(len as usize);
        for _ in 0..len {
            entries.push(Option::<Digest>::decode_from(input)?);
        }
        Ok(DigestVec::from_vec(entries))
    }

    fn encoded_len(&self) -> usize {
        4 + self
            .as_slice()
            .iter()
            .map(|d| 1 + if d.is_some() { 32 } else { 0 })
            .sum::<usize>()
    }
}

impl Wire for Version {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.v().encode_into(out);
        self.m().encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        let v = TimestampVec::decode_from(input)?;
        let m = DigestVec::decode_from(input)?;
        if v.len() != m.len() {
            return Err(WireError::BadLength(m.len() as u64));
        }
        Ok(Version::new(v, m))
    }

    // Versions ride in every COMMIT, REPLY, and offline VERSION message,
    // and the simulator measures sizes on every send — keep this
    // allocation-free.
    fn encoded_len(&self) -> usize {
        self.v().encoded_len() + self.m().encoded_len()
    }
}

impl Wire for SignedVersion {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.version.encode_into(out);
        self.sig.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SignedVersion {
            version: Version::decode_from(input)?,
            sig: Option::<Signature>::decode_from(input)?,
        })
    }
}

/// `⟨SUBMIT, t, (i, oc, j, σ), x, δ⟩` — a client submits an operation.
///
/// `value` is `Some` exactly for writes. `data_sig` is the DATA-signature
/// `δ` over `(t, x̄)` where `x̄` is the hash of the client's most recently
/// written value.
///
/// `piggyback` carries the COMMIT of the client's *previous* operation
/// when the commit-piggybacking optimization of Section 5 is enabled
/// ("this message can be eliminated by piggybacking its contents on the
/// SUBMIT message of the next operation") — the server processes it
/// before the submit, preserving the FIFO ordering the protocol relies
/// on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitMsg {
    /// The operation timestamp `t`.
    pub timestamp: Timestamp,
    /// The invocation tuple `(i, oc, j, σ)`.
    pub tuple: InvocationTuple,
    /// The written value `x` (writes only).
    pub value: Option<Value>,
    /// DATA-signature `δ`.
    pub data_sig: Signature,
    /// Piggybacked COMMIT of the previous operation (optimization mode).
    pub piggyback: Option<CommitMsg>,
}

impl Wire for SubmitMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.timestamp.encode_into(out);
        self.tuple.encode_into(out);
        self.value.encode_into(out);
        self.data_sig.encode_into(out);
        self.piggyback.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SubmitMsg {
            timestamp: Timestamp::decode_from(input)?,
            tuple: InvocationTuple::decode_from(input)?,
            value: Option::<Value>::decode_from(input)?,
            data_sig: Signature::decode_from(input)?,
            piggyback: Option::<CommitMsg>::decode_from(input)?,
        })
    }
}

/// The read-specific part of a REPLY: `SVER[j]` and `MEM[j]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadReply {
    /// `SVER[j]` — the largest version committed by the register's writer,
    /// as known to the server.
    pub writer_version: SignedVersion,
    /// `MEM[j].t` — timestamp of the writer's last submitted operation.
    pub mem_timestamp: Timestamp,
    /// `MEM[j].x` — the register value (`None` = `⊥`, never written).
    pub mem_value: Option<Value>,
    /// `MEM[j].δ` — the writer's DATA-signature (`None` before the writer's
    /// first operation).
    pub mem_data_sig: Option<Signature>,
}

impl Wire for ReadReply {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.writer_version.encode_into(out);
        self.mem_timestamp.encode_into(out);
        self.mem_value.encode_into(out);
        self.mem_data_sig.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ReadReply {
            writer_version: SignedVersion::decode_from(input)?,
            mem_timestamp: Timestamp::decode_from(input)?,
            mem_value: Option::<Value>::decode_from(input)?,
            mem_data_sig: Option::<Signature>::decode_from(input)?,
        })
    }
}

/// `⟨REPLY, c, SVER[c], [SVER[j], MEM[j],] L, P⟩` — the server's answer to
/// a SUBMIT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyMsg {
    /// `c` — the client that committed the last operation in the schedule.
    pub last_committer: ClientId,
    /// `SVER[c]` — that client's last committed version.
    pub commit_version: SignedVersion,
    /// Read-only extras (`SVER[j]`, `MEM[j]`) — present iff the submitted
    /// operation was a read.
    pub read: Option<ReadReply>,
    /// `L` — invocation tuples of submitted-but-uncommitted (concurrent)
    /// operations, oldest first.
    pub pending: Vec<InvocationTuple>,
    /// `P` — PROOF-signatures, indexed by client (`None` before a client's
    /// first commit).
    pub proofs: Vec<Option<Signature>>,
}

impl Wire for ReplyMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.last_committer.encode_into(out);
        self.commit_version.encode_into(out);
        self.read.encode_into(out);
        self.pending.encode_into(out);
        self.proofs.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ReplyMsg {
            last_committer: ClientId::decode_from(input)?,
            commit_version: SignedVersion::decode_from(input)?,
            read: Option::<ReadReply>::decode_from(input)?,
            pending: Vec::<InvocationTuple>::decode_from(input)?,
            proofs: Vec::<Option<Signature>>::decode_from(input)?,
        })
    }
}

/// `⟨COMMIT, V_i, M_i, φ, ψ⟩` — a client commits its new version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitMsg {
    /// The committed version `(V_i, M_i)`.
    pub version: Version,
    /// COMMIT-signature `φ` over the version.
    pub commit_sig: Signature,
    /// PROOF-signature `ψ` over `M_i[i]`.
    pub proof_sig: Signature,
}

impl Wire for CommitMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.version.encode_into(out);
        self.commit_sig.encode_into(out);
        self.proof_sig.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(CommitMsg {
            version: Version::decode_from(input)?,
            commit_sig: Signature::decode_from(input)?,
            proof_sig: Signature::decode_from(input)?,
        })
    }
}

/// Any USTOR client↔server message, for transports that carry a single
/// message type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UstorMsg {
    /// Client → server.
    Submit(SubmitMsg),
    /// Server → client.
    Reply(ReplyMsg),
    /// Client → server.
    Commit(CommitMsg),
}

impl Wire for UstorMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            UstorMsg::Submit(m) => {
                out.push(0);
                m.encode_into(out);
            }
            UstorMsg::Reply(m) => {
                out.push(1);
                m.encode_into(out);
            }
            UstorMsg::Commit(m) => {
                out.push(2);
                m.encode_into(out);
            }
        }
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode_from(input)? {
            0 => Ok(UstorMsg::Submit(SubmitMsg::decode_from(input)?)),
            1 => Ok(UstorMsg::Reply(ReplyMsg::decode_from(input)?)),
            2 => Ok(UstorMsg::Commit(CommitMsg::decode_from(input)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_crypto::sha256;

    fn sig(label: u8) -> Signature {
        Signature::Mac(sha256(&[label]).into_bytes())
    }

    fn ed_sig(label: u8) -> Signature {
        let d = sha256(&[label]).into_bytes();
        let mut raw = [0u8; 64];
        raw[..32].copy_from_slice(&d);
        raw[32..].copy_from_slice(&d);
        Signature::Ed25519(raw)
    }

    fn sample_submit() -> SubmitMsg {
        SubmitMsg {
            timestamp: 42,
            tuple: InvocationTuple {
                client: ClientId::new(1),
                kind: OpKind::Write,
                register: ClientId::new(1),
                sig: sig(1),
            },
            value: Some(Value::from("payload")),
            data_sig: sig(2),
            piggyback: None,
        }
    }

    fn sample_version(n: usize) -> Version {
        let mut v = Version::initial(n);
        for k in 0..n {
            v.v_mut().set(ClientId::new(k as u32), k as u64 + 1);
            v.m_mut().set(ClientId::new(k as u32), sha256(&[k as u8]));
        }
        v
    }

    fn sample_reply(n: usize) -> ReplyMsg {
        ReplyMsg {
            last_committer: ClientId::new(0),
            commit_version: SignedVersion {
                version: sample_version(n),
                sig: Some(sig(3)),
            },
            read: Some(ReadReply {
                writer_version: SignedVersion::initial(n),
                mem_timestamp: 7,
                mem_value: Some(Value::from("stored")),
                mem_data_sig: Some(sig(4)),
            }),
            pending: vec![InvocationTuple {
                client: ClientId::new(2),
                kind: OpKind::Read,
                register: ClientId::new(0),
                sig: sig(5),
            }],
            proofs: vec![Some(sig(6)), None, Some(sig(7))],
        }
    }

    #[test]
    fn submit_roundtrip() {
        let m = sample_submit();
        assert_eq!(SubmitMsg::decode(&m.encode()), Ok(m));
    }

    #[test]
    fn reply_roundtrip() {
        let m = sample_reply(3);
        assert_eq!(ReplyMsg::decode(&m.encode()), Ok(m));
    }

    #[test]
    fn commit_roundtrip() {
        let m = CommitMsg {
            version: sample_version(4),
            commit_sig: sig(8),
            proof_sig: sig(9),
        };
        assert_eq!(CommitMsg::decode(&m.encode()), Ok(m));
    }

    #[test]
    fn enum_roundtrip() {
        for m in [
            UstorMsg::Submit(sample_submit()),
            UstorMsg::Reply(sample_reply(2)),
            UstorMsg::Commit(CommitMsg {
                version: sample_version(2),
                commit_sig: sig(1),
                proof_sig: sig(2),
            }),
        ] {
            assert_eq!(UstorMsg::decode(&m.encode()), Ok(m));
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_reply(3).encode();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                ReplyMsg::decode(&bytes[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_submit().encode();
        bytes.push(0xFF);
        assert_eq!(SubmitMsg::decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(UstorMsg::decode(&[9]), Err(WireError::BadTag(9)));
        // Option tag must be 0 or 1.
        let err = Option::<Signature>::decode(&[7]);
        assert_eq!(err, Err(WireError::BadTag(7)));
    }

    #[test]
    fn signature_scheme_tag_roundtrips_and_rejects_unknown() {
        for s in [sig(1), ed_sig(2)] {
            assert_eq!(Signature::decode(&s.encode()), Ok(s));
        }
        // MAC and Ed25519 payloads have different wire lengths.
        assert_eq!(sig(1).encoded_len(), 1 + 32);
        assert_eq!(ed_sig(1).encoded_len(), 1 + 64);
        assert_eq!(Signature::decode(&[9]), Err(WireError::BadTag(9)));
        // Ed25519 tag with a MAC-sized payload is a truncation.
        let mut short = ed_sig(1).encode();
        short.truncate(33);
        assert_eq!(Signature::decode(&short), Err(WireError::Truncated));
    }

    #[test]
    fn messages_with_ed25519_signatures_roundtrip() {
        let mut m = sample_submit();
        m.tuple.sig = ed_sig(1);
        m.data_sig = ed_sig(2);
        assert_eq!(SubmitMsg::decode(&m.encode()), Ok(m));
        let c = CommitMsg {
            version: sample_version(3),
            commit_sig: ed_sig(3),
            proof_sig: ed_sig(4),
        };
        assert_eq!(CommitMsg::decode(&c.encode()), Ok(c));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // A Vec claiming u32::MAX elements must not allocate.
        let bytes = u32::MAX.to_be_bytes();
        assert!(matches!(
            Vec::<Signature>::decode(&bytes),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn submit_size_is_independent_of_n() {
        // SUBMIT carries no vectors: its size depends only on the value.
        let m = sample_submit();
        assert!(
            m.encoded_len() < 200,
            "submit too large: {}",
            m.encoded_len()
        );
    }

    #[test]
    fn reply_size_grows_linearly_in_n() {
        // The O(n) claim: version vectors and proof lists are the only
        // n-dependent parts.
        let sizes: Vec<usize> = [2usize, 4, 8, 16]
            .iter()
            .map(|&n| {
                let mut r = sample_reply(n);
                r.proofs = vec![Some(sig(1)); n];
                r.encoded_len()
            })
            .collect();
        let delta1 = sizes[1] - sizes[0];
        let delta2 = sizes[2] - sizes[1];
        let delta3 = sizes[3] - sizes[2];
        // Doubling n roughly doubles the increment — linear growth.
        assert_eq!(delta2, 2 * delta1, "sizes {sizes:?}");
        assert_eq!(delta3, 2 * delta2, "sizes {sizes:?}");
    }

    #[test]
    fn mismatched_version_arity_rejected() {
        let mut bytes = Vec::new();
        TimestampVec::zeros(2).encode_into(&mut bytes);
        DigestVec::bottoms(3).encode_into(&mut bytes);
        assert!(Version::decode(&bytes).is_err());
    }
}

#[cfg(test)]
mod encoded_len_tests {
    use super::*;
    use faust_crypto::sha256;

    #[test]
    fn arithmetic_encoded_len_matches_encoding() {
        // The overridden (allocation-free) encoded_len implementations
        // must agree with the actual encoding byte for byte.
        for n in [0usize, 1, 3, 8] {
            let mut v = Version::initial(n);
            for k in 0..n {
                if k % 2 == 0 {
                    v.v_mut().set(ClientId::new(k as u32), k as u64 + 1);
                    v.m_mut().set(ClientId::new(k as u32), sha256(&[k as u8]));
                }
            }
            assert_eq!(v.v().encoded_len(), v.v().encode().len(), "n={n}");
            assert_eq!(v.m().encoded_len(), v.m().encode().len(), "n={n}");
            assert_eq!(v.encoded_len(), v.encode().len(), "n={n}");
        }
    }
}
