//! [`PersistentServer`]: the crash-safe [`Server`] implementation, and
//! [`PersistentBackend`]: its [`ServerBackend`] factory.
//!
//! The write path is strict write-ahead logging: every inbound message is
//! appended (and, under [`Durability::Always`], fsynced) **before** it is
//! applied and its reply released — so every state the server ever
//! acknowledged is reconstructible. Snapshots periodically absorb the
//! log: state is written atomically, then the log is rotated to a fresh
//! file whose `base_seq` continues the global numbering.
//!
//! If an append ever fails, the server *wedges*: it stops acknowledging
//! (returns no replies) rather than acknowledging unlogged state. To
//! clients a wedged server is a crashed server — a liveness problem the
//! fail-aware layer already models — never a safety problem.

use crate::codec::LogRecord;
use crate::log::Wal;
use crate::snapshot::{read_snapshot, write_snapshot, Snapshot};
use crate::StoreError;
use faust_types::{ClientId, CommitMsg, ReplyMsg, SubmitMsg};
use faust_ustor::{Server, ServerBackend, UstorServer};
use std::path::{Path, PathBuf};

/// When appended records become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// `fsync` after every append, before the reply is released. A
    /// power-cut after an acknowledgement can no longer lose the record.
    #[default]
    Always,
    /// Never `fsync`; rely on the OS page cache. A *process* crash loses
    /// nothing (the data is in kernel buffers), a machine crash may lose
    /// the tail. Benchmark and test mode.
    Never,
}

/// Configuration of a persistent store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Fsync policy for appends, snapshots, and rotations.
    pub durability: Durability,
    /// Write a snapshot and rotate the log every this many records;
    /// `0` disables automatic snapshots (the log grows unboundedly and
    /// [`PersistentServer::snapshot`] must be called by hand).
    pub snapshot_every: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            durability: Durability::Always,
            snapshot_every: 1024,
        }
    }
}

impl StoreConfig {
    fn sync(&self) -> bool {
        self.durability == Durability::Always
    }
}

/// A [`Server`] whose state survives crashes: an in-memory
/// [`UstorServer`] shadowed by the write-ahead log of [`crate::log`] and
/// the snapshots of [`crate::snapshot`].
///
/// See the crate docs for the trust story: durability here protects an
/// *honest* server from its own crashes; it does not make the server
/// trusted, and a server that tampers with its own log recovers into a
/// rollback that clients detect.
#[derive(Debug)]
pub struct PersistentServer {
    dir: PathBuf,
    config: StoreConfig,
    inner: UstorServer,
    wal: Wal,
    /// First append error, if any; once set the server is wedged and
    /// acknowledges nothing further.
    wedged: Option<StoreError>,
}

impl PersistentServer {
    /// Opens the store in `dir`, creating fresh state if the directory
    /// holds none, recovering otherwise.
    ///
    /// # Errors
    ///
    /// Structured [`StoreError`]s for recovery anomalies (see
    /// [`PersistentServer::recover`]) or file-system errors.
    pub fn open(dir: &Path, n: usize, config: StoreConfig) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        let has_wal = dir.join(crate::log::WAL_FILE).exists();
        let has_snapshot = dir.join(crate::snapshot::SNAPSHOT_FILE).exists();
        if has_wal || has_snapshot {
            return Self::recover(dir, n, config);
        }
        let wal = Wal::create(dir, n, 0, config.sync())?;
        Ok(PersistentServer {
            dir: dir.to_path_buf(),
            config,
            inner: UstorServer::new(n),
            wal,
            wedged: None,
        })
    }

    /// Rebuilds a server from the durable state in `dir`: loads the
    /// snapshot (if any), then replays the log strictly.
    ///
    /// Recovery invariants (all violations are structured errors, never
    /// panics, never a silently-absorbed prefix):
    ///
    /// * snapshot and log must both parse, checksum, and agree on the
    ///   client count (and with `n`);
    /// * log records must be consecutively numbered from the header's
    ///   `base_seq` with no duplicates, gaps, or torn tail;
    /// * records the snapshot already covers are still verified, just
    ///   not replayed (a crash between snapshot and log rotation leaves
    ///   such records behind — the one benign overlap);
    /// * the log may not start after the snapshot's coverage ends
    ///   ([`StoreError::SnapshotAheadOfLog`]) and may not be missing
    ///   entirely when a snapshot exists ([`StoreError::MissingWal`]).
    ///
    /// The rebuilt in-memory state is **bit-identical** to the pre-crash
    /// server's (asserted in `tests/recovery.rs`), so a restarted server
    /// resumes mid-protocol invisibly to clients.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingState`] if `dir` holds no state at all;
    /// otherwise the anomaly that broke recovery.
    pub fn recover(dir: &Path, n: usize, config: StoreConfig) -> Result<Self, StoreError> {
        let snapshot = read_snapshot(dir)?;
        let has_wal = dir.join(crate::log::WAL_FILE).exists();
        if !has_wal {
            return match snapshot {
                Some(_) => Err(StoreError::MissingWal),
                None => Err(StoreError::MissingState),
            };
        }
        let (wal, contents) = Wal::open(dir)?;
        if wal.n() != n {
            return Err(StoreError::ClientCountMismatch {
                expected: n,
                found: wal.n(),
            });
        }
        let (mut inner, mut applied_seq) = match snapshot {
            Some(snap) => {
                if snap.n != n {
                    return Err(StoreError::ClientCountMismatch {
                        expected: n,
                        found: snap.n,
                    });
                }
                if contents.header.base_seq > snap.next_seq {
                    return Err(StoreError::SnapshotAheadOfLog {
                        snapshot_next: snap.next_seq,
                        base_seq: contents.header.base_seq,
                    });
                }
                // The converse hole: a log whose END falls short of the
                // snapshot's coverage. The snapshot could serve the
                // state, but the append counter would rewind below
                // `snap.next_seq` and records logged at those reused
                // sequence numbers would be skipped — silently — by the
                // next recovery.
                if contents.next_seq() < snap.next_seq {
                    return Err(StoreError::LogEndsBeforeSnapshot {
                        snapshot_next: snap.next_seq,
                        log_next: contents.next_seq(),
                    });
                }
                (UstorServer::from_state(snap.state), snap.next_seq)
            }
            None => (UstorServer::new(n), 0),
        };
        for scanned in contents.records {
            // Records below `applied_seq` were verified by the scan but
            // are already reflected in the snapshot.
            if scanned.seq >= applied_seq {
                scanned.record.replay(&mut inner);
                applied_seq = scanned.seq + 1;
            }
        }
        Ok(PersistentServer {
            dir: dir.to_path_buf(),
            config,
            inner,
            wal,
            wedged: None,
        })
    }

    /// The recovered/active protocol state (diagnostics and tests).
    pub fn server(&self) -> &UstorServer {
        &self.inner
    }

    /// Sequence number the next logged record will carry — equals the
    /// total number of messages ever acknowledged by this store.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Records in the current log file (since the last snapshot).
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// The first append/snapshot error, if the server has wedged.
    pub fn wedge_error(&self) -> Option<&StoreError> {
        self.wedged.as_ref()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a snapshot of the current state and rotates the log.
    ///
    /// Crash-ordering: the snapshot is atomically renamed into place
    /// (durably, under [`Durability::Always`]) *before* the log is
    /// rotated, so a crash between the two leaves a snapshot plus a log
    /// whose early records it already covers — which recovery skips.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors; on error the old log keeps
    /// growing and the server stays consistent.
    pub fn snapshot(&mut self) -> Result<(), StoreError> {
        let next_seq = self.wal.next_seq();
        write_snapshot(
            &self.dir,
            &Snapshot {
                n: self.inner.num_clients(),
                next_seq,
                state: self.inner.export_state(),
            },
            self.config.sync(),
        )?;
        self.wal = Wal::create(
            &self.dir,
            self.inner.num_clients(),
            next_seq,
            self.config.sync(),
        )?;
        Ok(())
    }

    /// Appends `record` ahead of applying it; on failure wedges the
    /// server. Returns whether the record was made durable (and the
    /// message may therefore be acknowledged).
    fn log(&mut self, record: &LogRecord) -> bool {
        if self.wedged.is_some() {
            return false;
        }
        match self.wal.append(record, self.config.sync()) {
            Ok(_) => true,
            Err(e) => {
                self.wedged = Some(e);
                false
            }
        }
    }

    /// Snapshot if the rotation threshold is reached; a failed snapshot
    /// wedges the server (its log can no longer be compacted, but more
    /// importantly the failure is surfaced instead of swallowed).
    fn maybe_snapshot(&mut self) {
        if self.config.snapshot_every == 0 || self.wal.records() < self.config.snapshot_every {
            return;
        }
        if let Err(e) = self.snapshot() {
            self.wedged = Some(e);
        }
    }
}

impl PersistentServer {
    /// The shared write path: log the record (write-ahead), then apply
    /// the very record that was logged — no copies, no divergence
    /// between what is durable and what executed.
    fn log_then_apply(&mut self, record: LogRecord) -> Vec<(ClientId, ReplyMsg)> {
        if !self.log(&record) {
            return Vec::new(); // wedged: crash-silence, never unlogged acks
        }
        let replies = record.apply(&mut self.inner);
        self.maybe_snapshot();
        replies
    }
}

impl Server for PersistentServer {
    fn on_submit(&mut self, client: ClientId, msg: SubmitMsg) -> Vec<(ClientId, ReplyMsg)> {
        self.log_then_apply(LogRecord::Submit { from: client, msg })
    }

    fn on_commit(&mut self, client: ClientId, msg: CommitMsg) -> Vec<(ClientId, ReplyMsg)> {
        self.log_then_apply(LogRecord::Commit { from: client, msg })
    }
}

/// The persistent [`ServerBackend`]: building it *recovers* whatever the
/// directory holds (or initializes fresh state), so handing the same
/// backend to [`CrashRestartServer`](faust_ustor::CrashRestartServer) —
/// or calling it again after a real process restart — resumes the
/// schedule where the log left it.
#[derive(Debug, Clone)]
pub struct PersistentBackend {
    /// Store directory.
    pub dir: PathBuf,
    /// Store configuration.
    pub config: StoreConfig,
}

impl PersistentBackend {
    /// A backend rooted at `dir` with `config`.
    pub fn new(dir: impl Into<PathBuf>, config: StoreConfig) -> Self {
        PersistentBackend {
            dir: dir.into(),
            config,
        }
    }
}

impl ServerBackend for PersistentBackend {
    fn build(&self, n: usize) -> std::io::Result<Box<dyn Server + Send>> {
        let server = PersistentServer::open(&self.dir, n, self.config.clone())?;
        Ok(Box::new(server))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_op, scratch_dir};
    use faust_types::Value;
    use faust_ustor::UstorClient;

    fn no_sync() -> StoreConfig {
        StoreConfig {
            durability: Durability::Never,
            ..StoreConfig::default()
        }
    }

    fn clients(n: usize) -> Vec<UstorClient> {
        crate::testutil::clients(n, b"store-server-tests")
    }

    #[test]
    fn logs_before_acknowledging_and_counts_seqs() {
        let dir = scratch_dir("srv-seq");
        let mut server = PersistentServer::open(&dir, 2, no_sync()).unwrap();
        let mut cs = clients(2);
        let submit = cs[0].begin_write(Value::from("v")).unwrap();
        run_op(&mut server, &mut cs[0], submit);
        // One submit + one commit logged.
        assert_eq!(server.next_seq(), 2);
        assert_eq!(server.wal_records(), 2);
        assert!(server.wedge_error().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_snapshot_rotates_the_log() {
        let dir = scratch_dir("srv-rotate");
        let config = StoreConfig {
            durability: Durability::Never,
            snapshot_every: 4,
        };
        let mut server = PersistentServer::open(&dir, 2, config.clone()).unwrap();
        let mut cs = clients(2);
        for round in 0..4u64 {
            let submit = cs[0].begin_write(Value::unique(0, round)).unwrap();
            run_op(&mut server, &mut cs[0], submit);
        }
        // 8 records total; rotation happened at least once.
        assert_eq!(server.next_seq(), 8);
        assert!(server.wal_records() < 8, "log was compacted");
        assert!(dir.join(crate::snapshot::SNAPSHOT_FILE).exists());
        // And the rotated store still recovers to the same state.
        let reference = server.server().clone();
        drop(server);
        let recovered = PersistentServer::recover(&dir, 2, config).unwrap();
        assert_eq!(*recovered.server(), reference);
        assert_eq!(recovered.next_seq(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_on_empty_dir_initializes_and_recover_demands_state() {
        let dir = scratch_dir("srv-fresh");
        assert!(matches!(
            PersistentServer::recover(&dir, 2, no_sync()).unwrap_err(),
            StoreError::MissingState
        ));
        let server = PersistentServer::open(&dir, 2, no_sync()).unwrap();
        assert_eq!(server.next_seq(), 0);
        drop(server);
        // Now open() recovers instead of reinitializing.
        let server = PersistentServer::open(&dir, 2, no_sync()).unwrap();
        assert_eq!(server.next_seq(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn client_count_mismatch_is_rejected() {
        let dir = scratch_dir("srv-n");
        drop(PersistentServer::open(&dir, 2, no_sync()).unwrap());
        assert!(matches!(
            PersistentServer::recover(&dir, 3, no_sync()).unwrap_err(),
            StoreError::ClientCountMismatch {
                expected: 3,
                found: 2
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backend_builds_and_rebuilds() {
        let dir = scratch_dir("srv-backend");
        let backend = PersistentBackend::new(&dir, no_sync());
        let mut server = backend.build(2).unwrap();
        let mut cs = clients(2);
        let submit = cs[0].begin_write(Value::from("durable")).unwrap();
        run_op(server.as_mut(), &mut cs[0], submit);
        drop(server);
        // Rebuild = recover: the read sees the pre-"crash" write.
        let mut server = backend.build(2).unwrap();
        let submit = cs[1].begin_read(ClientId::new(0)).unwrap();
        let (_, reply) = server.on_submit(ClientId::new(1), submit).pop().unwrap();
        let (_, done) = cs[1].handle_reply(reply).expect("no violation");
        assert_eq!(done.read_value, Some(Some(Value::from("durable"))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
