//! Server-misbehaviour diagnoses.
//!
//! Every check a USTOR client performs on a REPLY message (Algorithm 1,
//! lines 35–52) has a corresponding [`Fault`] variant, so tests and
//! operators can see *which* check a Byzantine server tripped. Any fault
//! is proof that the server violated its specification: a correct server
//! never triggers one (failure-detection accuracy, Definition 5 property
//! 5).

use std::fmt;

/// Proof of server misbehaviour detected by a client.
///
/// The paper's client executes `output fail_i; halt` when a check fails;
/// this enum is the reason attached to that event. Line numbers refer to
/// Algorithm 1 in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Line 35: the COMMIT-signature on the reply's main version
    /// `(V^c, M^c)` does not verify against client `c`.
    BadCommitVersionSignature,
    /// Line 36, first conjunct: the reply's version is not `≽` the
    /// client's own version — the server tried to rewind or fork history.
    VersionRegression,
    /// Line 36, second conjunct: `V^c[i] ≠ V_i[i]` — the reply's version
    /// accounts for a different number of the client's own operations than
    /// the client has performed.
    OwnTimestampMismatch,
    /// Line 41: a pending operation's client has a non-`⊥` digest entry
    /// but the server presented no PROOF-signature for it.
    MissingProofSignature,
    /// Line 41: the presented PROOF-signature does not verify.
    BadProofSignature,
    /// Line 43, first disjunct: the pending list contains an operation by
    /// this client itself — impossible, since a client is sequential.
    OwnOperationPending,
    /// Line 43, second disjunct: a pending tuple's SUBMIT-signature does
    /// not verify against the expected timestamp (replayed or fabricated
    /// invocation).
    BadSubmitSignature,
    /// Line 49: the COMMIT-signature on the writer's version `(V^j, M^j)`
    /// returned with a read does not verify.
    BadWriterCommitSignature,
    /// Line 50: the DATA-signature on the returned value does not verify —
    /// the value or its timestamp was tampered with.
    BadDataSignature,
    /// Line 51, first conjunct: the writer's version is not `≼` the
    /// reply's main version.
    WriterVersionAhead,
    /// Line 51, second conjunct: the returned value's timestamp `t_j`
    /// differs from `V_i[j]` — the server served a value inconsistent
    /// with the view history it presented.
    DataTimestampMismatch,
    /// Line 52: `V^j[j] ∉ {t_j, t_j − 1}` — the writer's committed
    /// version does not match the returned timestamp.
    WriterSelfEntryMismatch,
    /// The reply is structurally invalid (wrong vector arity, out-of-range
    /// client index, missing read part). A correct server never sends
    /// such a message.
    MalformedReply(&'static str),
    /// A REPLY arrived while no operation was in flight. FIFO channels
    /// from a correct server cannot produce this.
    UnsolicitedReply,
}

impl Fault {
    /// The Algorithm 1 line whose check detected the fault, if any.
    pub fn algorithm_line(&self) -> Option<u32> {
        match self {
            Fault::BadCommitVersionSignature => Some(35),
            Fault::VersionRegression | Fault::OwnTimestampMismatch => Some(36),
            Fault::MissingProofSignature | Fault::BadProofSignature => Some(41),
            Fault::OwnOperationPending | Fault::BadSubmitSignature => Some(43),
            Fault::BadWriterCommitSignature => Some(49),
            Fault::BadDataSignature => Some(50),
            Fault::WriterVersionAhead | Fault::DataTimestampMismatch => Some(51),
            Fault::WriterSelfEntryMismatch => Some(52),
            Fault::MalformedReply(_) | Fault::UnsolicitedReply => None,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::BadCommitVersionSignature => {
                f.write_str("invalid commit signature on reply version")
            }
            Fault::VersionRegression => f.write_str("reply version regresses the client version"),
            Fault::OwnTimestampMismatch => {
                f.write_str("reply version disagrees on the client's own timestamp")
            }
            Fault::MissingProofSignature => {
                f.write_str("missing proof signature for a pending operation")
            }
            Fault::BadProofSignature => {
                f.write_str("invalid proof signature for a pending operation")
            }
            Fault::OwnOperationPending => {
                f.write_str("server lists the client's own operation as pending")
            }
            Fault::BadSubmitSignature => {
                f.write_str("invalid submit signature on a pending operation")
            }
            Fault::BadWriterCommitSignature => {
                f.write_str("invalid commit signature on the writer's version")
            }
            Fault::BadDataSignature => f.write_str("invalid data signature on the read value"),
            Fault::WriterVersionAhead => {
                f.write_str("writer's version is not below the reply version")
            }
            Fault::DataTimestampMismatch => {
                f.write_str("returned value timestamp disagrees with the view history")
            }
            Fault::WriterSelfEntryMismatch => {
                f.write_str("writer's committed version disagrees with the value timestamp")
            }
            Fault::MalformedReply(why) => write!(f, "malformed reply: {why}"),
            Fault::UnsolicitedReply => f.write_str("reply received with no operation in flight"),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_numbers_match_paper() {
        assert_eq!(Fault::BadCommitVersionSignature.algorithm_line(), Some(35));
        assert_eq!(Fault::VersionRegression.algorithm_line(), Some(36));
        assert_eq!(Fault::BadProofSignature.algorithm_line(), Some(41));
        assert_eq!(Fault::OwnOperationPending.algorithm_line(), Some(43));
        assert_eq!(Fault::BadWriterCommitSignature.algorithm_line(), Some(49));
        assert_eq!(Fault::BadDataSignature.algorithm_line(), Some(50));
        assert_eq!(Fault::DataTimestampMismatch.algorithm_line(), Some(51));
        assert_eq!(Fault::WriterSelfEntryMismatch.algorithm_line(), Some(52));
        assert_eq!(Fault::MalformedReply("x").algorithm_line(), None);
    }

    #[test]
    fn display_is_nonempty() {
        for fault in [
            Fault::BadCommitVersionSignature,
            Fault::VersionRegression,
            Fault::UnsolicitedReply,
            Fault::MalformedReply("arity"),
        ] {
            assert!(!fault.to_string().is_empty());
        }
    }
}
