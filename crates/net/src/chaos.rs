//! Chaos-testing support: abrupt, externally-triggered server death.
//!
//! The kill-and-restart tests in `tests/crash_recovery.rs` drain traffic
//! before stopping an incarnation — an orderly operator shutdown. Real
//! crashes are not orderly: the process dies *mid-conversation*, with
//! SUBMITs unanswered, replies half-flushed, and sockets severed under
//! the clients' feet. [`KillableTransport`] wraps any
//! [`ServerTransport`] so a test (or a chaos harness in CI) can inflict
//! exactly that from another thread via its [`KillSwitch`]:
//!
//! * once killed, every receive reports [`Incoming::Closed`] — from the
//!   serve loop's perspective the transport has torn down;
//! * every send after the kill is dropped on the floor — a dead process
//!   acknowledges nothing, so the engine's final courtesy flush (which a
//!   real crash would never run) stays invisible to clients;
//! * when the serve loop returns and the wrapper is dropped, the inner
//!   transport's sockets close and clients observe the disconnect.
//!
//! Blocking transports park in `recv` while the connection is quiet, so
//! the wrapper converts blocking receives into short deadline polls:
//! a kill takes effect within [`POLL_TICK`] even on an idle server.

use crate::{Incoming, ServerTransport};
use faust_types::{ClientId, UstorMsg};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a [`KillableTransport`] re-checks its switch while the
/// wrapped transport is idle.
pub const POLL_TICK: Duration = Duration::from_millis(25);

/// The remote trigger for a [`KillableTransport`]: cloneable, sendable,
/// one-way. Once flipped it stays flipped — a killed incarnation never
/// comes back; recovery is a *new* transport for a *new* incarnation.
#[derive(Debug, Clone, Default)]
pub struct KillSwitch(Arc<AtomicBool>);

impl KillSwitch {
    /// A fresh, un-flipped switch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Severs the associated transport: subsequent receives report
    /// `Closed`, subsequent sends vanish. Idempotent.
    pub fn kill(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`KillSwitch::kill`] has been called.
    pub fn is_killed(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A [`ServerTransport`] that can be severed from outside the serve
/// loop, simulating a server process dying mid-conversation. See the
/// module docs for the exact semantics.
pub struct KillableTransport<T> {
    inner: T,
    switch: KillSwitch,
}

impl<T: ServerTransport> KillableTransport<T> {
    /// Wraps `inner`, returning the transport and the switch that kills
    /// it.
    pub fn new(inner: T) -> (Self, KillSwitch) {
        let switch = KillSwitch::new();
        let killable = KillableTransport {
            inner,
            switch: switch.clone(),
        };
        (killable, switch)
    }
}

impl<T: ServerTransport> ServerTransport for KillableTransport<T> {
    fn recv(&mut self) -> Incoming {
        // Never park indefinitely: poll so the kill is honoured even
        // when every client is quiet.
        loop {
            if self.switch.is_killed() {
                return Incoming::Closed;
            }
            match self.inner.recv_deadline(Instant::now() + POLL_TICK) {
                Incoming::TimedOut => continue,
                other => return other,
            }
        }
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Incoming {
        loop {
            if self.switch.is_killed() {
                return Incoming::Closed;
            }
            let tick = (Instant::now() + POLL_TICK).min(deadline);
            match self.inner.recv_deadline(tick) {
                Incoming::TimedOut if Instant::now() < deadline => continue,
                other => return other,
            }
        }
    }

    fn try_recv(&mut self) -> Incoming {
        if self.switch.is_killed() {
            return Incoming::Closed;
        }
        self.inner.try_recv()
    }

    fn send(&mut self, to: ClientId, msg: UstorMsg) {
        if !self.switch.is_killed() {
            self.inner.send(to, msg);
        }
    }

    fn send_batch(&mut self, to: ClientId, msgs: Vec<UstorMsg>) {
        if !self.switch.is_killed() {
            self.inner.send_batch(to, msgs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueTransport;

    #[test]
    fn kill_closes_receives_and_swallows_sends() {
        let mut q = QueueTransport::new();
        q.push_incoming(ClientId::new(0), dummy_msg());
        let (mut t, switch) = KillableTransport::new(q);

        // Alive: traffic flows both ways.
        assert!(matches!(t.try_recv(), Incoming::Msg(_, _)));
        t.send(ClientId::new(0), dummy_msg());

        switch.kill();
        assert!(switch.is_killed());
        assert!(matches!(t.try_recv(), Incoming::Closed));
        assert!(matches!(t.recv(), Incoming::Closed));
        // Sends after death vanish: only the pre-kill reply is queued.
        t.send(ClientId::new(0), dummy_msg());
        t.send_batch(ClientId::new(0), vec![dummy_msg(), dummy_msg()]);
        assert_eq!(t.inner.drain_outgoing().count(), 1);
    }

    fn dummy_msg() -> UstorMsg {
        UstorMsg::Commit(faust_types::CommitMsg {
            version: faust_types::Version::initial(1),
            commit_sig: faust_crypto::Signature::garbage(),
            proof_sig: faust_crypto::Signature::garbage(),
        })
    }
}
