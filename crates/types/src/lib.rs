//! Protocol data model for the FAUST / USTOR reproduction.
//!
//! This crate defines every value that crosses a protocol boundary:
//!
//! * [`ids`] — client indices and operation timestamps. In the paper's SWMR
//!   register model, register `X_i` is owned by client `C_i`, so registers
//!   are also identified by [`ids::ClientId`].
//! * [`value`] — register values (opaque byte strings; the paper's domain
//!   `X ∪ {⊥}`).
//! * [`version`] — timestamp vectors, digest vectors, and *versions*
//!   `(V, M)` with the partial order `≼` of Definition 7.
//! * [`op`] — operation kinds, invocation tuples `(i, oc, j, σ)`, and the
//!   canonical byte strings that get signed (SUBMIT / DATA / COMMIT /
//!   PROOF).
//! * [`wire`] — the SUBMIT / REPLY / COMMIT messages of Algorithms 1–2 with
//!   an exact, hand-rolled binary encoding. Byte-accurate sizes feed the
//!   paper's `O(n)`-overhead experiment (E6 in DESIGN.md).
//! * [`frame`] — length-prefixed stream framing over the wire encoding,
//!   with an incremental decoder; this is what the TCP transport in
//!   `faust-net` puts on the socket.
//! * [`history`] — invocation/response records of executions, consumed by
//!   the `faust-consistency` checkers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod history;
pub mod ids;
pub mod op;
pub mod value;
pub mod version;
pub mod wire;

pub use frame::{FrameDecoder, FrameError, MAX_FRAME_LEN};
pub use history::{History, OpId, OpOutcome, OpRecord};
pub use ids::{ClientId, Timestamp};
pub use op::{InvocationTuple, OpKind};
pub use value::Value;
pub use version::{DigestVec, SignedVersion, TimestampVec, Version, VersionCmp};
pub use wire::{CommitMsg, ReadReply, ReplyMsg, SubmitMsg, UstorMsg, Wire, WireError};
