//! Snapshots: the log-compaction half of the backend.
//!
//! A snapshot is one file (`snapshot.bin`) holding the complete
//! [`ServerState`] at a log position:
//!
//! ```text
//!   "FAUSTSNP" | version: u32 | payload_len: u32 | sha256(payload): 32 B | payload
//!   payload:     n: u32 | next_seq: u64 | ServerState encoding
//! ```
//!
//! `next_seq` is the first log sequence number **not** reflected in the
//! state — recovery loads the snapshot and replays records from
//! `next_seq` on. Snapshots are written to a temp file, synced, and
//! renamed into place, so at every instant the directory holds exactly
//! one complete, checksummed snapshot (or none); a crash mid-write
//! leaves the previous snapshot untouched. The log is only rotated
//! *after* the rename, and recovery tolerates the in-between crash by
//! skipping already-covered records (verified but not replayed).

use crate::codec::{decode_state, encode_state};
use crate::log::sync_dir;
use crate::StoreError;
use faust_crypto::sha256::sha256;
use faust_types::Wire;
use faust_ustor::ServerState;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Magic string opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"FAUSTSNP";
/// Snapshot format version for single-engine stores.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Snapshot format version for shard replicas: the payload additionally
/// records the *global* (cross-shard) coverage position.
pub const SNAPSHOT_VERSION_SHARDED: u32 = 2;
/// File name of the snapshot inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// A decoded snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Client count the state is for.
    pub n: usize,
    /// First log sequence number not reflected in `state` — *local* to
    /// this store's own WAL.
    pub next_seq: u64,
    /// The full server state at that position.
    pub state: ServerState,
    /// For a shard replica: the first **global** sequence number not
    /// reflected in `state`. A shard's state covers the whole
    /// cross-shard history (replicas apply every message), so its local
    /// `next_seq` cannot express how far the state reaches; this does.
    /// `None` for single-engine stores (format v1 on disk, v2 when
    /// `Some`).
    pub global_next_seq: Option<u64>,
}

/// Atomically writes `snapshot` as `dir/snapshot.bin`.
///
/// With `sync`, the payload is fsynced before the rename and the
/// directory after it, so the rename is durable; without, both syncs are
/// skipped (benchmark mode).
///
/// # Errors
///
/// Propagates file-system errors; a failed write never disturbs an
/// existing snapshot.
pub fn write_snapshot(dir: &Path, snapshot: &Snapshot, sync: bool) -> Result<(), StoreError> {
    let mut payload = Vec::new();
    (snapshot.n as u32).encode_into(&mut payload);
    snapshot.next_seq.encode_into(&mut payload);
    if let Some(global) = snapshot.global_next_seq {
        global.encode_into(&mut payload);
    }
    encode_state(&snapshot.state, &mut payload);

    let version = if snapshot.global_next_seq.is_some() {
        SNAPSHOT_VERSION_SHARDED
    } else {
        SNAPSHOT_VERSION
    };
    let mut bytes = Vec::with_capacity(8 + 4 + 4 + 32 + payload.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    version.encode_into(&mut bytes);
    (payload.len() as u32).encode_into(&mut bytes);
    bytes.extend_from_slice(sha256(&payload).as_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = dir.join("snapshot.tmp");
    let path = dir.join(SNAPSHOT_FILE);
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)?;
    file.write_all(&bytes)?;
    if sync {
        file.sync_data()?;
    }
    std::fs::rename(&tmp, &path)?;
    if sync {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Reads and fully validates `dir/snapshot.bin`; `Ok(None)` if no
/// snapshot exists.
///
/// # Errors
///
/// Structured [`StoreError`]s for a bad magic, unknown version,
/// truncated header or payload, checksum mismatch, or undecodable state
/// — a corrupt snapshot is never partially loaded.
pub fn read_snapshot(dir: &Path) -> Result<Option<Snapshot>, StoreError> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f.read_to_end(&mut bytes)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    const HEADER: usize = 8 + 4 + 4 + 32;
    if bytes.len() < HEADER {
        return Err(StoreError::TruncatedHeader { file: "snapshot" });
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StoreError::BadMagic { file: "snapshot" });
    }
    let mut rest = &bytes[8..HEADER];
    let version = u32::decode_from(&mut rest).expect("sized above");
    if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_SHARDED {
        return Err(StoreError::UnsupportedVersion {
            file: "snapshot",
            version,
        });
    }
    let payload_len = u32::decode_from(&mut rest).expect("sized above") as usize;
    let digest = &bytes[16..HEADER];
    let Some(payload) = bytes.get(HEADER..HEADER + payload_len) else {
        // File ends inside the declared payload.
        return Err(StoreError::SnapshotCorrupt(
            faust_types::WireError::Truncated,
        ));
    };
    if sha256(payload).as_bytes() != digest {
        return Err(StoreError::SnapshotChecksum);
    }
    let mut input = payload;
    let n = u32::decode_from(&mut input).map_err(StoreError::SnapshotCorrupt)? as usize;
    let next_seq = u64::decode_from(&mut input).map_err(StoreError::SnapshotCorrupt)?;
    let global_next_seq = if version == SNAPSHOT_VERSION_SHARDED {
        Some(u64::decode_from(&mut input).map_err(StoreError::SnapshotCorrupt)?)
    } else {
        None
    };
    let state = decode_state(&mut input).map_err(StoreError::SnapshotCorrupt)?;
    if !input.is_empty() {
        return Err(StoreError::SnapshotCorrupt(
            faust_types::WireError::TrailingBytes(input.len()),
        ));
    }
    if state.mem.len() != n {
        return Err(StoreError::ClientCountMismatch {
            expected: n,
            found: state.mem.len(),
        });
    }
    Ok(Some(Snapshot {
        n,
        next_seq,
        state,
        global_next_seq,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_dir;
    use faust_ustor::UstorServer;

    fn snapshot(n: usize, next_seq: u64) -> Snapshot {
        Snapshot {
            n,
            next_seq,
            state: UstorServer::new(n).export_state(),
            global_next_seq: None,
        }
    }

    #[test]
    fn roundtrip_and_absence() {
        let dir = scratch_dir("snap-roundtrip");
        assert_eq!(read_snapshot(&dir).unwrap(), None);
        let snap = snapshot(3, 42);
        write_snapshot(&dir, &snap, false).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), Some(snap));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_snapshot_roundtrips_the_global_position() {
        let dir = scratch_dir("snap-global");
        let snap = Snapshot {
            global_next_seq: Some(977),
            ..snapshot(2, 14)
        };
        write_snapshot(&dir, &snap, false).unwrap();
        let read = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(read, snap);
        assert_eq!(read.global_next_seq, Some(977));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_replaces_atomically() {
        let dir = scratch_dir("snap-overwrite");
        write_snapshot(&dir, &snapshot(2, 1), true).unwrap();
        write_snapshot(&dir, &snapshot(2, 9), true).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap().next_seq, 9);
        // No temp file left behind.
        assert!(!dir.join("snapshot.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_structured_not_a_panic() {
        let dir = scratch_dir("snap-corrupt");
        write_snapshot(&dir, &snapshot(2, 5), false).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let good = std::fs::read(&path).unwrap();

        // Flip a payload byte: checksum mismatch.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&dir).unwrap_err(),
            StoreError::SnapshotChecksum
        ));

        // Truncate inside the payload.
        std::fs::write(&path, &good[..good.len() - 4]).unwrap();
        assert!(matches!(
            read_snapshot(&dir).unwrap_err(),
            StoreError::SnapshotCorrupt(_)
        ));

        // Bad magic.
        let mut bad = good.clone();
        bad[3] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&dir).unwrap_err(),
            StoreError::BadMagic { file: "snapshot" }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
