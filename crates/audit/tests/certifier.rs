//! Certifier tests: honest sessions certify, and every tamper class —
//! removed records, altered values, forged commits, dishonest claims,
//! misreported client views, forked schedules — is reported with the
//! exact first divergent version and, for forks, the signed evidence
//! pair.

use faust_audit::{audit, export_records, AuditVerdict, Divergence, SessionHistory, SigKind};
use faust_crypto::sig::KeySet;
use faust_crypto::SigScheme;
use faust_store::testutil::clients;
use faust_store::LogRecord;
use faust_types::{ClientId, History, OpKind, Value};
use faust_ustor::{Server, UstorClient, UstorServer};

fn registry(n: usize, seed: &[u8]) -> faust_crypto::VerifierRegistry {
    KeySet::generate(n, seed).registry()
}

/// One fully-driven operation: submit + commit, recorded like a WAL
/// would, with the client-side observation appended to `history`.
fn drive_op(
    server: &mut UstorServer,
    client: &mut UstorClient,
    records: &mut Vec<(u64, LogRecord)>,
    history: &mut History,
    now: &mut u64,
    op: Op,
) {
    let id = client.id();
    let (submit, op_id) = match op {
        Op::Write(value) => {
            let op_id = history.begin_write(id, value.clone(), *now);
            (client.begin_write(value).unwrap(), op_id)
        }
        Op::Read(target) => {
            let op_id = history.begin_read(id, target, *now);
            (client.begin_read(target).unwrap(), op_id)
        }
    };
    *now += 1;
    records.push((
        records.len() as u64,
        LogRecord::Submit {
            from: id,
            msg: submit.clone(),
        },
    ));
    let replies = server.on_submit(id, submit);
    let (_, reply) = replies.into_iter().find(|(to, _)| *to == id).unwrap();
    let (commit, completion) = client.handle_reply(reply).unwrap();
    let commit = commit.expect("immediate mode");
    match completion.kind {
        OpKind::Write => history.complete_write(op_id, *now, Some(completion.timestamp)),
        OpKind::Read => history.complete_read(
            op_id,
            *now,
            completion.read_value.clone().unwrap_or(None),
            Some(completion.timestamp),
        ),
    }
    *now += 1;
    records.push((
        records.len() as u64,
        LogRecord::Commit {
            from: id,
            msg: commit.clone(),
        },
    ));
    server.on_commit(id, commit);
}

enum Op {
    Write(Value),
    Read(ClientId),
}

/// A three-client honest session: interleaved writes and reads.
fn honest_session(seed: &[u8], rounds: u64) -> SessionHistory {
    let n = 3;
    let mut server = UstorServer::new(n);
    let mut cs = clients(n, seed);
    let mut records = Vec::new();
    let mut history = History::new();
    let mut now = 0u64;
    for round in 0..rounds {
        for i in 0..n {
            let op = if i % 2 == 0 {
                Op::Write(Value::unique(i as u32, round))
            } else {
                Op::Read(ClientId::new(((i + 1) % n) as u32))
            };
            let (left, right) = cs.split_at_mut(i + 1);
            let client = &mut left[i];
            let _ = right;
            drive_op(
                &mut server,
                client,
                &mut records,
                &mut history,
                &mut now,
                op,
            );
        }
    }
    export_records(n, SigScheme::Hmac, None, records, Some(history))
}

/// Re-derives the container after structural tampering: re-encode and
/// re-decode so every checksum is consistent — the container passes all
/// integrity checks and only the *auditor* can convict.
fn relaunder(session: &SessionHistory) -> SessionHistory {
    SessionHistory::decode(&session.encode()).expect("tampered container re-checksummed cleanly")
}

#[test]
fn honest_run_certifies() {
    let seed = b"certifier-honest";
    let session = honest_session(seed, 4);
    let report = audit(&session, &registry(3, seed)).unwrap();
    match report.verdict {
        AuditVerdict::Certified {
            fork_linearizable,
            ops,
            clients,
        } => {
            assert!(fork_linearizable, "honest history must certify");
            assert_eq!(ops, 12);
            assert_eq!(clients, 3);
        }
        other => panic!("expected certification, got {other:?}"),
    }
    assert_eq!(report.records_replayed, 24);
    assert!(report.signatures_checked >= 24 * 2);
}

#[test]
fn honest_run_without_client_history_certifies() {
    let seed = b"certifier-headless";
    let mut session = honest_session(seed, 3);
    session.client_history = None;
    let session = relaunder(&session);
    let report = audit(&session, &registry(3, seed)).unwrap();
    assert!(report.verdict.is_certified());
}

#[test]
fn wrong_keys_are_rejected_at_the_first_record() {
    let session = honest_session(b"certifier-keys-a", 2);
    let report = audit(&session, &registry(3, b"certifier-keys-b")).unwrap();
    match report.verdict {
        AuditVerdict::Diverged {
            first_bad_version,
            divergence: Divergence::BadSignature { what, .. },
        } => {
            assert_eq!(first_bad_version, 0);
            assert_eq!(what, SigKind::Submit);
        }
        other => panic!("expected BadSignature at record 0, got {other:?}"),
    }
}

#[test]
fn removed_middle_record_is_a_schedule_gap() {
    let seed = b"certifier-remove";
    let mut session = honest_session(seed, 3);
    // Remove client 0's SECOND submit (a middle record) and renumber so
    // the container stays internally consistent.
    let victim = session
        .records
        .iter()
        .position(|(_, r)| {
            matches!(r, LogRecord::Submit { from, msg } if from.index() == 0 && msg.timestamp == 2)
        })
        .expect("client 0 submits timestamp 2");
    session.records.remove(victim);
    for (i, (seq, _)) in session.records.iter_mut().enumerate() {
        *seq = i as u64;
    }
    let session = relaunder(&session);
    let report = audit(&session, &registry(3, seed)).unwrap();
    match report.verdict {
        AuditVerdict::Diverged {
            first_bad_version,
            divergence,
        } => {
            // The commit of the removed operation is now unjustified —
            // it references an operation the log no longer contains —
            // and it sits exactly where the removed submit was.
            assert_eq!(first_bad_version, victim as u64);
            match divergence {
                Divergence::UnjustifiedCommit {
                    committer,
                    victim: gapped,
                    claimed,
                    submitted,
                } => {
                    assert_eq!(committer.index(), 0);
                    assert_eq!(gapped.index(), 0);
                    assert_eq!(claimed, 2);
                    assert_eq!(submitted, 1);
                }
                Divergence::ScheduleGap {
                    client, expected, ..
                } => {
                    assert_eq!(client.index(), 0);
                    assert_eq!(expected, 2);
                }
                other => panic!("expected UnjustifiedCommit or ScheduleGap, got {other:?}"),
            }
        }
        other => panic!("expected divergence, got {other:?}"),
    }
}

#[test]
fn tampered_write_value_breaks_the_data_signature() {
    let seed = b"certifier-value";
    let mut session = honest_session(seed, 3);
    let victim = session
        .records
        .iter()
        .position(|(_, r)| {
            matches!(r, LogRecord::Submit { from, msg } if from.index() == 2 && msg.value.is_some())
        })
        .expect("client 2 writes");
    if let (_, LogRecord::Submit { msg, .. }) = &mut session.records[victim] {
        msg.value = Some(Value::from("doctored"));
    }
    let session = relaunder(&session);
    let report = audit(&session, &registry(3, seed)).unwrap();
    match report.verdict {
        AuditVerdict::Diverged {
            first_bad_version,
            divergence: Divergence::BadSignature { client, what },
        } => {
            assert_eq!(first_bad_version, victim as u64);
            assert_eq!(client.index(), 2);
            assert_eq!(what, SigKind::Data);
        }
        other => panic!("expected DATA BadSignature at {victim}, got {other:?}"),
    }
}

#[test]
fn forged_commit_version_breaks_the_commit_signature() {
    let seed = b"certifier-forge";
    let mut session = honest_session(seed, 3);
    let victim = session
        .records
        .iter()
        .position(|(_, r)| matches!(r, LogRecord::Commit { .. }))
        .expect("some commit");
    if let (_, LogRecord::Commit { msg, .. }) = &mut session.records[victim] {
        let bumped = msg.version.v().get(ClientId::new(0)) + 1;
        msg.version.v_mut().set(ClientId::new(0), bumped);
    }
    let session = relaunder(&session);
    let report = audit(&session, &registry(3, seed)).unwrap();
    match report.verdict {
        AuditVerdict::Diverged {
            first_bad_version,
            divergence: Divergence::BadSignature { what, .. },
        } => {
            assert_eq!(first_bad_version, victim as u64);
            assert_eq!(what, SigKind::Commit);
        }
        other => panic!("expected COMMIT BadSignature, got {other:?}"),
    }
}

#[test]
fn dishonest_claimed_chain_is_a_chain_mismatch() {
    let seed = b"certifier-claim";
    let mut session = honest_session(seed, 2);
    session.claimed_proofs[1] = None;
    let end = session.records.len() as u64;
    let session = relaunder(&session);
    let report = audit(&session, &registry(3, seed)).unwrap();
    match report.verdict {
        AuditVerdict::Diverged {
            first_bad_version,
            divergence: Divergence::ChainMismatch { client },
        } => {
            assert_eq!(first_bad_version, end);
            assert_eq!(client.index(), 1);
        }
        other => panic!("expected ChainMismatch, got {other:?}"),
    }
}

#[test]
fn forked_schedules_yield_signed_fork_evidence() {
    // A forking server runs two disjoint "universes": client 0 only ever
    // talks to copy A, client 1 to copy B. Every message is honestly
    // signed; only the *global* commit chain betrays the split.
    let n = 2;
    let seed = b"certifier-fork";
    let mut server_a = UstorServer::new(n);
    let mut server_b = UstorServer::new(n);
    let mut cs = clients(n, seed);
    let mut records = Vec::new();
    let mut history = History::new();
    let mut now = 0u64;
    let (c0, rest) = cs.split_at_mut(1);
    let c1 = &mut rest[0];
    drive_op(
        &mut server_a,
        &mut c0[0],
        &mut records,
        &mut history,
        &mut now,
        Op::Write(Value::from("universe-a")),
    );
    let fork_starts_at = records.len() as u64;
    drive_op(
        &mut server_b,
        c1,
        &mut records,
        &mut history,
        &mut now,
        Op::Write(Value::from("universe-b")),
    );
    for (i, (seq, _)) in records.iter_mut().enumerate() {
        *seq = i as u64;
    }
    let session = export_records(n, SigScheme::Hmac, None, records, Some(history));
    let session = relaunder(&session);
    let report = audit(&session, &registry(n, seed)).unwrap();
    match &report.verdict {
        AuditVerdict::Diverged {
            first_bad_version,
            divergence: Divergence::ForkedCommits { .. },
        } => {
            // The fork becomes evident at client 1's commit: the first
            // record in universe B is its submit, the second its commit.
            assert_eq!(*first_bad_version, fork_starts_at + 1);
            let (a, b) = report.verdict.signed_evidence().expect("fork evidence");
            assert!(!a.version.comparable(&b.version));
            assert!(a.sig.is_some() && b.sig.is_some());
            let (va, vb) = report.verdict.conflicting_pair().expect("pair");
            assert!(!va.comparable(vb));
        }
        other => panic!("expected ForkedCommits, got {other:?}"),
    }
}

#[test]
fn misreported_read_is_pinned_to_its_operation() {
    let seed = b"certifier-misreport";
    let mut session = honest_session(seed, 3);
    let history = session.client_history.as_mut().unwrap();
    // Doctor a completed read's observed value in the client history.
    let target = history
        .ops()
        .iter()
        .find(|op| op.kind == OpKind::Read && op.is_complete() && op.read_result().is_some())
        .map(|op| (op.id, op.client, op.timestamp.unwrap()))
        .expect("a completed read");
    let mut doctored = History::new();
    for op in history.ops() {
        let id = match op.kind {
            OpKind::Write => {
                doctored.begin_write(op.client, op.written.clone().unwrap(), op.invoked_at)
            }
            OpKind::Read => doctored.begin_read(op.client, op.register, op.invoked_at),
        };
        if op.is_complete() {
            match op.kind {
                OpKind::Write => {
                    doctored.complete_write(id, op.responded_at.unwrap(), op.timestamp)
                }
                OpKind::Read => {
                    let observed = if op.id == target.0 {
                        Some(Value::from("never-served"))
                    } else {
                        op.read_result().unwrap().cloned()
                    };
                    doctored.complete_read(id, op.responded_at.unwrap(), observed, op.timestamp);
                }
            }
        }
    }
    session.client_history = Some(doctored);
    let session = relaunder(&session);
    let report = audit(&session, &registry(3, seed)).unwrap();
    match report.verdict {
        AuditVerdict::Diverged {
            divergence:
                Divergence::MisreportedOperation {
                    client, timestamp, ..
                },
            ..
        } => {
            assert_eq!(client, target.1);
            assert_eq!(timestamp, target.2);
        }
        other => panic!("expected MisreportedOperation, got {other:?}"),
    }
}

#[test]
fn phantom_client_operation_is_omitted() {
    let seed = b"certifier-phantom";
    let mut session = honest_session(seed, 2);
    let history = session.client_history.as_mut().unwrap();
    // Claim one more completed write than the schedule contains.
    let phantom = history.begin_write(ClientId::new(0), Value::from("phantom"), 999);
    history.complete_write(phantom, 1000, Some(99));
    let end = session.records.len() as u64;
    let session = relaunder(&session);
    let report = audit(&session, &registry(3, seed)).unwrap();
    match report.verdict {
        AuditVerdict::Diverged {
            first_bad_version,
            divergence: Divergence::OmittedOperation { client, timestamp },
        } => {
            assert_eq!(first_bad_version, end);
            assert_eq!(client.index(), 0);
            assert_eq!(timestamp, 99);
        }
        other => panic!("expected OmittedOperation, got {other:?}"),
    }
}

#[test]
fn resigned_signature_bytes_pass_the_container_but_fail_the_audit() {
    // The "signature byte-region" corruption class: flip a signature
    // inside a record, then rebuild every checksum so the *container* is
    // pristine. Only the cryptographic audit can convict.
    let seed = b"certifier-resign";
    let mut session = honest_session(seed, 2);
    let victim = session
        .records
        .iter()
        .position(|(_, r)| matches!(r, LogRecord::Submit { .. }))
        .unwrap();
    if let (_, LogRecord::Submit { msg, .. }) = &mut session.records[victim] {
        let mut bytes: Vec<u8> = msg.tuple.sig.as_bytes().to_vec();
        bytes[0] ^= 0xff;
        msg.tuple.sig = faust_crypto::Signature::Mac(bytes.try_into().expect("mac width"));
    }
    let session = relaunder(&session);
    let report = audit(&session, &registry(3, seed)).unwrap();
    match report.verdict {
        AuditVerdict::Diverged {
            first_bad_version,
            divergence: Divergence::BadSignature { what, .. },
        } => {
            assert_eq!(first_bad_version, victim as u64);
            assert_eq!(what, SigKind::Submit);
        }
        other => panic!("expected SUBMIT BadSignature, got {other:?}"),
    }
}

#[test]
fn store_directory_roundtrip_certifies() {
    use faust_store::{Durability, PersistentServer, StoreConfig};
    let seed = b"certifier-store";
    let n = 2;
    let dir = faust_store::testutil::scratch_dir("audit-store-rt");
    let config = StoreConfig {
        durability: Durability::Never,
        snapshot_every: 0,
    };
    let mut server = PersistentServer::open(&dir, n, config).unwrap();
    let mut cs = clients(n, seed);
    for round in 0..4u64 {
        let submit = cs[0].begin_write(Value::unique(0, round)).unwrap();
        faust_store::testutil::run_op(&mut server, &mut cs[0], submit);
        let submit = cs[1].begin_read(ClientId::new(0)).unwrap();
        faust_store::testutil::run_op(&mut server, &mut cs[1], submit);
    }
    drop(server);
    let session = faust_audit::export_store_dir(&dir, SigScheme::Hmac, None).unwrap();
    assert_eq!(session.records.len(), 16);
    let report = audit(&session, &registry(n, seed)).unwrap();
    assert!(report.verdict.is_certified(), "got {:?}", report.verdict);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_directory_with_snapshot_exports_base_state() {
    use faust_store::{Durability, PersistentServer, StoreConfig};
    let seed = b"certifier-store-snap";
    let n = 2;
    let dir = faust_store::testutil::scratch_dir("audit-store-snap");
    let config = StoreConfig {
        durability: Durability::Never,
        snapshot_every: 4,
    };
    let mut server = PersistentServer::open(&dir, n, config).unwrap();
    let mut cs = clients(n, seed);
    for round in 0..6u64 {
        let submit = cs[0].begin_write(Value::unique(0, round)).unwrap();
        faust_store::testutil::run_op(&mut server, &mut cs[0], submit);
    }
    drop(server);
    let session = faust_audit::export_store_dir(&dir, SigScheme::Hmac, None).unwrap();
    assert!(session.base_seq > 0, "snapshot should have rotated the WAL");
    assert!(session.base_state.is_some());
    let report = audit(&session, &registry(n, seed)).unwrap();
    assert!(report.verdict.is_certified(), "got {:?}", report.verdict);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_rendering_covers_both_verdicts() {
    let seed = b"certifier-json";
    let session = honest_session(seed, 2);
    let report = audit(&session, &registry(3, seed)).unwrap();
    let json = faust_audit::report_to_json(&report);
    assert!(json.contains("\"status\":\"certified\""));
    assert!(json.contains("\"fork_linearizable\":true"));

    let bad = audit(&session, &registry(3, b"wrong-keys")).unwrap();
    let json = faust_audit::report_to_json(&bad);
    assert!(json.contains("\"status\":\"diverged\""));
    assert!(json.contains("\"first_bad_version\":0"));
    assert!(json.contains("bad_signature"));
}
