//! E10 (part 1): raw cryptographic costs — hashing, MACs, signatures,
//! digest chains. These dominate USTOR's per-operation CPU cost.

use faust_bench::timing::{bench, bench_throughput, section};
use faust_crypto::chain::chain_extend;
use faust_crypto::hmac::{hmac_sha256, PreparedHmac};
use faust_crypto::sha256::sha256;
use faust_crypto::sig::{KeySet, SigContext, Signer, Verifier};
use std::hint::black_box;

fn main() {
    section("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xAB; size];
        bench_throughput(&format!("sha256/{size}B"), size, || {
            black_box(sha256(black_box(&data)));
        });
    }

    section("hmac_sha256");
    for size in [64usize, 1024] {
        let data = vec![0xCD; size];
        bench_throughput(&format!("hmac_sha256/{size}B"), size, || {
            black_box(hmac_sha256(b"bench key", black_box(&data)));
        });
    }
    let prepared = PreparedHmac::new(b"bench key");
    for size in [64usize, 1024] {
        let data = vec![0xCD; size];
        bench_throughput(&format!("hmac_sha256_prepared/{size}B"), size, || {
            black_box(prepared.mac(&[black_box(&data)]));
        });
    }

    section("signatures");
    let keys = KeySet::generate(4, b"bench");
    let signer = keys.keypair(0).unwrap();
    let registry = keys.registry();
    let msg = vec![0xEF; 128];
    let sig = signer.sign(SigContext::Commit, &msg);
    bench("sign_128B", || {
        black_box(signer.sign(SigContext::Commit, black_box(&msg)));
    });
    bench("verify_128B", || {
        black_box(registry.verify(0, SigContext::Commit, black_box(&msg), &sig));
    });

    section("digest chains");
    let d = chain_extend(None, 0);
    bench("chain_extend", || {
        black_box(chain_extend(black_box(Some(d)), black_box(3)));
    });
}
