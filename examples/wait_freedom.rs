//! Wait-freedom vs. blocking: USTOR against the fork-linearizable
//! lock-step baseline (experiment E7).
//!
//! The paper's central impossibility argument: no fork-linearizable
//! protocol is wait-free — concurrent operations must block each other
//! even when the server is correct. This example runs the *same* workload
//! through both protocols, twice:
//!
//! 1. heavy concurrency — every client issues operations simultaneously;
//!    the lock-step baseline serializes them while USTOR completes them
//!    all in one round-trip each;
//! 2. a client crash mid-operation — USTOR does not care; the lock-step
//!    baseline wedges *every* other client forever.
//!
//! Run with: `cargo run --example wait_freedom`

use faust::baseline::{LsDriver, LsWorkloadOp};
use faust::sim::{DelayModel, SimConfig};
use faust::types::{ClientId, Value};
use faust::ustor::{Driver, UstorServer, WorkloadOp};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn sim() -> SimConfig {
    SimConfig {
        seed: 1,
        link_delay: DelayModel::Fixed(10),
        offline_delay: DelayModel::Fixed(50),
    }
}

fn main() {
    let n: usize = 8;
    let ops: u64 = 5;

    println!("── scenario 1: {n} clients, {ops} concurrent writes each ──\n");

    let mut ustor = Driver::new(n, Box::new(UstorServer::new(n)), sim(), b"wf");
    for i in 0..n {
        for s in 0..ops {
            ustor.push_op(c(i as u32), WorkloadOp::Write(Value::unique(i as u32, s)));
        }
    }
    let u = ustor.run();

    let mut lockstep = LsDriver::new(n, sim(), b"wf");
    for i in 0..n {
        for s in 0..ops {
            lockstep.push_op(c(i as u32), LsWorkloadOp::Write(Value::unique(i as u32, s)));
        }
    }
    let l = lockstep.run();

    println!("                         USTOR      lock-step");
    println!(
        "  completed ops          {:>5}      {:>5}",
        u.history.len() - u.incomplete_ops,
        l.history.len() - l.incomplete_ops
    );
    println!(
        "  virtual completion time{:>6}      {:>5}",
        u.final_time, l.final_time
    );
    println!(
        "\n  USTOR pipelines all {} ops concurrently (~{} ticks per batch);",
        n as u64 * ops,
        u.final_time / ops
    );
    println!(
        "  the lock-step protocol serializes them ({}x slower here).",
        l.final_time / u.final_time.max(1)
    );
    assert!(l.final_time > 2 * u.final_time);

    println!("\n── scenario 2: a client crashes mid-operation ──\n");

    // USTOR: C0 crashes while its write is in flight.
    let mut ustor = Driver::new(3, Box::new(UstorServer::new(3)), sim(), b"wf-crash");
    ustor.push_ops(
        c(0),
        vec![WorkloadOp::Write(Value::from("w")), WorkloadOp::Crash],
    );
    for i in 1..3 {
        for s in 0..ops {
            ustor.push_op(c(i), WorkloadOp::Write(Value::unique(i, s)));
        }
    }
    let u = ustor.run();

    // Lock-step: C0 crashes while holding the lock.
    let mut lockstep = LsDriver::new(3, sim(), b"wf-crash");
    lockstep.push_op(c(0), LsWorkloadOp::Write(Value::from("w")));
    for i in 1..3 {
        for s in 0..ops {
            lockstep.push_op(c(i), LsWorkloadOp::Write(Value::unique(i, s)));
        }
    }
    lockstep.crash_at(c(0), 15); // between grant and commit
    let l = lockstep.run();

    let u_done: usize = u.completions[1].len() + u.completions[2].len();
    let l_done: usize = l.completions[1].len() + l.completions[2].len();
    println!("  ops completed by the surviving clients:");
    println!("    USTOR:     {u_done:>2} of {}", 2 * ops);
    println!("    lock-step: {l_done:>2} of {}", 2 * ops);
    assert_eq!(u_done, 2 * ops as usize, "USTOR is wait-free");
    assert_eq!(l_done, 0, "the crashed lock holder wedges everyone");

    println!("\n  USTOR: unaffected (wait-free, Definition 4).");
    println!("  lock-step: every client is blocked behind the dead lock holder —");
    println!("  exactly why the paper needs weak fork-linearizability.");
}
