//! E5/E7/E8 companion: wall-clock cost of whole simulated executions —
//! USTOR vs. the lock-step baseline, and a full FAUST run with detection.
//! The *virtual-time* series these scenarios produce are printed by the
//! `experiments` binary; these benches measure the harness itself.

use faust_baseline::{LsDriver, LsWorkloadOp};
use faust_bench::timing::{bench, section};
use faust_core::{FaustDriver, FaustDriverConfig, FaustWorkloadOp};
use faust_sim::SimConfig;
use faust_types::{ClientId, Value};
use faust_ustor::adversary::SplitBrainServer;
use faust_ustor::{Driver, UstorServer, WorkloadOp};
use std::hint::black_box;

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn main() {
    section("simulated USTOR runs (10 writes per client)");
    for n in [4usize, 16] {
        bench(&format!("sim_ustor_run/n{n}"), || {
            let mut d = Driver::new(
                n,
                Box::new(UstorServer::new(n)),
                SimConfig::default(),
                b"bench",
            );
            for i in 0..n {
                for s in 0..10u64 {
                    d.push_op(c(i as u32), WorkloadOp::Write(Value::unique(i as u32, s)));
                }
            }
            black_box(d.run());
        });
    }

    section("simulated lock-step baseline runs");
    for n in [4usize, 16] {
        bench(&format!("sim_lockstep_run/n{n}"), || {
            let mut d = LsDriver::new(n, SimConfig::default(), b"bench");
            for i in 0..n {
                for s in 0..10u64 {
                    d.push_op(c(i as u32), LsWorkloadOp::Write(Value::unique(i as u32, s)));
                }
            }
            black_box(d.run());
        });
    }

    section("full FAUST fork-detection run");
    bench("sim_faust_fork_detection", || {
        let server = SplitBrainServer::new(4, vec![vec![c(0), c(1)], vec![c(2), c(3)]], 0);
        let mut d = FaustDriver::new(4, Box::new(server), FaustDriverConfig::default(), b"bench");
        for i in 0..4 {
            d.push_op(c(i), FaustWorkloadOp::Write(Value::unique(i, 0)));
        }
        black_box(d.run_until(5_000));
    });
}
