//! Histories of executions: invocation/response records consumed by the
//! consistency checkers in `faust-consistency`.
//!
//! A [`History`] is the paper's "sequence of invocations and responses of
//! `F` occurring in an execution", represented as one [`OpRecord`] per
//! operation with invocation and (optional) response times. Real-time
//! precedence `o <_σ o'` (operation `o` completes before `o'` is invoked)
//! is derived from those times.

use crate::ids::{ClientId, Timestamp};
use crate::op::OpKind;
use crate::value::Value;
use crate::wire::{Wire, WireError};
use std::fmt;

/// Unique identifier of an operation within a [`History`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// The outcome of an operation, if it completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// Still pending (no matching response in the history).
    Pending,
    /// A write completed (`OK`).
    WriteOk,
    /// A read completed, returning a value (`None` = the initial `⊥`).
    ReadReturned(Option<Value>),
}

/// One operation of a history: a register read or write with its
/// invocation/response events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Unique id within the history.
    pub id: OpId,
    /// The invoking client.
    pub client: ClientId,
    /// Read or write.
    pub kind: OpKind,
    /// Target register (for writes, always the client's own register).
    pub register: ClientId,
    /// The written value (writes only).
    pub written: Option<Value>,
    /// Outcome (response event), if any.
    pub outcome: OpOutcome,
    /// Time of the invocation event.
    pub invoked_at: u64,
    /// Time of the response event, if completed.
    pub responded_at: Option<u64>,
    /// The USTOR timestamp returned with the response, when the recording
    /// layer knows it (used by stability experiments).
    pub timestamp: Option<Timestamp>,
}

impl OpRecord {
    /// Whether the operation completed.
    pub fn is_complete(&self) -> bool {
        !matches!(self.outcome, OpOutcome::Pending)
    }

    /// The value this operation wrote, if it is a write.
    pub fn written_value(&self) -> Option<&Value> {
        self.written.as_ref()
    }

    /// The value a completed read returned (`Some(None)` = read returned
    /// `⊥`; `None` = not a completed read).
    pub fn read_result(&self) -> Option<Option<&Value>> {
        match &self.outcome {
            OpOutcome::ReadReturned(v) => Some(v.as_ref()),
            _ => None,
        }
    }
}

/// A recorded execution history.
///
/// # Example
///
/// ```
/// use faust_types::history::History;
/// use faust_types::{ClientId, Value};
///
/// let mut h = History::new();
/// let w = h.begin_write(ClientId::new(0), Value::from("x"), 0);
/// h.complete_write(w, 1, None);
/// let r = h.begin_read(ClientId::new(1), ClientId::new(0), 2);
/// h.complete_read(r, 3, Some(Value::from("x")), None);
/// assert!(h.precedes(w, r));
/// assert_eq!(h.complete_ops().count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    ops: Vec<OpRecord>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Records a write invocation; returns the new operation's id.
    pub fn begin_write(&mut self, client: ClientId, value: Value, time: u64) -> OpId {
        let id = OpId(self.ops.len() as u64);
        self.ops.push(OpRecord {
            id,
            client,
            kind: OpKind::Write,
            register: client,
            written: Some(value),
            outcome: OpOutcome::Pending,
            invoked_at: time,
            responded_at: None,
            timestamp: None,
        });
        id
    }

    /// Records a read invocation; returns the new operation's id.
    pub fn begin_read(&mut self, client: ClientId, register: ClientId, time: u64) -> OpId {
        let id = OpId(self.ops.len() as u64);
        self.ops.push(OpRecord {
            id,
            client,
            kind: OpKind::Read,
            register,
            written: None,
            outcome: OpOutcome::Pending,
            invoked_at: time,
            responded_at: None,
            timestamp: None,
        });
        id
    }

    /// Records the response of a write.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or not a pending write.
    pub fn complete_write(&mut self, id: OpId, time: u64, timestamp: Option<Timestamp>) {
        let op = &mut self.ops[id.0 as usize];
        assert_eq!(op.kind, OpKind::Write, "{id} is not a write");
        assert!(
            matches!(op.outcome, OpOutcome::Pending),
            "{id} already complete"
        );
        op.outcome = OpOutcome::WriteOk;
        op.responded_at = Some(time);
        op.timestamp = timestamp;
    }

    /// Records the response of a read.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or not a pending read.
    pub fn complete_read(
        &mut self,
        id: OpId,
        time: u64,
        value: Option<Value>,
        timestamp: Option<Timestamp>,
    ) {
        let op = &mut self.ops[id.0 as usize];
        assert_eq!(op.kind, OpKind::Read, "{id} is not a read");
        assert!(
            matches!(op.outcome, OpOutcome::Pending),
            "{id} already complete"
        );
        op.outcome = OpOutcome::ReadReturned(value);
        op.responded_at = Some(time);
        op.timestamp = timestamp;
    }

    /// All operations, in invocation order.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Looks up an operation by id.
    pub fn op(&self, id: OpId) -> Option<&OpRecord> {
        self.ops.get(id.0 as usize)
    }

    /// The completed operations (`complete(σ)` in the paper).
    pub fn complete_ops(&self) -> impl Iterator<Item = &OpRecord> {
        self.ops.iter().filter(|o| o.is_complete())
    }

    /// The subsequence of operations invoked by `client` (`σ|C_i`).
    pub fn client_ops(&self, client: ClientId) -> impl Iterator<Item = &OpRecord> {
        self.ops.iter().filter(move |o| o.client == client)
    }

    /// Real-time precedence: `a` completed before `b` was invoked.
    ///
    /// # Panics
    ///
    /// Panics if either id is unknown.
    pub fn precedes(&self, a: OpId, b: OpId) -> bool {
        let (a, b) = (&self.ops[a.0 as usize], &self.ops[b.0 as usize]);
        match a.responded_at {
            Some(ra) => ra < b.invoked_at,
            None => false,
        }
    }

    /// Whether two operations are concurrent (neither precedes the other).
    pub fn concurrent(&self, a: OpId, b: OpId) -> bool {
        !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Checks well-formedness: per client, operations alternate invocation
    /// and response, i.e. no client invokes a new operation while another
    /// of its operations is pending, and response times are consistent.
    pub fn is_well_formed(&self) -> bool {
        let clients: std::collections::BTreeSet<ClientId> =
            self.ops.iter().map(|o| o.client).collect();
        for c in clients {
            let mut ops: Vec<&OpRecord> = self.client_ops(c).collect();
            ops.sort_by_key(|o| o.invoked_at);
            for pair in ops.windows(2) {
                let (prev, next) = (pair[0], pair[1]);
                match prev.responded_at {
                    None => return false, // invoked next while prev pending forever
                    Some(r) if r > next.invoked_at => return false,
                    _ => {}
                }
            }
        }
        self.ops
            .iter()
            .all(|o| o.responded_at.is_none_or(|r| r >= o.invoked_at))
    }

    /// Checks the paper's standing assumption that all written values are
    /// unique.
    pub fn written_values_unique(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.ops
            .iter()
            .filter_map(|o| o.written.as_ref())
            .all(|v| seen.insert(v.clone()))
    }
}

impl Wire for OpId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(OpId(u64::decode_from(input)?))
    }
}

impl Wire for OpOutcome {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            OpOutcome::Pending => out.push(0),
            OpOutcome::WriteOk => out.push(1),
            OpOutcome::ReadReturned(v) => {
                out.push(2);
                v.encode_into(out);
            }
        }
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode_from(input)? {
            0 => Ok(OpOutcome::Pending),
            1 => Ok(OpOutcome::WriteOk),
            2 => Ok(OpOutcome::ReadReturned(Option::<Value>::decode_from(
                input,
            )?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for OpRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.id.encode_into(out);
        self.client.encode_into(out);
        self.kind.encode_into(out);
        self.register.encode_into(out);
        self.written.encode_into(out);
        self.outcome.encode_into(out);
        self.invoked_at.encode_into(out);
        self.responded_at.encode_into(out);
        self.timestamp.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(OpRecord {
            id: OpId::decode_from(input)?,
            client: ClientId::decode_from(input)?,
            kind: OpKind::decode_from(input)?,
            register: ClientId::decode_from(input)?,
            written: Option::<Value>::decode_from(input)?,
            outcome: OpOutcome::decode_from(input)?,
            invoked_at: u64::decode_from(input)?,
            responded_at: Option::<u64>::decode_from(input)?,
            timestamp: Option::<Timestamp>::decode_from(input)?,
        })
    }
}

impl Wire for History {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.ops.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        let ops = Vec::<OpRecord>::decode_from(input)?;
        // Ids are positional everywhere else in this module; a decoded
        // history must agree or `op()`/`precedes()` lookups would lie.
        for (i, op) in ops.iter().enumerate() {
            if op.id.0 != i as u64 {
                return Err(WireError::BadLength(op.id.0));
            }
        }
        Ok(History { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    #[test]
    fn precedence_and_concurrency() {
        let mut h = History::new();
        let a = h.begin_write(c(0), Value::from("a"), 0);
        h.complete_write(a, 5, None);
        let b = h.begin_read(c(1), c(0), 10);
        h.complete_read(b, 12, Some(Value::from("a")), None);
        let d = h.begin_read(c(2), c(0), 11);
        h.complete_read(d, 20, Some(Value::from("a")), None);

        assert!(h.precedes(a, b));
        assert!(!h.precedes(b, a));
        assert!(h.concurrent(b, d));
        assert!(!h.concurrent(a, d));
    }

    #[test]
    fn pending_ops_do_not_precede() {
        let mut h = History::new();
        let a = h.begin_write(c(0), Value::from("a"), 0);
        let b = h.begin_read(c(1), c(0), 100);
        assert!(!h.precedes(a, b));
        assert!(h.concurrent(a, b));
        assert_eq!(h.complete_ops().count(), 0);
    }

    #[test]
    fn well_formedness_detects_overlap() {
        let mut h = History::new();
        let a = h.begin_write(c(0), Value::from("a"), 0);
        h.complete_write(a, 10, None);
        // Same client invokes at t=5, before the previous response at t=10.
        let _b = h.begin_read(c(0), c(0), 5);
        assert!(!h.is_well_formed());
    }

    #[test]
    fn well_formedness_accepts_sequential_client() {
        let mut h = History::new();
        let a = h.begin_write(c(0), Value::from("a"), 0);
        h.complete_write(a, 1, None);
        let b = h.begin_read(c(0), c(1), 2);
        h.complete_read(b, 3, None, None);
        // A pending *last* op is fine.
        let _p = h.begin_read(c(0), c(1), 4);
        assert!(h.is_well_formed());
    }

    #[test]
    fn uniqueness_check() {
        let mut h = History::new();
        let a = h.begin_write(c(0), Value::from("same"), 0);
        h.complete_write(a, 1, None);
        assert!(h.written_values_unique());
        let _b = h.begin_write(c(1), Value::from("same"), 2);
        assert!(!h.written_values_unique());
    }

    #[test]
    fn client_subhistory() {
        let mut h = History::new();
        h.begin_write(c(0), Value::from("a"), 0);
        h.begin_write(c(1), Value::from("b"), 0);
        h.begin_write(c(0), Value::from("c"), 5);
        assert_eq!(h.client_ops(c(0)).count(), 2);
        assert_eq!(h.client_ops(c(1)).count(), 1);
    }

    #[test]
    fn wire_roundtrip() {
        let mut h = History::new();
        let w = h.begin_write(c(0), Value::from("x"), 0);
        h.complete_write(w, 5, Some(3));
        let r = h.begin_read(c(1), c(0), 6);
        h.complete_read(r, 9, Some(Value::from("x")), Some(1));
        let _pending = h.begin_read(c(2), c(0), 10);
        let none_read = h.begin_read(c(1), c(2), 11);
        h.complete_read(none_read, 12, None, None);

        let bytes = h.encode();
        let back = History::decode(&bytes).unwrap();
        assert_eq!(back, h);

        // Non-positional ids are rejected, truncation is structured.
        let mut forged = h.clone();
        forged.ops[0].id = OpId(7);
        assert!(History::decode(&forged.encode()).is_err());
        assert_eq!(
            History::decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn read_result_accessor() {
        let mut h = History::new();
        let r = h.begin_read(c(0), c(1), 0);
        h.complete_read(r, 1, None, None);
        assert_eq!(h.op(r).unwrap().read_result(), Some(None));
    }
}
