//! E5/E7/E8 companion: wall-clock cost of whole simulated executions —
//! USTOR vs. the lock-step baseline, and a full FAUST run with detection.
//! The *virtual-time* series these scenarios produce are printed by the
//! `experiments` binary; these benches measure the harness itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faust_baseline::{LsDriver, LsWorkloadOp};
use faust_core::{FaustDriver, FaustDriverConfig, FaustWorkloadOp};
use faust_sim::SimConfig;
use faust_types::{ClientId, Value};
use faust_ustor::adversary::SplitBrainServer;
use faust_ustor::{Driver, UstorServer, WorkloadOp};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn bench_ustor_run(b: &mut Criterion) {
    let mut group = b.benchmark_group("sim_ustor_run");
    for n in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut d = Driver::new(
                    n,
                    Box::new(UstorServer::new(n)),
                    SimConfig::default(),
                    b"bench",
                );
                for i in 0..n {
                    for s in 0..10u64 {
                        d.push_op(c(i as u32), WorkloadOp::Write(Value::unique(i as u32, s)));
                    }
                }
                d.run()
            });
        });
    }
    group.finish();
}

fn bench_lockstep_run(b: &mut Criterion) {
    let mut group = b.benchmark_group("sim_lockstep_run");
    for n in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut d = LsDriver::new(n, SimConfig::default(), b"bench");
                for i in 0..n {
                    for s in 0..10u64 {
                        d.push_op(c(i as u32), LsWorkloadOp::Write(Value::unique(i as u32, s)));
                    }
                }
                d.run()
            });
        });
    }
    group.finish();
}

fn bench_faust_detection_run(b: &mut Criterion) {
    b.bench_function("sim_faust_fork_detection", |b| {
        b.iter(|| {
            let server = SplitBrainServer::new(4, vec![vec![c(0), c(1)], vec![c(2), c(3)]], 0);
            let mut d = FaustDriver::new(
                4,
                Box::new(server),
                FaustDriverConfig::default(),
                b"bench",
            );
            for i in 0..4 {
                d.push_op(c(i), FaustWorkloadOp::Write(Value::unique(i, 0)));
            }
            d.run_until(5_000)
        });
    });
}

criterion_group!(benches, bench_ustor_run, bench_lockstep_run, bench_faust_detection_run);
criterion_main!(benches);
