//! Notifications emitted by the FAUST layer to the application.
//!
//! A fail-aware untrusted service extends the plain functionality with
//! timestamps on responses and with the asynchronous `stable_i` and
//! `fail_i` output actions (Section 3, Definition 5).

use faust_types::{ClientId, OpKind, Timestamp, Value};
use faust_ustor::Fault;
use std::fmt;

/// Completion of a user operation, carrying the timestamp required by the
/// fail-aware service (Definition 5, integrity: timestamps increase
/// monotonically per client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaustCompletion {
    /// Read or write.
    pub kind: OpKind,
    /// The register accessed.
    pub target: ClientId,
    /// The operation's timestamp `t`.
    pub timestamp: Timestamp,
    /// For reads: the value read (`None` = `⊥`).
    pub read_value: Option<Option<Value>>,
}

/// A stability cut: the parameter `W` of a `stable_i(W)` notification.
///
/// All operations of `C_i` that returned a timestamp `≤ w[j]` are *stable
/// with respect to `C_j`*: the two clients are guaranteed to have a common
/// view of the execution up to that operation. An operation stable w.r.t.
/// all clients is simply called stable, and the execution prefix up to it
/// is linearizable (Definition 5, property 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilityCut {
    /// `w[j]` = highest own-operation timestamp stable w.r.t. client `j`.
    pub w: Vec<Timestamp>,
}

impl StabilityCut {
    /// The lowest entry: operations with timestamps up to this value are
    /// stable w.r.t. *every* client.
    pub fn globally_stable_timestamp(&self) -> Timestamp {
        self.w.iter().copied().min().unwrap_or(0)
    }
}

impl fmt::Display for StabilityCut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.w.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// Why a client emitted `fail_i`. Every reason is evidence of server
/// misbehaviour (failure-detection accuracy, Definition 5 property 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailReason {
    /// The USTOR layer detected an inconsistent reply.
    Ustor(Fault),
    /// A version received from `from` is incomparable with the maximal
    /// known version — proof that the server forked the clients' views.
    IncomparableVersions {
        /// The client whose version conflicted.
        from: ClientId,
    },
    /// Another client detected a failure and alerted us offline.
    ReportedBy(ClientId),
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::Ustor(fault) => write!(f, "storage protocol check failed: {fault}"),
            FailReason::IncomparableVersions { from } => {
                write!(
                    f,
                    "version from {from} is incomparable: the server forked our views"
                )
            }
            FailReason::ReportedBy(from) => write!(f, "{from} reported a server failure"),
        }
    }
}

/// An asynchronous notification from the FAUST layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Notification {
    /// A user operation completed (synchronous response, with timestamp).
    Completed(FaustCompletion),
    /// `stable_i(W)`: the stability cut advanced.
    Stable(StabilityCut),
    /// `fail_i`: the server is demonstrably faulty; the client has halted.
    Failed(FailReason),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_cut_display_matches_paper_notation() {
        let cut = StabilityCut { w: vec![10, 8, 3] };
        assert_eq!(cut.to_string(), "[10,8,3]");
        assert_eq!(cut.globally_stable_timestamp(), 3);
    }

    #[test]
    fn fail_reason_display_nonempty() {
        let reasons = [
            FailReason::Ustor(Fault::VersionRegression),
            FailReason::IncomparableVersions {
                from: ClientId::new(1),
            },
            FailReason::ReportedBy(ClientId::new(2)),
        ];
        for r in reasons {
            assert!(!r.to_string().is_empty());
        }
    }
}
