//! FAUST — the Fail-Aware Untrusted STorage service of Cachin, Keidar,
//! and Shraer (DSN 2009), layered on the USTOR protocol.
//!
//! A *fail-aware untrusted service* (Definition 5) extends a shared
//! functionality with timestamps on responses and two asynchronous
//! notifications:
//!
//! * `stable_i(W)` — a **stability cut**: all operations of client `C_i`
//!   with timestamps `≤ W[j]` are guaranteed to be in a common view with
//!   client `C_j`; operations stable w.r.t. *all* clients are
//!   linearizable.
//! * `fail_i` — **accurate failure detection**: emitted only when the
//!   server demonstrably violated its specification (forked views,
//!   tampered data, forged history).
//!
//! With a correct server the service is linearizable and wait-free;
//! causal consistency holds always; every inconsistency is eventually
//! either resolved into stability or detected as a failure
//! (completeness), using dummy reads through the server and PROBE /
//! VERSION / FAILURE messages on an offline client-to-client channel.
//!
//! * [`FaustClient`] — the sans-io protocol state machine.
//! * [`OfflineMsg`] — the signed offline messages.
//! * [`FaustDriver`] — deterministic whole-system simulation (clients +
//!   server + both channels), used by the tests, examples, and the
//!   experiment harness.
//! * [`runtime`] — a thread-per-client runtime demonstrating the same
//!   stack under real concurrency.
//!
//! # Example
//!
//! ```
//! use faust_core::{FaustDriver, FaustDriverConfig, FaustWorkloadOp};
//! use faust_types::{ClientId, Value};
//! use faust_ustor::UstorServer;
//!
//! let mut driver = FaustDriver::new(
//!     3,
//!     Box::new(UstorServer::new(3)),
//!     FaustDriverConfig::default(),
//!     b"quickstart",
//! );
//! driver.push_op(ClientId::new(0), FaustWorkloadOp::Write(Value::from("hello")));
//! driver.push_op(ClientId::new(1), FaustWorkloadOp::Read(ClientId::new(0)));
//! let result = driver.run_until(5_000);
//! assert!(result.failures.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod driver;
pub mod events;
pub mod handle;
pub mod offline;
pub mod persist;
pub mod runtime;
pub mod sim;
pub mod threaded_faust;

pub use client::{Actions, FaustClient, FaustClientState, FaustConfig, UserOp};
pub use driver::{
    random_faust_workloads, FaustDriver, FaustDriverConfig, FaustRunResult, FaustWorkloadOp,
};
pub use events::{FailReason, FaustCompletion, Notification, StabilityCut};
pub use handle::{
    offline_mesh, DisconnectCause, Event, FaustHandle, HandleConfig, HandleStats, OfflineLink,
    OpTicket, ReconnectPolicy, SessionCore, SessionOutput, SessionState, WaitError,
};
pub use offline::OfflineMsg;
pub use persist::{checkpoint_session, load_session, save_session};
pub use sim::{
    check_determinism, check_oracles, gen_scenario, investigate, run_and_check, run_sim, CrashSpec,
    FaultClause, FaultPlan, ServerSpec, SimDurability, SimFailure, SimRunReport, SimScenario,
    WalTamper,
};
pub use threaded_faust::{
    run_faust_session, run_threaded_faust, run_threaded_faust_over, run_threaded_faust_tcp,
    FaustSession, ThreadedFaustConfig, ThreadedFaustReport,
};
