//! Attack suite: every Byzantine server behaviour either trips the exact
//! Algorithm 1 check it targets (failure-detection accuracy), or — for the
//! schedule-level forking attacks — passes undetected at the USTOR level,
//! as the paper's weak fork-linearizability guarantee permits.

use faust_crypto::sig::{KeySet, SigContext, Signature, Signer};
use faust_sim::SimConfig;
use faust_types::{ClientId, ReplyMsg, SignedVersion, Value};
use faust_ustor::adversary::{CrashServer, Fig3Server, SplitBrainServer, Tamper, TamperServer};
use faust_ustor::{Driver, Fault, Server, UstorClient, UstorServer, WorkloadOp};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn clients(n: usize, seed: &[u8]) -> Vec<UstorClient> {
    let keys = KeySet::generate(n, seed);
    (0..n)
        .map(|i| {
            UstorClient::new(
                c(i as u32),
                n,
                keys.keypair(i as u32).unwrap().clone(),
                keys.registry(),
            )
        })
        .collect()
}

/// Runs one synchronous operation: submit → reply → commit.
fn run_op<S: Server + ?Sized>(
    server: &mut S,
    client: &mut UstorClient,
    submit: faust_types::SubmitMsg,
) -> Result<faust_ustor::OpCompletion, Fault> {
    let id = client.id();
    let mut replies = server.on_submit(id, submit);
    assert!(replies.len() <= 1, "correct-path servers reply once");
    let (_, reply) = replies.pop().expect("server replied");
    let (commit, done) = client.handle_reply(reply)?;
    server.on_commit(id, commit.expect("immediate mode"));
    Ok(done)
}

/// Convenience: run a full write.
fn write<S: Server + ?Sized>(
    server: &mut S,
    client: &mut UstorClient,
    v: &str,
) -> Result<faust_ustor::OpCompletion, Fault> {
    let submit = client.begin_write(Value::from(v)).expect("idle");
    run_op(server, client, submit)
}

/// Convenience: run a full read.
fn read<S: Server + ?Sized>(
    server: &mut S,
    client: &mut UstorClient,
    register: ClientId,
) -> Result<faust_ustor::OpCompletion, Fault> {
    let submit = client.begin_read(register).expect("idle");
    run_op(server, client, submit)
}

// --- Figure 3: the stale-read attack ------------------------------------

#[test]
fn fig3_history_reproduced_and_undetected() {
    let mut cs = clients(2, b"fig3");
    let mut server = Fig3Server::new(2, c(0), c(1));

    // C0 completes write(X0, u).
    let w = write(&mut server, &mut cs[0], "u").expect("write succeeds");
    assert_eq!(w.timestamp, 1);

    // C1's first read — after the write completed — returns ⊥.
    let r1 = read(&mut server, &mut cs[1], c(0)).expect("no fault detectable");
    assert_eq!(r1.read_value, Some(None), "server hid the completed write");

    // C1's second read returns u.
    let r2 = read(&mut server, &mut cs[1], c(0)).expect("no fault detectable");
    assert_eq!(r2.read_value, Some(Some(Value::from("u"))));

    // Neither client detected anything: the attack is within weak
    // fork-linearizability.
    assert!(cs[0].fault().is_none());
    assert!(cs[1].fault().is_none());

    // But the committed versions of the two clients are incomparable —
    // the fork is visible the moment the clients compare versions
    // (exactly what FAUST's offline exchange does).
    assert!(!w.version.comparable(&r2.version));
}

#[test]
fn fig3_third_read_after_second_write_is_detected() {
    // Once C1 has joined one operation of C0, any further operation of C0
    // shown to C1 trips the proof check (at-most-one-join in action).
    let mut cs = clients(2, b"fig3b");
    let mut server = Fig3Server::new(2, c(0), c(1));

    write(&mut server, &mut cs[0], "u1").expect("ok");
    read(&mut server, &mut cs[1], c(0)).expect("ok"); // sees ⊥
    read(&mut server, &mut cs[1], c(0)).expect("ok"); // sees u1
    write(&mut server, &mut cs[0], "u2").expect("writer's world is fine");

    let err = read(&mut server, &mut cs[1], c(0)).expect_err("must detect");
    assert_eq!(err, Fault::MissingProofSignature);
}

// --- Split-brain forking --------------------------------------------------

#[test]
fn split_brain_views_diverge_without_detection() {
    let mut cs = clients(4, b"split");
    let mut server = SplitBrainServer::new(
        4,
        vec![vec![c(0), c(1)], vec![c(2), c(3)]],
        4, // fork after a common prefix of 4 submits
    );

    // Common prefix: everyone writes once.
    for i in 0..4 {
        write(&mut server, &mut cs[i], &format!("pre{i}")).expect("ok");
    }
    // Post-fork: group A sees A's writes, group B sees B's.
    write(&mut server, &mut cs[0], "a-new").expect("ok");
    write(&mut server, &mut cs[2], "b-new").expect("ok");

    let ra = read(&mut server, &mut cs[1], c(0)).expect("no fault");
    let rb = read(&mut server, &mut cs[3], c(0)).expect("no fault");
    assert_eq!(ra.read_value, Some(Some(Value::from("a-new"))));
    assert_eq!(
        rb.read_value,
        Some(Some(Value::from("pre0"))),
        "group B must not see the post-fork write"
    );

    // The forked versions are incomparable across groups.
    assert!(!ra.version.comparable(&rb.version));
    // Within a group they remain comparable.
    let ra2 = read(&mut server, &mut cs[0], c(1)).expect("no fault");
    assert!(ra.version.comparable(&ra2.version));
}

#[test]
fn split_brain_before_any_ops_forks_from_scratch() {
    let mut cs = clients(2, b"split0");
    let mut server = SplitBrainServer::new(2, vec![vec![c(0)], vec![c(1)]], 0);
    write(&mut server, &mut cs[0], "x").expect("ok");
    let r = read(&mut server, &mut cs[1], c(0)).expect("ok");
    assert_eq!(r.read_value, Some(None), "fork hides the write entirely");
}

// --- Tampering: every check fires ------------------------------------------

/// Builds a tamper scenario through the simulated driver and returns the
/// detected faults.
fn run_tamper(
    kind: Tamper,
    victim: u32,
    after: usize,
    script: Vec<(u32, WorkloadOp)>,
) -> Vec<(ClientId, Fault)> {
    let n = 3;
    let server = TamperServer::new(n, c(victim), after, kind);
    let mut driver = Driver::new(n, Box::new(server), SimConfig::default(), b"tamper");
    for (client, op) in script {
        driver.push_op(c(client), op);
    }
    driver.run().faults
}

#[test]
fn corrupt_commit_sig_detected() {
    // C0 writes (so a non-initial version exists), then C1 writes and gets
    // a tampered reply.
    let faults = run_tamper(
        Tamper::CorruptCommitSig,
        1,
        1,
        vec![
            (0, WorkloadOp::Write(Value::from("a"))),
            (1, WorkloadOp::Write(Value::from("b"))),
            (1, WorkloadOp::Write(Value::from("c"))),
        ],
    );
    assert!(
        faults.contains(&(c(1), Fault::BadCommitVersionSignature)),
        "got {faults:?}"
    );
}

#[test]
fn version_regression_detected() {
    // The victim has one committed op; the server then serves it the
    // initial version.
    let faults = run_tamper(
        Tamper::RegressToInitialVersion,
        1,
        2,
        vec![
            (1, WorkloadOp::Write(Value::from("b1"))),
            (0, WorkloadOp::Write(Value::from("a"))),
            (1, WorkloadOp::Write(Value::from("b2"))),
        ],
    );
    assert!(
        faults.contains(&(c(1), Fault::VersionRegression)),
        "got {faults:?}"
    );
}

#[test]
fn echoed_own_tuple_detected() {
    let faults = run_tamper(
        Tamper::EchoOwnTuple,
        0,
        0,
        vec![(0, WorkloadOp::Write(Value::from("a")))],
    );
    assert!(
        faults.contains(&(c(0), Fault::OwnOperationPending)),
        "got {faults:?}"
    );
}

#[test]
fn corrupt_read_value_detected() {
    let faults = run_tamper(
        Tamper::CorruptReadValue,
        1,
        1,
        vec![
            (0, WorkloadOp::Write(Value::from("real"))),
            (1, WorkloadOp::Read(c(0))),
        ],
    );
    assert!(
        faults.contains(&(c(1), Fault::BadDataSignature)),
        "got {faults:?}"
    );
}

#[test]
fn stale_read_value_detected() {
    // C0 writes twice; the tampered read serves the first MEM entry while
    // the presented version includes both writes.
    let faults = run_tamper(
        Tamper::StaleReadValue,
        1,
        2,
        vec![
            (0, WorkloadOp::Write(Value::from("v1"))),
            (0, WorkloadOp::Write(Value::from("v2"))),
            (1, WorkloadOp::Pause(50)), // let both writes commit first
            (1, WorkloadOp::Read(c(0))),
        ],
    );
    assert!(
        faults.contains(&(c(1), Fault::DataTimestampMismatch)),
        "got {faults:?}"
    );
}

#[test]
fn corrupt_writer_version_sig_detected() {
    let faults = run_tamper(
        Tamper::CorruptWriterSig,
        1,
        1,
        vec![
            (0, WorkloadOp::Write(Value::from("v"))),
            (1, WorkloadOp::Pause(50)), // the writer's version must be committed
            (1, WorkloadOp::Read(c(0))),
        ],
    );
    assert!(
        faults.contains(&(c(1), Fault::BadWriterCommitSignature)),
        "got {faults:?}"
    );
}

#[test]
fn ancient_writer_version_detected() {
    // C0 commits three writes; the read is served current data but C0's
    // first version (self entry 1 vs t_j = 3).
    let faults = run_tamper(
        Tamper::AncientWriterVersion,
        1,
        3,
        vec![
            (0, WorkloadOp::Write(Value::from("v1"))),
            (0, WorkloadOp::Write(Value::from("v2"))),
            (0, WorkloadOp::Write(Value::from("v3"))),
            (1, WorkloadOp::Pause(50)), // all three writes commit first
            (1, WorkloadOp::Read(c(0))),
        ],
    );
    assert!(
        faults.contains(&(c(1), Fault::WriterSelfEntryMismatch)),
        "got {faults:?}"
    );
}

// Pending-list tampering needs real concurrency, driven at message level.

#[test]
fn corrupt_pending_sig_detected() {
    let mut cs = clients(2, b"pend");
    let mut server = UstorServer::new(2);
    // C0 submits but does not commit yet → its tuple sits in L.
    let s0 = cs[0].begin_write(Value::from("w")).expect("idle");
    let _r0 = server.on_submit(c(0), s0);
    // C1 submits; its reply carries C0's tuple with a corrupted signature.
    let s1 = cs[1].begin_write(Value::from("x")).expect("idle");
    let mut r1 = server.on_submit(c(1), s1);
    let mut reply = r1.pop().expect("reply").1;
    reply.pending[0].sig = Signature::garbage();
    assert_eq!(cs[1].handle_reply(reply), Err(Fault::BadSubmitSignature));
}

#[test]
fn replayed_pending_tuple_detected() {
    // Replaying an old (already committed) tuple of C0 makes the expected
    // timestamp disagree with the replay's signature.
    let mut cs = clients(2, b"replay");
    let mut server = UstorServer::new(2);
    let s0 = cs[0].begin_write(Value::from("w1")).expect("idle");
    let old_tuple = s0.tuple.clone();
    run_op(&mut server, &mut cs[0], s0).expect("ok");

    let s1 = cs[1].begin_write(Value::from("x")).expect("idle");
    let mut r1 = server.on_submit(c(1), s1);
    let mut reply = r1.pop().expect("reply").1;
    reply.pending.push(old_tuple); // replay
    let err = cs[1].handle_reply(reply).expect_err("detects replay");
    // The proof check (line 41) fires: C0's digest entry is non-⊥ but its
    // PROOF-signature covers the committed digest, not the replayed one —
    // or the submit signature check (line 43) fires on the stale
    // timestamp, depending on which view the replay lands in.
    assert!(
        matches!(err, Fault::BadSubmitSignature | Fault::BadProofSignature),
        "got {err:?}"
    );
}

#[test]
fn omitted_proof_detected() {
    let mut cs = clients(2, b"omit");
    let mut server = UstorServer::new(2);
    // C0 commits once, then submits again without committing.
    write(&mut server, &mut cs[0], "w1").expect("ok");
    let s0 = cs[0].begin_write(Value::from("w2")).expect("idle");
    let _ = server.on_submit(c(0), s0);
    // C1's reply lists C0's op as pending; drop P[0].
    let s1 = cs[1].begin_write(Value::from("x")).expect("idle");
    let mut r1 = server.on_submit(c(1), s1);
    let mut reply = r1.pop().expect("reply").1;
    reply.proofs[0] = None;
    assert_eq!(cs[1].handle_reply(reply), Err(Fault::MissingProofSignature));
}

#[test]
fn corrupted_proof_detected() {
    let mut cs = clients(2, b"badproof");
    let mut server = UstorServer::new(2);
    write(&mut server, &mut cs[0], "w1").expect("ok");
    let s0 = cs[0].begin_write(Value::from("w2")).expect("idle");
    let _ = server.on_submit(c(0), s0);
    let s1 = cs[1].begin_write(Value::from("x")).expect("idle");
    let mut r1 = server.on_submit(c(1), s1);
    let mut reply = r1.pop().expect("reply").1;
    reply.proofs[0] = Some(Signature::garbage());
    assert_eq!(cs[1].handle_reply(reply), Err(Fault::BadProofSignature));
}

#[test]
fn own_timestamp_mismatch_detected() {
    // Line 36, second conjunct, needs a validly signed version whose entry
    // for the victim is too high. Forge it with the test's own keys
    // (something a real server cannot do — defense in depth).
    let keys = KeySet::generate(2, b"forge");
    let mut victim = UstorClient::new(c(0), 2, keys.keypair(0).unwrap().clone(), keys.registry());

    let mut fake = faust_types::Version::initial(2);
    fake.v_mut().set(c(0), 1); // claims the victim already did one op
    fake.m_mut().set(c(0), faust_crypto::sha256(b"fake digest"));
    let sig = keys
        .keypair(1)
        .unwrap()
        .sign(SigContext::Commit, &fake.signing_bytes());

    victim.begin_write(Value::from("w")).expect("idle");
    let reply = ReplyMsg {
        last_committer: c(1),
        commit_version: SignedVersion {
            version: fake,
            sig: Some(sig),
        },
        read: None,
        pending: vec![],
        proofs: vec![None, None],
    };
    assert_eq!(victim.handle_reply(reply), Err(Fault::OwnTimestampMismatch));
}

#[test]
fn writer_version_ahead_detected() {
    // Forge (with test keys) a writer version that is NOT ≼ the reply's
    // commit version.
    let keys = KeySet::generate(2, b"ahead");
    let mut victim = UstorClient::new(c(1), 2, keys.keypair(1).unwrap().clone(), keys.registry());

    // Writer C0's fake version claims two ops; commit version claims one.
    let mut writer_v = faust_types::Version::initial(2);
    writer_v.v_mut().set(c(0), 2);
    writer_v.m_mut().set(c(0), faust_crypto::sha256(b"w2"));
    let writer_sig = keys
        .keypair(0)
        .unwrap()
        .sign(SigContext::Commit, &writer_v.signing_bytes());

    let mut commit_v = faust_types::Version::initial(2);
    commit_v.v_mut().set(c(0), 1);
    commit_v.m_mut().set(c(0), faust_crypto::sha256(b"w1"));
    let commit_sig = keys
        .keypair(0)
        .unwrap()
        .sign(SigContext::Commit, &commit_v.signing_bytes());

    victim.begin_read(c(0)).expect("idle");
    let reply = ReplyMsg {
        last_committer: c(0),
        commit_version: SignedVersion {
            version: commit_v,
            sig: Some(commit_sig),
        },
        read: Some(faust_types::ReadReply {
            writer_version: SignedVersion {
                version: writer_v,
                sig: Some(writer_sig),
            },
            mem_timestamp: 1,
            mem_value: Some(Value::from("v")),
            mem_data_sig: Some(Signature::garbage()),
        }),
        pending: vec![],
        proofs: vec![None, None],
    };
    let err = victim.handle_reply(reply).expect_err("detects");
    // The garbage data signature (line 50) or the ahead version (line 51)
    // both prove misbehaviour; line 50 runs first in the algorithm.
    assert!(
        matches!(err, Fault::BadDataSignature | Fault::WriterVersionAhead),
        "got {err:?}"
    );
}

#[test]
fn fabricated_initial_register_value_detected() {
    // A server claiming t_j = 0 (never written) while attaching a value
    // must be caught even though line 50 is skipped for t_j = 0.
    let mut cs = clients(2, b"fab");
    let mut server = UstorServer::new(2);
    let s1 = cs[1].begin_read(c(0)).expect("idle");
    let mut r1 = server.on_submit(c(1), s1);
    let mut reply = r1.pop().expect("reply").1;
    let read = reply.read.as_mut().expect("read part");
    read.mem_value = Some(Value::from("fabricated"));
    assert_eq!(
        cs[1].handle_reply(reply),
        Err(Fault::MalformedReply("nonempty initial register"))
    );
}

// --- Crash-silent server ----------------------------------------------------

#[test]
fn mute_server_never_trips_a_check() {
    let n = 2;
    let server = CrashServer::new(n, 3);
    let mut driver = Driver::new(n, Box::new(server), SimConfig::default(), b"mute");
    driver.push_ops(
        c(0),
        vec![
            WorkloadOp::Write(Value::from("a1")),
            WorkloadOp::Write(Value::from("a2")),
            WorkloadOp::Write(Value::from("a3")),
        ],
    );
    driver.push_ops(
        c(1),
        vec![
            WorkloadOp::Write(Value::from("b1")),
            WorkloadOp::Write(Value::from("b2")),
        ],
    );
    let result = driver.run();
    // No USTOR check fires — silence is a pure liveness failure.
    assert!(!result.detected_fault());
    // But some operations never complete.
    assert!(result.incomplete_ops > 0);
}

#[test]
fn volatile_server_restart_is_detected_as_rollback() {
    // A server whose MEM/SVER live only in memory crashes after message 7
    // and "restarts" from the volatile MemoryBackend — i.e. from scratch.
    // The erased schedule is indistinguishable from a rollback attack,
    // and the first reply after the restart carries a rewound version
    // that some client pins as a protocol violation. This is exactly the
    // failure mode the persistent backend (`faust-store`) exists to
    // remove: with a complete log the same crash/restart is invisible
    // (proved in `faust-store/tests/attacks.rs`).
    let n = 2;
    let server = faust_ustor::CrashRestartServer::new(
        n,
        Box::new(faust_ustor::MemoryBackend),
        7, // mid-run: after C0's and C1's first ops committed
    )
    .expect("memory backend never fails");
    let mut driver = Driver::new(n, Box::new(server), SimConfig::default(), b"volatile");
    driver.push_ops(
        c(0),
        vec![
            WorkloadOp::Write(Value::from("a1")),
            WorkloadOp::Write(Value::from("a2")),
            WorkloadOp::Write(Value::from("a3")),
        ],
    );
    driver.push_ops(
        c(1),
        vec![
            WorkloadOp::Write(Value::from("b1")),
            WorkloadOp::Write(Value::from("b2")),
            WorkloadOp::Write(Value::from("b3")),
        ],
    );
    let result = driver.run();
    assert!(
        result.detected_fault(),
        "a restarted volatile server must be caught"
    );
    // Which check fires first depends on interleaving: a rewound version
    // (regression / own-timestamp) or the erased proof store — all three
    // are symptoms of the same lost-state rollback.
    assert!(
        result.faults.iter().any(|(_, f)| matches!(
            f,
            Fault::VersionRegression | Fault::OwnTimestampMismatch | Fault::MissingProofSignature
        )),
        "the rollback should trip a state-loss check, got {:?}",
        result.faults
    );
}

#[test]
fn tamper_server_reports_firing() {
    let mut server = TamperServer::new(2, c(0), 0, Tamper::EchoOwnTuple);
    let mut cs = clients(2, b"fired");
    let s = cs[0].begin_write(Value::from("x")).expect("idle");
    let _ = server.on_submit(c(0), s);
    assert!(server.has_fired());
}

// --- Trust model: what a verification-key-holding server can do -------------
//
// The paper assumes the untrusted server cannot produce any client's
// signatures. Whether handing the server the verifier registry preserves
// that depends on the scheme: Ed25519 registries hold public keys only,
// HMAC registries hold the signing secrets themselves. These tests make
// both sides of `docs/trust-model.md` executable.

mod trust_model {
    use super::c;
    use faust_crypto::sig::{KeySet, SigContext, Signature};
    use faust_types::op::{data_signing_bytes, submit_signing_bytes};
    use faust_types::{InvocationTuple, OpKind, SubmitMsg, UstorMsg, Value};
    use faust_ustor::{IngressVerification, ServerEngine, UstorClient, UstorServer};
    use std::sync::Arc;

    /// A server armed with every client's *public* key still cannot get a
    /// forged SUBMIT past its own ingress verification — and `try_forge`,
    /// the API that makes HMAC forgery trivial, has nothing to offer.
    #[test]
    fn server_with_public_keys_cannot_forge_a_submit() {
        let n = 2;
        let keys = KeySet::generate_ed25519(n, b"pk-attack");
        let registry = keys.registry();
        assert!(registry.is_public(), "Ed25519 registry is public-only");
        assert!(
            registry.try_forge(0, SigContext::Submit, b"evil").is_none(),
            "public keys must not sign"
        );

        for batched in [false, true] {
            let verification = if batched {
                IngressVerification::Batched(Arc::new(keys.registry()))
            } else {
                IngressVerification::PerMessage(Arc::new(keys.registry()))
            };
            let mut engine =
                ServerEngine::new(n, Box::new(UstorServer::new(n))).with_verification(verification);
            // One genuine operation gives the attacker real signatures to
            // replay.
            let mut honest =
                UstorClient::new(c(0), n, keys.keypair(0).unwrap().clone(), keys.registry());
            let genuine = honest.begin_write(Value::from("honest")).unwrap();
            engine.enqueue(c(0), UstorMsg::Submit(genuine.clone()));
            engine.process_all();
            assert_eq!(engine.stats().submits, 1, "batched={batched}");
            while engine.poll_output().is_some() {}

            // Forgery 1: fresh content, garbage Ed25519-shaped signatures.
            let mut garbage = genuine.clone();
            garbage.timestamp = 2;
            garbage.value = Some(Value::from("evil"));
            garbage.tuple.sig = Signature::garbage_ed25519();
            garbage.data_sig = Signature::garbage_ed25519();
            // Forgery 2: replay the genuine SUBMIT-signature under a new
            // timestamp (the signature covers t, so it cannot transfer).
            let mut bumped = genuine.clone();
            bumped.timestamp = 2;
            // Forgery 3: keep the signatures, swap the written value (the
            // DATA-signature covers the value hash).
            let mut swapped = genuine.clone();
            swapped.value = Some(Value::from("evil"));

            for (label, forgery) in [
                ("garbage", garbage),
                ("bumped", bumped),
                ("swapped", swapped),
            ] {
                let rejected_before = engine.stats().rejected;
                engine.enqueue(c(0), UstorMsg::Submit(forgery));
                engine.process_all();
                assert_eq!(
                    engine.stats().rejected,
                    rejected_before + 1,
                    "{label} must be rejected (batched={batched})"
                );
            }
            assert_eq!(engine.stats().submits, 1, "batched={batched}");
            assert!(engine.poll_output().is_none(), "no forged replies");
        }
    }

    /// The contrast case the trust-model doc warns about: an HMAC
    /// registry holds the signing secrets, so a server given one can
    /// manufacture a SUBMIT that sails through its own ingress checks.
    #[test]
    fn hmac_registry_holder_forges_a_submit_by_contrast() {
        let n = 2;
        let keys = KeySet::generate(n, b"hmac-attack");
        let registry = keys.registry();
        assert!(!registry.is_public());

        let t = 1;
        let value = Value::from("poison");
        let value_hash = faust_crypto::sha256(value.as_bytes());
        let submit_sig = registry
            .try_forge(
                0,
                SigContext::Submit,
                &submit_signing_bytes(OpKind::Write, c(0), t),
            )
            .expect("HMAC registries can forge");
        let data_sig = registry
            .try_forge(
                0,
                SigContext::Data,
                &data_signing_bytes(t, Some(value_hash)),
            )
            .expect("HMAC registries can forge");
        let forged = SubmitMsg {
            timestamp: t,
            tuple: InvocationTuple {
                client: c(0),
                kind: OpKind::Write,
                register: c(0),
                sig: submit_sig,
            },
            value: Some(value),
            data_sig,
            piggyback: None,
        };

        let mut engine = ServerEngine::new(n, Box::new(UstorServer::new(n)))
            .with_verification(IngressVerification::PerMessage(Arc::new(keys.registry())));
        engine.enqueue(c(0), UstorMsg::Submit(forged));
        engine.process_all();
        assert_eq!(
            engine.stats().submits,
            1,
            "the forgery passes HMAC ingress verification — that is the attack"
        );
        assert_eq!(engine.stats().rejected, 0);
    }

    /// The whole simulated USTOR stack — driver, engine, clients — runs
    /// unchanged over Ed25519 keys, and detection still works: a server
    /// that garbles a commit signature is caught by the reader.
    #[test]
    fn full_driver_runs_and_detects_over_ed25519() {
        use faust_sim::SimConfig;
        use faust_ustor::adversary::{Tamper, TamperServer};
        use faust_ustor::{Driver, WorkloadOp};

        // Correct server: everything completes, no faults.
        let mut driver = Driver::new_with_scheme(
            2,
            Box::new(UstorServer::new(2)),
            SimConfig::default(),
            b"ed25519-sim",
            faust_crypto::SigScheme::Ed25519,
        );
        driver.push_op(c(0), WorkloadOp::Write(Value::from("v1")));
        driver.push_op(c(1), WorkloadOp::Read(c(0)));
        let result = driver.run();
        assert!(!result.detected_fault(), "{:?}", result.faults);
        assert_eq!(result.incomplete_ops, 0);

        // Tampering server: the corrupted commit signature is detected
        // under Ed25519 exactly as under HMAC.
        let server = TamperServer::new(2, c(1), 1, Tamper::CorruptCommitSig);
        let mut driver = Driver::new_with_scheme(
            2,
            Box::new(server),
            SimConfig::default(),
            b"ed25519-tamper",
            faust_crypto::SigScheme::Ed25519,
        );
        driver.push_op(c(0), WorkloadOp::Write(Value::from("a")));
        driver.push_op(c(1), WorkloadOp::Write(Value::from("b")));
        driver.push_op(c(1), WorkloadOp::Write(Value::from("c")));
        let faults = driver.run().faults;
        assert!(!faults.is_empty(), "tampering must be detected");
    }
}
