//! Readiness polling over raw OS syscalls — the only unsafe code in the
//! repository.
//!
//! The reactor needs exactly one primitive the standard library does not
//! expose: "block until any of these sockets is readable/writable". On
//! Linux that is epoll (O(ready) per wakeup); on other Unix systems the
//! portable fallback is `poll(2)` (O(registered) per wakeup — fine at the
//! connection counts this transport caps itself to). Both are wrapped
//! behind the same tiny [`Poller`] API so the reactor proper contains no
//! platform code and no unsafe.
//!
//! The shim is deliberately minimal and auditable:
//!
//! * the only unsafe operations are the four FFI calls (`epoll_create1`,
//!   `epoll_ctl`, `epoll_wait`, `close` — resp. `poll`), each with
//!   arguments built from plain owned values on the lines right above;
//! * no pointer outlives its call; the event buffer is a local `Vec`
//!   whose length is set from the syscall's return value only after a
//!   successful return;
//! * file descriptors are *borrowed* from `std` types (`TcpListener`,
//!   `TcpStream`) that keep owning and closing them — the poller never
//!   closes a registered fd, only its own epoll fd.

#![allow(unsafe_code)]

use std::os::raw::c_int;
use std::time::Duration;

/// A registered fd became ready. `token` is whatever the caller passed at
/// registration (the reactor uses slab slots).
#[derive(Debug, Clone, Copy)]
pub struct ReadyEvent {
    /// Caller-chosen registration token.
    pub token: usize,
    /// Readable (or peer hung up — a subsequent `read` returns 0/error).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error/hangup condition reported by the OS. Always also treated as
    /// readable by the reactor so the close is observed via `read`.
    pub hangup: bool,
}

/// Converts an optional timeout to the millisecond argument both epoll
/// and poll take: `None` → block forever (-1), rounding *up* so a 100 µs
/// timeout does not spin at 0 ms.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            if t.is_zero() {
                0
            } else {
                ms.clamp(1, c_int::MAX as u128) as c_int
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, ReadyEvent};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // Values from the Linux UAPI headers; stable ABI.
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`. Packed on x86 (the kernel ABI there has no
    /// padding between `events` and `data`); naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Readiness poller backed by epoll.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        /// Creates an epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: no pointers; returns an owned fd or -1.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(
            &self,
            op: c_int,
            fd: RawFd,
            token: usize,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: (if read { EPOLLIN | EPOLLRDHUP } else { 0 })
                    | (if write { EPOLLOUT } else { 0 }),
                data: token as u64,
            };
            // SAFETY: `ev` is a live local for the duration of the call;
            // the kernel copies it and keeps no reference.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Starts watching `fd` with the given interest; `token` comes
        /// back in every [`ReadyEvent`](super::ReadyEvent) for it.
        pub fn register(
            &mut self,
            fd: RawFd,
            token: usize,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
        }

        /// Replaces the interest set of an already-registered `fd`.
        pub fn modify(
            &mut self,
            fd: RawFd,
            token: usize,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
        }

        /// Stops watching `fd`.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        /// One wait: fills `out` with ready events (cleared first).
        /// A signal interruption is reported as zero events, not an error.
        pub fn wait(
            &mut self,
            out: &mut Vec<ReadyEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            out.clear();
            // SAFETY: `buf` is owned, lives across the call, and its
            // capacity bounds `maxevents`; the kernel writes at most
            // `maxevents` entries and the return value tells how many.
            let got = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms(timeout),
                )
            };
            if got < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &self.buf[..got as usize] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let token = ev.data as usize;
                out.push(ReadyEvent {
                    token,
                    readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `epfd` is the fd `epoll_create1` handed us and is
            // closed exactly once, here.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{timeout_ms, ReadyEvent};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::{c_int, c_short, c_uint};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    }

    /// Portable `poll(2)` fallback: keeps a registration table and
    /// rebuilds the pollfd array per wait. O(registered) per wakeup —
    /// acceptable at the reactor's capped connection counts.
    pub struct Poller {
        registered: HashMap<RawFd, (usize, bool, bool)>,
    }

    impl Poller {
        /// Creates an empty registration table.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: HashMap::new(),
            })
        }

        /// Starts watching `fd` with the given interest; `token` comes
        /// back in every [`ReadyEvent`](super::ReadyEvent) for it.
        pub fn register(
            &mut self,
            fd: RawFd,
            token: usize,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.registered.insert(fd, (token, read, write));
            Ok(())
        }

        /// Replaces the interest set of an already-registered `fd`.
        pub fn modify(
            &mut self,
            fd: RawFd,
            token: usize,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.registered.insert(fd, (token, read, write));
            Ok(())
        }

        /// Stops watching `fd`.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.remove(&fd);
            Ok(())
        }

        /// One wait: fills `out` with ready events (cleared first).
        /// A signal interruption is reported as zero events, not an error.
        pub fn wait(
            &mut self,
            out: &mut Vec<ReadyEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<PollFd> = self
                .registered
                .iter()
                .map(|(&fd, &(_, read, write))| PollFd {
                    fd,
                    events: (if read { POLLIN } else { 0 }) | (if write { POLLOUT } else { 0 }),
                    revents: 0,
                })
                .collect();
            if fds.is_empty() {
                // Nothing registered: honour the timeout by sleeping.
                if let Some(t) = timeout {
                    std::thread::sleep(t);
                }
                return Ok(());
            }
            // SAFETY: `fds` is an owned, live Vec for the duration of the
            // call; `nfds` equals its length.
            let got = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms(timeout)) };
            if got < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                let Some(&(token, _, _)) = self.registered.get(&pfd.fd) else {
                    continue;
                };
                out.push(ReadyEvent {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLHUP | POLLERR) != 0,
                });
            }
            Ok(())
        }
    }
}

pub use imp::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 7, true, false)
            .unwrap();

        let mut events = Vec::new();
        // Nothing pending: a short wait times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
    }

    #[test]
    fn write_interest_fires_and_can_be_cleared() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server_side.as_raw_fd(), 1, true, true)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // Clearing write interest leaves only read events; data from the
        // peer then reports readable.
        poller
            .modify(server_side.as_raw_fd(), 1, true, false)
            .unwrap();
        client.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        assert!(events.iter().all(|e| !e.writable));
        poller.deregister(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn zero_timeout_returns_immediately() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 0, true, false)
            .unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(start.elapsed() < Duration::from_millis(100));
        assert!(events.is_empty());
    }
}
