//! E10 (part 2): end-to-end USTOR operation cost through the client and
//! server state machines (no network), as a function of the number of
//! clients `n` — plus the server engine's SUBMIT ingress-verification
//! cost, batched vs. per-message.

use faust_bench::timing::{bench, bench_quiet, report_speedup, section};
use faust_bench::{run_one_read, run_one_write, steady_state};
use faust_crypto::sig::{KeySet, SigContext, SigScheme, Signer, Verifier, VerifyItem};
use faust_types::{ClientId, Value};
use std::hint::black_box;

fn main() {
    section("ustor ops through client+server state machines");
    for n in [4usize, 16, 64] {
        // Persistent state: each iteration is one more operation in a
        // long-running execution (per-op cost is flat in history length —
        // vectors have fixed arity n).
        let (mut server, mut clients) = steady_state(n, 64);
        let mut seq = 0u64;
        bench(&format!("ustor_write_op/n{n}"), || {
            seq += 1;
            black_box(run_one_write(
                &mut server,
                &mut clients[0],
                Value::unique(0, seq),
            ));
        });
        let (mut server, mut clients) = steady_state(n, 64);
        bench(&format!("ustor_read_op/n{n}"), || {
            black_box(run_one_read(&mut server, &mut clients[1], ClientId::new(0)));
        });
    }

    section("sustained writes through one client (n=16)");
    let (mut server, mut clients) = steady_state(16, 64);
    let mut seq = 1_000u64;
    bench("ustor_sustained/write_chain_n16", || {
        seq += 1;
        black_box(run_one_write(
            &mut server,
            &mut clients[0],
            Value::unique(0, seq),
        ));
    });

    section("SUBMIT ingress verification: per-message vs batched");
    // A realistic ingress batch: SUBMIT + DATA signature per message,
    // many clients interleaved — what the engine verifies when a burst of
    // traffic is queued. Run over both schemes: HMAC is the benchmarking
    // fast path, Ed25519 the sound deployment (docs/trust-model.md); the
    // Ed25519 sizes are smaller because each verification is ~3 orders of
    // magnitude costlier, which is exactly why its batch equation matters.
    let configs = [
        (SigScheme::Hmac, 4usize, 64usize),
        (SigScheme::Hmac, 16, 64),
        (SigScheme::Hmac, 16, 256),
        (SigScheme::Ed25519, 4, 16),
        (SigScheme::Ed25519, 16, 64),
    ];
    for (scheme, n, batch_size) in configs {
        let keys = KeySet::generate_with(scheme, n, b"bench-verify");
        let registry = keys.registry();
        let mut items: Vec<VerifyItem> = Vec::with_capacity(2 * batch_size);
        for k in 0..batch_size {
            let signer_idx = (k % n) as u32;
            let kp = keys.keypair(signer_idx).unwrap();
            let submit_bytes = faust_types::op::submit_signing_bytes(
                faust_types::OpKind::Write,
                ClientId::new(signer_idx),
                k as u64 + 1,
            );
            let data_bytes = faust_types::op::data_signing_bytes(
                k as u64 + 1,
                Some(faust_crypto::sha256(&k.to_be_bytes())),
            );
            items.push(VerifyItem {
                signer: signer_idx,
                context: SigContext::Submit,
                sig: kp.sign(SigContext::Submit, &submit_bytes),
                message: submit_bytes,
            });
            items.push(VerifyItem {
                signer: signer_idx,
                context: SigContext::Data,
                sig: kp.sign(SigContext::Data, &data_bytes),
                message: data_bytes,
            });
        }

        let per_message = bench_quiet(
            &format!("verify_per_message/{scheme:?}/n{n}_batch{batch_size}"),
            || {
                for item in &items {
                    assert!(registry.verify(
                        item.signer,
                        item.context,
                        black_box(&item.message),
                        &item.sig
                    ));
                }
            },
        );
        let batched = bench_quiet(
            &format!("verify_batched/{scheme:?}/n{n}_batch{batch_size}"),
            || {
                let verdicts = registry.verify_batch(black_box(&items));
                assert!(verdicts.iter().all(|&v| v));
            },
        );
        let speedup = report_speedup(&per_message, &batched);
        assert!(
            speedup > 1.0,
            "batched {scheme:?} verification must beat per-message ({speedup:.2}x)"
        );
    }
}
