//! Routing helpers for a sharded server: register→shard placement and
//! the per-client FIFO merge of replies produced by different shards.
//!
//! The register space partitions by owner (`register % shards` — FAUST
//! registers are single-writer, so the split is conflict-free), but a
//! single client's *operations* do not: its writes land on its own
//! register's shard while its reads follow the register it reads. Under
//! group commit each shard releases its held replies on its own fsync
//! schedule, so replies for one client can surface from different
//! shards out of submission order. The transport invariant ("no
//! reordering within one client's stream") must nevertheless hold — the
//! fail-aware client interprets replies strictly in the order it
//! submitted.
//!
//! [`ShardRouter`] restores that order. Every inbound message gets a
//! global sequence number in arrival order (the schedule that *defines*
//! the total order of Algorithm 2); each shard releases replies for the
//! operations it owns in its own dispatch order; the router zips those
//! releases against its per-shard dispatch FIFOs and holds each reply
//! until every earlier reply of the same client has been released.
//! Replies to *different* clients carry no ordering guarantee, exactly
//! as with a single engine.

use faust_types::{ClientId, ReplyMsg};
use std::collections::{HashMap, VecDeque};

/// The shard that owns `register`: `register % shards`.
///
/// Registers are single-writer, so this places each client's writes —
/// and all state for the register — on exactly one shard.
pub fn shard_of(register: ClientId, shards: usize) -> usize {
    assert!(shards > 0, "a sharded deployment has at least one shard");
    register.index() % shards
}

/// Per-client reorder state: the sequence numbers this client is owed
/// replies for (in submission order) and the replies that have already
/// surfaced from their shards.
#[derive(Debug, Default)]
struct ClientQueue {
    expected: VecDeque<u64>,
    arrived: HashMap<u64, ReplyMsg>,
}

/// Merges per-shard reply streams back into per-client FIFO order.
///
/// Protocol per inbound message:
/// 1. [`ShardRouter::assign`] hands out the global sequence number;
/// 2. if the message will produce a reply (a SUBMIT — commits are
///    acknowledged implicitly), [`ShardRouter::dispatch`] records which
///    shard owes it;
/// 3. when a shard releases replies (its group-commit flush),
///    [`ShardRouter::completed`] matches them against that shard's
///    dispatch FIFO and returns every reply that is now at the head of
///    its client's queue.
#[derive(Debug)]
pub struct ShardRouter {
    next_seq: u64,
    /// Per-shard FIFO of `(seq, client)` for owned submits whose reply
    /// has not yet surfaced. A shard releases replies in the order it
    /// applied the submits, which is dispatch order.
    in_flight: Vec<VecDeque<(u64, ClientId)>>,
    clients: Vec<ClientQueue>,
    outstanding: usize,
}

impl ShardRouter {
    /// A router over `shards` shards serving `n` clients.
    pub fn new(shards: usize, n: usize) -> Self {
        assert!(shards > 0, "a sharded deployment has at least one shard");
        ShardRouter {
            next_seq: 0,
            in_flight: (0..shards).map(|_| VecDeque::new()).collect(),
            clients: (0..n).map(|_| ClientQueue::default()).collect(),
            outstanding: 0,
        }
    }

    /// Number of shards this router fans out over.
    pub fn shards(&self) -> usize {
        self.in_flight.len()
    }

    /// The next global sequence number (what [`ShardRouter::assign`]
    /// will hand out), i.e. how many messages have been sequenced.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Replies dispatched but not yet released back to their clients.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Assigns the global sequence number for the next inbound message.
    /// Every message is sequenced — including commits, which produce no
    /// reply — because the sequence *is* the schedule all shard
    /// replicas apply.
    pub fn assign(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Resumes sequencing after recovery: the next [`ShardRouter::assign`]
    /// returns `next_seq`.
    ///
    /// # Panics
    ///
    /// Panics if replies are outstanding — reseeding mid-flight would
    /// desynchronize the dispatch FIFOs.
    pub fn resume_at(&mut self, next_seq: u64) {
        assert_eq!(self.outstanding, 0, "cannot reseed with replies in flight");
        self.next_seq = next_seq;
    }

    /// Records that `shard` owes a reply to `client` for the operation
    /// sequenced as `seq`. Must be called in `seq` order.
    ///
    /// # Panics
    ///
    /// Panics if `shard` or `client` is out of range.
    pub fn dispatch(&mut self, shard: usize, seq: u64, client: ClientId) {
        self.in_flight[shard].push_back((seq, client));
        self.clients[client.index()].expected.push_back(seq);
        self.outstanding += 1;
    }

    /// Feeds replies released by `shard` (in its apply order) into the
    /// merge, returning every reply now releasable without violating
    /// some client's FIFO order. The returned replies are in global
    /// sequence order.
    ///
    /// # Panics
    ///
    /// Panics if `shard` releases more replies than it owes, or a reply
    /// addressed to a different client than the dispatch recorded —
    /// both would mean the shard broke the single-engine contract.
    pub fn completed(
        &mut self,
        shard: usize,
        replies: Vec<(ClientId, ReplyMsg)>,
    ) -> Vec<(ClientId, ReplyMsg)> {
        let mut touched: Vec<ClientId> = Vec::new();
        for (to, reply) in replies {
            let (seq, expected_to) = self.in_flight[shard]
                .pop_front()
                .expect("shard released a reply it does not owe");
            assert_eq!(
                to, expected_to,
                "shard {shard} replied to {to} for seq {seq}, owed to {expected_to}"
            );
            self.clients[to.index()].arrived.insert(seq, reply);
            touched.push(to);
        }
        // Release the contiguous head of every touched client's queue,
        // collecting (seq, client, reply) so the batch comes out in
        // global order across clients too.
        let mut out: Vec<(u64, ClientId, ReplyMsg)> = Vec::new();
        for to in touched {
            let queue = &mut self.clients[to.index()];
            while let Some(&seq) = queue.expected.front() {
                match queue.arrived.remove(&seq) {
                    Some(reply) => {
                        queue.expected.pop_front();
                        self.outstanding -= 1;
                        out.push((seq, to, reply));
                    }
                    None => break,
                }
            }
        }
        out.sort_by_key(|(seq, _, _)| *seq);
        out.into_iter().map(|(_, to, reply)| (to, reply)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_types::SignedVersion;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    /// A dummy reply distinguishable by `tag` (the router never looks
    /// inside replies, only at the address — `proofs.len()` stands in
    /// as an inert marker).
    fn reply(tag: usize) -> ReplyMsg {
        ReplyMsg {
            last_committer: c(0),
            commit_version: SignedVersion::initial(2),
            read: None,
            pending: Vec::new(),
            proofs: vec![None; tag],
        }
    }

    fn tag(msg: &ReplyMsg) -> usize {
        msg.proofs.len()
    }

    #[test]
    fn shard_of_partitions_by_register() {
        assert_eq!(shard_of(c(0), 4), 0);
        assert_eq!(shard_of(c(5), 4), 1);
        assert_eq!(shard_of(c(7), 4), 3);
        // One shard: everything lands on shard 0.
        for i in 0..8 {
            assert_eq!(shard_of(c(i), 1), 0);
        }
    }

    #[test]
    fn in_order_release_passes_straight_through() {
        let mut r = ShardRouter::new(2, 2);
        let s0 = r.assign();
        r.dispatch(0, s0, c(0));
        let out = r.completed(0, vec![(c(0), reply(1))]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, c(0));
        assert_eq!(tag(&out[0].1), 1);
        assert_eq!(r.outstanding(), 0);
    }

    #[test]
    fn reply_is_held_until_the_clients_earlier_reply_surfaces() {
        // Client 0's op 1 goes to shard 0, op 2 to shard 1. Shard 1
        // flushes first: its reply must be held; both release (in
        // order) once shard 0 flushes.
        let mut r = ShardRouter::new(2, 1);
        let s0 = r.assign();
        r.dispatch(0, s0, c(0));
        let s1 = r.assign();
        r.dispatch(1, s1, c(0));

        let early = r.completed(1, vec![(c(0), reply(2))]);
        assert!(early.is_empty(), "later op must wait for the earlier one");
        assert_eq!(r.outstanding(), 2);

        let out = r.completed(0, vec![(c(0), reply(1))]);
        let tags: Vec<usize> = out.iter().map(|(_, m)| tag(m)).collect();
        assert_eq!(tags, vec![1, 2], "per-client FIFO restored");
        assert_eq!(r.outstanding(), 0);
    }

    #[test]
    fn clients_do_not_block_each_other() {
        // Client 0 waits on slow shard 0; client 1's reply from shard 1
        // releases immediately.
        let mut r = ShardRouter::new(2, 2);
        let s0 = r.assign();
        r.dispatch(0, s0, c(0));
        let s1 = r.assign();
        r.dispatch(1, s1, c(1));
        let out = r.completed(1, vec![(c(1), reply(7))]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, c(1));
        assert_eq!(r.outstanding(), 1);
    }

    #[test]
    fn batched_shard_flush_releases_in_global_order() {
        // One shard owes three replies across two clients and flushes
        // them together (a group commit); the merge keeps global order.
        let mut r = ShardRouter::new(1, 2);
        for client in [c(0), c(1), c(0)] {
            let seq = r.assign();
            r.dispatch(0, seq, client);
        }
        let out = r.completed(
            0,
            vec![(c(0), reply(1)), (c(1), reply(2)), (c(0), reply(3))],
        );
        let got: Vec<(ClientId, usize)> = out.iter().map(|(to, m)| (*to, tag(m))).collect();
        assert_eq!(got, vec![(c(0), 1), (c(1), 2), (c(0), 3)]);
    }

    #[test]
    #[should_panic(expected = "does not owe")]
    fn unowed_reply_panics() {
        let mut r = ShardRouter::new(1, 1);
        r.completed(0, vec![(c(0), reply(1))]);
    }

    #[test]
    fn commits_consume_sequence_numbers_without_dispatch() {
        let mut r = ShardRouter::new(2, 1);
        assert_eq!(r.assign(), 0); // a commit: sequenced, no reply owed
        let s = r.assign();
        assert_eq!(s, 1);
        r.dispatch(1, s, c(0));
        assert_eq!(r.outstanding(), 1);
        assert_eq!(r.next_seq(), 2);
    }
}
