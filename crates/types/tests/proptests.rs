//! Property-based tests for the protocol data model: the version order of
//! Definition 7 is a genuine partial order, and wire encodings round-trip.

use faust_crypto::{sha256, Digest};
use faust_types::{
    ClientId, CommitMsg, DigestVec, InvocationTuple, OpKind, ReadReply, ReplyMsg, SignedVersion,
    SubmitMsg, TimestampVec, UstorMsg, Value, Version, VersionCmp, Wire,
};
use proptest::prelude::*;

const N: usize = 4;

/// A small pool of digests so that equal-timestamp entries sometimes have
/// equal and sometimes different digests.
fn arb_digest() -> impl Strategy<Value = Option<Digest>> {
    prop_oneof![
        Just(None),
        (0u8..6).prop_map(|label| Some(sha256(&[label]))),
    ]
}

/// Versions shaped like the ones the protocol actually commits: a digest
/// entry is `⊥` exactly when the timestamp entry is 0 (no operation of that
/// client reflected yet).
fn arb_version() -> impl Strategy<Value = Version> {
    (
        proptest::collection::vec(0u64..4, N),
        proptest::collection::vec(arb_digest(), N),
    )
        .prop_map(|(v, m)| {
            let m = v
                .iter()
                .zip(m)
                .map(|(&t, d)| if t == 0 { None } else { d.or(Some(sha256(b"fill"))) })
                .collect();
            Version::new(TimestampVec::from_vec(v), DigestVec::from_vec(m))
        })
}

fn arb_sig() -> impl Strategy<Value = faust_crypto::Signature> {
    (0u8..16).prop_map(|label| faust_crypto::Signature::from_bytes(sha256(&[label]).into_bytes()))
}

fn arb_value() -> impl Strategy<Value = Value> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::new)
}

fn arb_tuple() -> impl Strategy<Value = InvocationTuple> {
    (
        0u32..N as u32,
        prop_oneof![Just(OpKind::Read), Just(OpKind::Write)],
        0u32..N as u32,
        arb_sig(),
    )
        .prop_map(|(c, kind, r, sig)| InvocationTuple {
            client: ClientId::new(c),
            kind,
            register: ClientId::new(r),
            sig,
        })
}

fn arb_signed_version() -> impl Strategy<Value = SignedVersion> {
    (arb_version(), proptest::option::of(arb_sig()))
        .prop_map(|(version, sig)| SignedVersion { version, sig })
}

fn arb_submit() -> impl Strategy<Value = SubmitMsg> {
    (
        0u64..1000,
        arb_tuple(),
        proptest::option::of(arb_value()),
        arb_sig(),
        proptest::option::of((arb_version(), arb_sig(), arb_sig())),
    )
        .prop_map(|(timestamp, tuple, value, data_sig, pb)| SubmitMsg {
            timestamp,
            tuple,
            value,
            data_sig,
            piggyback: pb.map(|(version, commit_sig, proof_sig)| CommitMsg {
                version,
                commit_sig,
                proof_sig,
            }),
        })
}

fn arb_reply() -> impl Strategy<Value = ReplyMsg> {
    (
        0u32..N as u32,
        arb_signed_version(),
        proptest::option::of((
            arb_signed_version(),
            0u64..100,
            proptest::option::of(arb_value()),
            proptest::option::of(arb_sig()),
        )),
        proptest::collection::vec(arb_tuple(), 0..4),
        proptest::collection::vec(proptest::option::of(arb_sig()), N),
    )
        .prop_map(|(c, cv, read, pending, proofs)| ReplyMsg {
            last_committer: ClientId::new(c),
            commit_version: cv,
            read: read.map(|(writer_version, mem_timestamp, mem_value, mem_data_sig)| ReadReply {
                writer_version,
                mem_timestamp,
                mem_value,
                mem_data_sig,
            }),
            pending,
            proofs,
        })
}

proptest! {
    #[test]
    fn version_le_is_reflexive(v in arb_version()) {
        prop_assert!(v.le(&v));
        prop_assert_eq!(v.compare(&v), VersionCmp::Equal);
    }

    #[test]
    fn version_le_is_antisymmetric(a in arb_version(), b in arb_version()) {
        if a.le(&b) && b.le(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn version_le_is_transitive(a in arb_version(), b in arb_version(), c in arb_version()) {
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c));
        }
    }

    #[test]
    fn version_compare_is_consistent_with_le(a in arb_version(), b in arb_version()) {
        let cmp = a.compare(&b);
        match cmp {
            VersionCmp::Equal => prop_assert!(a.le(&b) && b.le(&a)),
            VersionCmp::Less => prop_assert!(a.le(&b) && !b.le(&a)),
            VersionCmp::Greater => prop_assert!(!a.le(&b) && b.le(&a)),
            VersionCmp::Incomparable => prop_assert!(!a.le(&b) && !b.le(&a)),
        }
    }

    #[test]
    fn version_le_implies_pointwise_le(a in arb_version(), b in arb_version()) {
        if a.le(&b) {
            prop_assert!(a.v().le(b.v()));
        }
    }

    #[test]
    fn initial_version_below_everything(v in arb_version()) {
        prop_assert!(Version::initial(N).le(&v));
    }

    #[test]
    fn signing_bytes_injective_on_samples(a in arb_version(), b in arb_version()) {
        if a != b {
            prop_assert_ne!(a.signing_bytes(), b.signing_bytes());
        }
    }

    #[test]
    fn submit_roundtrips(m in arb_submit()) {
        prop_assert_eq!(SubmitMsg::decode(&m.encode()), Ok(m));
    }

    #[test]
    fn reply_roundtrips(m in arb_reply()) {
        prop_assert_eq!(ReplyMsg::decode(&m.encode()), Ok(m));
    }

    #[test]
    fn commit_roundtrips(version in arb_version(), cs in arb_sig(), ps in arb_sig()) {
        let m = CommitMsg { version, commit_sig: cs, proof_sig: ps };
        prop_assert_eq!(CommitMsg::decode(&m.encode()), Ok(m));
    }

    #[test]
    fn enum_roundtrips(m in prop_oneof![
        arb_submit().prop_map(UstorMsg::Submit),
        arb_reply().prop_map(UstorMsg::Reply),
    ]) {
        prop_assert_eq!(UstorMsg::decode(&m.encode()), Ok(m));
    }

    #[test]
    fn decode_never_panics_on_junk(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = UstorMsg::decode(&bytes);
        let _ = ReplyMsg::decode(&bytes);
        let _ = SubmitMsg::decode(&bytes);
        let _ = CommitMsg::decode(&bytes);
    }

    #[test]
    fn encoded_len_matches_encode(m in arb_reply()) {
        prop_assert_eq!(m.encoded_len(), m.encode().len());
    }
}
