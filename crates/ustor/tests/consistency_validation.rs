//! Cross-validation: histories produced by the USTOR protocol are fed to
//! the consistency checkers of `faust-consistency`, mechanically verifying
//! the paper's claims:
//!
//! * with a correct server, every execution is linearizable and wait-free
//!   (Definition 5, properties 1–2);
//! * under the forking attacks, executions remain causally consistent and
//!   weakly fork-linearizable up to the point of detection (Definition 5,
//!   property 3; Section 5).

use faust_consistency::{
    check_causal_consistency, check_fork_linearizability, check_linearizability,
    check_wait_freedom, check_weak_fork_linearizability, Budget, Verdict,
};
use faust_sim::{DelayModel, SimConfig};
use faust_types::{ClientId, Value};
use faust_ustor::adversary::{Fig3Server, SplitBrainServer};
use faust_ustor::{random_workloads, Driver, UstorServer, WorkloadOp};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        link_delay: DelayModel::Uniform(1, 20),
        offline_delay: DelayModel::Fixed(50),
    }
}

#[test]
fn correct_server_runs_are_linearizable_and_wait_free() {
    let budget = Budget::default();
    for seed in 0..20 {
        let n = 2 + (seed as usize % 3);
        let mut driver = Driver::new(
            n,
            Box::new(UstorServer::new(n)),
            sim_config(seed),
            b"lin-validation",
        );
        for (i, w) in random_workloads(n, 5, 0.5, seed).into_iter().enumerate() {
            driver.push_ops(c(i as u32), w);
        }
        let result = driver.run();
        assert!(!result.detected_fault(), "seed {seed}");
        assert!(check_wait_freedom(&result.history, &[]), "seed {seed}");
        assert_eq!(
            check_linearizability(&result.history, &budget),
            Verdict::Satisfied,
            "seed {seed}: {:?}",
            result.history
        );
    }
}

#[test]
fn correct_server_with_client_crashes_stays_linearizable() {
    let budget = Budget::default();
    for seed in 0..10 {
        let n = 3;
        let mut driver = Driver::new(
            n,
            Box::new(UstorServer::new(n)),
            sim_config(seed + 100),
            b"crash-validation",
        );
        let mut workloads = random_workloads(n, 4, 0.6, seed).into_iter();
        let mut w0: Vec<WorkloadOp> = workloads.next().unwrap();
        w0.insert(2, WorkloadOp::Crash);
        driver.push_ops(c(0), w0);
        driver.push_ops(c(1), workloads.next().unwrap());
        driver.push_ops(c(2), workloads.next().unwrap());
        let result = driver.run();
        assert!(!result.detected_fault());
        assert!(check_wait_freedom(&result.history, &[c(0)]), "seed {seed}");
        assert_eq!(
            check_linearizability(&result.history, &budget),
            Verdict::Satisfied,
            "seed {seed}"
        );
    }
}

#[test]
fn fig3_driver_history_matches_paper_verdicts() {
    let mut driver = Driver::new(
        2,
        Box::new(Fig3Server::new(2, c(0), c(1))),
        SimConfig::default(),
        b"fig3-validation",
    );
    driver.push_op(c(0), WorkloadOp::Write(Value::from("u")));
    driver.push_ops(
        c(1),
        vec![
            WorkloadOp::Pause(20), // the write completes first
            WorkloadOp::Read(c(0)),
            WorkloadOp::Read(c(0)),
        ],
    );
    let result = driver.run();
    assert!(!result.detected_fault(), "attack is undetectable by USTOR");
    assert_eq!(result.incomplete_ops, 0, "attack preserves wait-freedom");

    let budget = Budget::default();
    let h = &result.history;
    // The reader's first read returned ⊥ despite the completed write.
    let reads: Vec<_> = result.completions[1]
        .iter()
        .map(|done| done.read_value.clone().unwrap())
        .collect();
    assert_eq!(reads, vec![None, Some(Value::from("u"))]);

    assert!(check_linearizability(h, &budget).is_violated());
    assert!(check_fork_linearizability(h, &budget).is_violated());
    assert_eq!(
        check_weak_fork_linearizability(h, &budget),
        Verdict::Satisfied
    );
    assert_eq!(check_causal_consistency(h, &budget), Verdict::Satisfied);
}

#[test]
fn split_brain_histories_stay_weakly_fork_linearizable() {
    let budget = Budget::default();
    for seed in 0..10 {
        let n = 4;
        let server = SplitBrainServer::new(
            n,
            vec![vec![c(0), c(1)], vec![c(2), c(3)]],
            seed as usize % 5,
        );
        let mut driver = Driver::new(n, Box::new(server), sim_config(seed), b"fork-validation");
        for (i, w) in random_workloads(n, 3, 0.7, seed).into_iter().enumerate() {
            driver.push_ops(c(i as u32), w);
        }
        let result = driver.run();
        assert!(
            !result.detected_fault(),
            "a pure fork is undetectable by USTOR alone (seed {seed})"
        );
        // Wait-freedom survives the attack: every operation completes.
        assert_eq!(result.incomplete_ops, 0, "seed {seed}");
        let weak = check_weak_fork_linearizability(&result.history, &budget);
        assert!(
            weak == Verdict::Satisfied || matches!(weak, Verdict::Unknown(_)),
            "seed {seed}: {weak:?}"
        );
        let causal = check_causal_consistency(&result.history, &budget);
        assert_eq!(causal, Verdict::Satisfied, "seed {seed}");
    }
}
