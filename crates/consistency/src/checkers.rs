//! The consistency checkers: linearizability (Definition 2), causal
//! consistency (Definition 3), fork-linearizability, and weak
//! fork-linearizability (Definition 6), plus wait-freedom (Definition 4).
//!
//! All checkers are *decision procedures* on recorded histories, built on
//! the budgeted view search in [`crate::views`]. Each returns a
//! [`Verdict`]: `Satisfied`, `Violated` (with a human-readable reason), or
//! `Unknown` when the search budget ran out — never a wrong answer.

use crate::order::{compute_orders, Orders, MAX_OPS};
use crate::views::{search, SearchOutcome, SearchProblem};
use faust_types::{ClientId, History, OpId, OpKind};

/// Result of a consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The history satisfies the property.
    Satisfied,
    /// The history violates the property; the string explains why.
    Violated(String),
    /// The search budget was exhausted before a decision was reached.
    Unknown(String),
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Satisfied`].
    pub fn is_satisfied(&self) -> bool {
        matches!(self, Verdict::Satisfied)
    }

    /// Whether the verdict is [`Verdict::Violated`].
    pub fn is_violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }
}

/// Search budgets. The defaults decide every history in this repository's
/// tests in well under a second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum DFS nodes per individual view search.
    pub max_nodes: usize,
    /// Maximum candidate views collected per client (forking notions).
    pub max_views_per_client: usize,
    /// Maximum view combinations tried in the joint join-condition search.
    pub max_combinations: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_nodes: 2_000_000,
            max_views_per_client: 256,
            max_combinations: 1_000_000,
        }
    }
}

/// Checks wait-freedom (Definition 4): every operation by a non-crashed
/// client completes.
pub fn check_wait_freedom(history: &History, crashed: &[ClientId]) -> bool {
    history
        .ops()
        .iter()
        .all(|o| o.is_complete() || crashed.contains(&o.client))
}

fn guard(history: &History) -> Result<Orders, Verdict> {
    if history.len() > MAX_OPS {
        return Err(Verdict::Unknown(format!(
            "history has {} ops; checkers are capped at {MAX_OPS}",
            history.len()
        )));
    }
    if !history.written_values_unique() {
        return Err(Verdict::Unknown(
            "written values are not unique; checkers require uniqueness".into(),
        ));
    }
    if !history.is_well_formed() {
        return Err(Verdict::Violated("history is not well-formed".into()));
    }
    Ok(compute_orders(history))
}

/// Set of completed op indices plus pending writes whose value some
/// completed read returned (those must be included in any explanation).
fn linearization_set(history: &History, orders: &Orders) -> u64 {
    let mut mask = 0u64;
    for (i, op) in history.ops().iter().enumerate() {
        if op.is_complete() {
            mask |= 1 << i;
        }
    }
    for (r, w) in orders.reads_from.iter().enumerate() {
        if mask & (1 << r) != 0 {
            if let Some(w) = w {
                mask |= 1 << w; // pending-but-read write
            }
        }
    }
    mask
}

/// Builds a [`SearchProblem`] over `set_mask` with predecessor masks given
/// by `pred_of` (over history indices, pre-restriction).
fn problem<'a>(
    history: &History,
    orders: &Orders,
    set_mask: u64,
    pred_of: impl Fn(usize) -> u64,
    max_nodes: &'a mut usize,
) -> SearchProblem<'a> {
    let set: Vec<usize> = (0..history.len())
        .filter(|i| set_mask & (1 << i) != 0)
        .collect();
    let slot_of: std::collections::HashMap<usize, usize> =
        set.iter().enumerate().map(|(s, &i)| (i, s)).collect();
    let mut preds = Vec::with_capacity(set.len());
    let mut reads_from = Vec::with_capacity(set.len());
    let mut read_register = Vec::with_capacity(set.len());
    let mut write_register = Vec::with_capacity(set.len());
    for &i in &set {
        let mut pred_slots = 0u64;
        let mut p = pred_of(i) & set_mask;
        while p != 0 {
            let a = p.trailing_zeros() as usize;
            p &= p - 1;
            pred_slots |= 1 << slot_of[&a];
        }
        preds.push(pred_slots);
        let op = &history.ops()[i];
        match op.kind {
            OpKind::Read => {
                // Pending reads impose no constraint: not marked as reads.
                if op.is_complete() {
                    reads_from.push(orders.reads_from[i]);
                    read_register.push(Some(op.register.as_u32()));
                } else {
                    reads_from.push(None);
                    read_register.push(None);
                }
                write_register.push(None);
            }
            OpKind::Write => {
                reads_from.push(None);
                read_register.push(None);
                write_register.push(Some(op.register.as_u32()));
            }
        }
    }
    SearchProblem {
        set,
        preds,
        reads_from,
        read_register,
        write_register,
        max_nodes,
    }
}

/// Checks linearizability (Definition 2) and returns a witness
/// linearization if one exists.
pub fn find_linearization(history: &History, budget: &Budget) -> (Verdict, Option<Vec<OpId>>) {
    let orders = match guard(history) {
        Ok(o) => o,
        Err(v) => return (v, None),
    };
    let set_mask = linearization_set(history, &orders);
    for &r in &orders.orphan_reads {
        if set_mask & (1 << r) != 0 {
            return (
                Verdict::Violated(format!("read op{r} returned a value no write produced")),
                None,
            );
        }
    }
    let mut nodes = budget.max_nodes;
    let mut p = problem(
        history,
        &orders,
        set_mask,
        |i| orders.real_time.preds(i) | orders.program.preds(i),
        &mut nodes,
    );
    match search(&mut p, 1, true, |_| true) {
        SearchOutcome::Found(mut seqs) => {
            let witness = seqs
                .pop()
                .map(|s| s.into_iter().map(|i| OpId(i as u64)).collect());
            (Verdict::Satisfied, witness)
        }
        SearchOutcome::NotFound => (
            Verdict::Violated("no real-time-preserving legal permutation exists".into()),
            None,
        ),
        SearchOutcome::Exhausted => (Verdict::Unknown("node budget exhausted".into()), None),
    }
}

/// Checks linearizability (Definition 2).
pub fn check_linearizability(history: &History, budget: &Budget) -> Verdict {
    find_linearization(history, budget).0
}

/// The clients that invoked at least one operation.
fn active_clients(history: &History) -> Vec<ClientId> {
    let mut cs: Vec<ClientId> = history.ops().iter().map(|o| o.client).collect();
    cs.sort_unstable();
    cs.dedup();
    cs
}

/// Mandatory view set for `client` under causal closure: the client's
/// completed operations plus every write causally preceding any of them.
fn causal_view_set(history: &History, orders: &Orders, client: ClientId) -> u64 {
    let mut mask = 0u64;
    for (i, op) in history.ops().iter().enumerate() {
        if op.client == client && op.is_complete() {
            mask |= 1 << i;
        }
    }
    let base = mask;
    for (w, op) in history.ops().iter().enumerate() {
        if op.kind != OpKind::Write {
            continue;
        }
        let mut b = base;
        let mut include = false;
        while b != 0 {
            let o = b.trailing_zeros() as usize;
            b &= b - 1;
            if orders.causal.has(w, o) {
                include = true;
                break;
            }
        }
        if include {
            mask |= 1 << w;
        }
    }
    mask
}

/// Checks causal consistency (Definition 3).
pub fn check_causal_consistency(history: &History, budget: &Budget) -> Verdict {
    let orders = match guard(history) {
        Ok(o) => o,
        Err(v) => return v,
    };
    for client in active_clients(history) {
        let set_mask = causal_view_set(history, &orders, client);
        for &r in &orders.orphan_reads {
            if set_mask & (1 << r) != 0 {
                return Verdict::Violated(format!(
                    "{client}: read op{r} returned a value no write produced"
                ));
            }
        }
        let mut nodes = budget.max_nodes;
        let mut p = problem(
            history,
            &orders,
            set_mask,
            |i| orders.causal.preds(i),
            &mut nodes,
        );
        match search(&mut p, 1, true, |_| true) {
            SearchOutcome::Found(_) => {}
            SearchOutcome::NotFound => {
                return Verdict::Violated(format!("{client} has no causally-ordered legal view"));
            }
            SearchOutcome::Exhausted => {
                return Verdict::Unknown("node budget exhausted".into());
            }
        }
    }
    Verdict::Satisfied
}

/// Minimal view set for fork-linearizability: the client's completed
/// operations plus the writes its reads returned.
fn fork_view_set(history: &History, orders: &Orders, client: ClientId) -> u64 {
    let mut mask = 0u64;
    for (i, op) in history.ops().iter().enumerate() {
        if op.client == client && op.is_complete() {
            mask |= 1 << i;
        }
    }
    let base = mask;
    for (r, w) in orders.reads_from.iter().enumerate() {
        if base & (1 << r) != 0 {
            if let Some(w) = w {
                mask |= 1 << w;
            }
        }
    }
    mask
}

/// `true` iff the two views agree on their prefixes up to (and including)
/// operation `o`, which must occur in both.
fn prefixes_agree(vi: &[usize], vj: &[usize], o: usize) -> bool {
    let (Some(pi), Some(pj)) = (
        vi.iter().position(|&x| x == o),
        vj.iter().position(|&x| x == o),
    ) else {
        return false;
    };
    pi == pj && vi[..=pi] == vj[..=pj]
}

/// The no-join condition of fork-linearizability: views agree on the
/// prefix up to *every* common operation.
fn no_join(vi: &[usize], vj: &[usize]) -> bool {
    let set_j: std::collections::HashSet<usize> = vj.iter().copied().collect();
    vi.iter()
        .filter(|o| set_j.contains(o))
        .all(|&o| prefixes_agree(vi, vj, o))
}

/// The at-most-one-join condition (Definition 6, condition 4): for every
/// client, all its common operations except the last must have agreeing
/// prefixes.
fn at_most_one_join(history: &History, vi: &[usize], vj: &[usize]) -> bool {
    let set_j: std::collections::HashSet<usize> = vj.iter().copied().collect();
    // Common ops grouped by invoking client, in program order (history
    // index order = program order per client).
    let mut by_client: std::collections::HashMap<ClientId, Vec<usize>> = Default::default();
    let mut commons: Vec<usize> = vi.iter().copied().filter(|o| set_j.contains(o)).collect();
    commons.sort_unstable();
    for o in commons {
        by_client
            .entry(history.ops()[o].client)
            .or_default()
            .push(o);
    }
    for ops in by_client.values() {
        for &o in &ops[..ops.len().saturating_sub(1)] {
            if !prefixes_agree(vi, vj, o) {
                return false;
            }
        }
    }
    true
}

/// Weak real-time order (Section 4): after exempting the last operation
/// of every client *in the view*, the view must preserve `σ`'s real-time
/// order.
fn weak_real_time_ok(history: &History, orders: &Orders, view: &[usize]) -> bool {
    let mut last_of: std::collections::HashMap<ClientId, usize> = Default::default();
    for (pos, &o) in view.iter().enumerate() {
        last_of.insert(history.ops()[o].client, pos);
    }
    let exempt: std::collections::HashSet<usize> = last_of.values().map(|&pos| view[pos]).collect();
    for (qa, &a) in view.iter().enumerate() {
        if exempt.contains(&a) {
            continue;
        }
        for &b in &view[qa + 1..] {
            if exempt.contains(&b) {
                continue;
            }
            // b appears after a in the view; a real-time order b <σ a is a
            // violation.
            if orders.real_time.has(b, a) {
                return false;
            }
        }
    }
    true
}

/// Joint search: pick one candidate view per client such that every pair
/// satisfies `join_ok`.
fn select_joint_views(
    candidates: &[Vec<Vec<usize>>],
    mut budget: usize,
    join_ok: impl Fn(&[usize], &[usize]) -> bool,
) -> Option<bool> {
    // None = budget exhausted; Some(found?).
    fn dfs(
        candidates: &[Vec<Vec<usize>>],
        chosen: &mut Vec<usize>,
        budget: &mut usize,
        join_ok: &impl Fn(&[usize], &[usize]) -> bool,
    ) -> Option<bool> {
        if chosen.len() == candidates.len() {
            return Some(true);
        }
        let level = chosen.len();
        for (ci, cand) in candidates[level].iter().enumerate() {
            if *budget == 0 {
                return None;
            }
            *budget -= 1;
            let ok = chosen
                .iter()
                .enumerate()
                .all(|(lvl, &prev)| join_ok(&candidates[lvl][prev], cand));
            if ok {
                chosen.push(ci);
                match dfs(candidates, chosen, budget, join_ok) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
                chosen.pop();
            }
        }
        Some(false)
    }
    dfs(candidates, &mut Vec::new(), &mut budget, &join_ok)
}

/// Shared skeleton of the two forking checkers.
fn check_forking(
    history: &History,
    budget: &Budget,
    view_set: impl Fn(&History, &Orders, ClientId) -> u64,
    pred_of: impl Fn(&Orders, usize) -> u64,
    post_filter: impl Fn(&History, &Orders, &[usize]) -> bool,
    join_ok: impl Fn(&History, &[usize], &[usize]) -> bool,
    notion: &str,
) -> Verdict {
    let orders = match guard(history) {
        Ok(o) => o,
        Err(v) => return v,
    };
    // Fast path: if one sequence over *all* operations satisfies the
    // notion's order constraints and the register spec, it serves as
    // every client's view and all join conditions hold trivially. (For
    // real-time-ordered notions this is exactly a linearization; for
    // program-order notions it is a sequentially consistent witness.)
    {
        let set_mask = linearization_set(history, &orders);
        if orders.orphan_reads.iter().all(|r| set_mask & (1 << r) == 0) {
            let mut nodes = budget.max_nodes;
            let mut p = problem(
                history,
                &orders,
                set_mask,
                |i| pred_of(&orders, i),
                &mut nodes,
            );
            if let SearchOutcome::Found(views) =
                search(&mut p, 1, false, |seq| post_filter(history, &orders, seq))
            {
                debug_assert!(!views.is_empty());
                return Verdict::Satisfied;
            }
        }
    }

    let mut candidates = Vec::new();
    let mut truncated = false;
    for client in active_clients(history) {
        let set_mask = view_set(history, &orders, client);
        for &r in &orders.orphan_reads {
            if set_mask & (1 << r) != 0 {
                return Verdict::Violated(format!(
                    "{client}: read op{r} returned a value no write produced"
                ));
            }
        }
        let mut nodes = budget.max_nodes;
        let mut p = problem(
            history,
            &orders,
            set_mask,
            |i| pred_of(&orders, i),
            &mut nodes,
        );
        let out = search(&mut p, budget.max_views_per_client, false, |seq| {
            post_filter(history, &orders, seq)
        });
        match out {
            SearchOutcome::Found(views) => {
                if views.len() >= budget.max_views_per_client {
                    truncated = true;
                }
                candidates.push(views);
            }
            SearchOutcome::NotFound => {
                return Verdict::Violated(format!(
                    "{client} has no admissible view under {notion}"
                ));
            }
            SearchOutcome::Exhausted => {
                return Verdict::Unknown("node budget exhausted".into());
            }
        }
    }

    match select_joint_views(&candidates, budget.max_combinations, |a, b| {
        join_ok(history, a, b)
    }) {
        Some(true) => Verdict::Satisfied,
        // Minimal views failing the join condition is not conclusive:
        // views may legally include *other* clients' operations, which
        // can align the prefixes (e.g. Figure 3 under fork-sequential-
        // consistency). Per-client view nonexistence above is the only
        // definitive Violated for join-based notions.
        Some(false) => {
            let _ = truncated;
            Verdict::Unknown(format!(
                "minimal views do not satisfy the {notion} join condition; \
larger views were not explored"
            ))
        }
        None => Verdict::Unknown("combination budget exhausted".into()),
    }
}

/// Checks fork-linearizability: per-client views preserving real-time
/// order, with the no-join condition.
pub fn check_fork_linearizability(history: &History, budget: &Budget) -> Verdict {
    check_forking(
        history,
        budget,
        fork_view_set,
        |orders, i| orders.real_time.preds(i) | orders.program.preds(i),
        |_, _, _| true,
        |_, a, b| no_join(a, b),
        "fork-linearizability",
    )
}

/// Checks fork-*-linearizability (Li–Mazières, adapted as in Section 4 of
/// the FAUST paper): per-client views preserving the *full* real-time
/// order, with the at-most-one-join condition — but, unlike weak
/// fork-linearizability, **no causality requirement**.
///
/// The paper observes the two notions are incomparable: Figure 3's
/// history is weakly fork-linearizable but not fork-*-linearizable (the
/// hidden write violates real-time order), while a server that hides a
/// causally-preceding write behind a relay client violates causality yet
/// remains fork-*-linearizable. Both directions are demonstrated in this
/// module's tests.
pub fn check_fork_star_linearizability(history: &History, budget: &Budget) -> Verdict {
    check_forking(
        history,
        budget,
        fork_view_set,
        |orders, i| orders.real_time.preds(i) | orders.program.preds(i),
        |_, _, _| true,
        at_most_one_join,
        "fork-*-linearizability",
    )
}

/// Checks fork-sequential-consistency (Oprea–Reiter, cited in the
/// paper's related work): per-client views that preserve only *program
/// order* — no real-time requirement at all — with the no-join condition.
///
/// Strictly weaker than fork-linearizability; the paper's companion
/// result (reference 4 of the paper) shows even this notion rules out
/// wait-free protocols.
pub fn check_fork_sequential_consistency(history: &History, budget: &Budget) -> Verdict {
    check_forking(
        history,
        budget,
        fork_view_set,
        |orders, i| orders.program.preds(i),
        |_, _, _| true,
        |_, a, b| no_join(a, b),
        "fork-sequential-consistency",
    )
}

/// Checks weak fork-linearizability (Definition 6): per-client causally
/// closed views preserving *weak* real-time order, with the
/// at-most-one-join condition.
pub fn check_weak_fork_linearizability(history: &History, budget: &Budget) -> Verdict {
    check_forking(
        history,
        budget,
        causal_view_set,
        |orders, i| {
            // Condition 3 orders causally-preceding *updates*; own ops are
            // ordered by program order (condition 1).
            orders.causal.preds(i) & orders.write_mask() | orders.program.preds(i)
        },
        weak_real_time_ok,
        at_most_one_join,
        "weak fork-linearizability",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_types::Value;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    fn b() -> Budget {
        Budget::default()
    }

    /// Sequential single-writer history: trivially linearizable.
    fn sequential_history() -> History {
        let mut h = History::new();
        let w = h.begin_write(c(0), Value::from("a"), 0);
        h.complete_write(w, 1, None);
        let r = h.begin_read(c(1), c(0), 2);
        h.complete_read(r, 3, Some(Value::from("a")), None);
        h
    }

    /// The Figure 3 history: completed write, then the same reader reads
    /// ⊥ and then the written value.
    fn fig3_history() -> History {
        let mut h = History::new();
        let w = h.begin_write(c(0), Value::from("u"), 0);
        h.complete_write(w, 5, None);
        let r1 = h.begin_read(c(1), c(0), 10);
        h.complete_read(r1, 15, None, None);
        let r2 = h.begin_read(c(1), c(0), 20);
        h.complete_read(r2, 25, Some(Value::from("u")), None);
        h
    }

    /// A causality violation: the reader sees the writer's second value
    /// and then its first.
    fn causal_violation_history() -> History {
        let mut h = History::new();
        let w1 = h.begin_write(c(0), Value::from("v1"), 0);
        h.complete_write(w1, 1, None);
        let w2 = h.begin_write(c(0), Value::from("v2"), 2);
        h.complete_write(w2, 3, None);
        let r1 = h.begin_read(c(1), c(0), 10);
        h.complete_read(r1, 11, Some(Value::from("v2")), None);
        let r2 = h.begin_read(c(1), c(0), 12);
        h.complete_read(r2, 13, Some(Value::from("v1")), None);
        h
    }

    #[test]
    fn sequential_history_satisfies_everything() {
        let h = sequential_history();
        assert!(check_linearizability(&h, &b()).is_satisfied());
        assert!(check_causal_consistency(&h, &b()).is_satisfied());
        assert!(check_fork_linearizability(&h, &b()).is_satisfied());
        assert!(check_weak_fork_linearizability(&h, &b()).is_satisfied());
        assert!(check_wait_freedom(&h, &[]));
    }

    #[test]
    fn fig3_separates_weak_from_fork_linearizability() {
        let h = fig3_history();
        // Not linearizable, not fork-linearizable…
        assert!(check_linearizability(&h, &b()).is_violated());
        assert!(check_fork_linearizability(&h, &b()).is_violated());
        // …but weakly fork-linearizable and causal — exactly Figure 3.
        assert_eq!(
            check_weak_fork_linearizability(&h, &b()),
            Verdict::Satisfied
        );
        assert_eq!(check_causal_consistency(&h, &b()), Verdict::Satisfied);
    }

    /// Section 4: weak fork-linearizability is neither stronger nor
    /// weaker than fork-*-linearizability. Direction 1: Figure 3 is weak
    /// but not fork-* (the hidden completed write breaks full real-time
    /// order, and fork-* has no last-op exemption for it).
    #[test]
    fn fig3_is_weak_but_not_fork_star() {
        let h = fig3_history();
        assert_eq!(
            check_weak_fork_linearizability(&h, &b()),
            Verdict::Satisfied
        );
        assert!(check_fork_star_linearizability(&h, &b()).is_violated());
    }

    /// Direction 2: a causality violation routed through a relay client
    /// is fork-*-linearizable (no causality requirement) but not weakly
    /// fork-linearizable.
    ///
    /// C0 writes `a` to X0; C2 reads `a` and then writes `c` to X2 (so
    /// w(a) causally precedes w(c)); C1 reads X2 → c, then reads X0 → ⊥.
    /// C1's second read misses the causally-preceding write w(a).
    #[test]
    fn causality_violation_is_fork_star_but_not_weak() {
        let mut h = History::new();
        let wa = h.begin_write(c(0), Value::from("a"), 0);
        h.complete_write(wa, 1, None);
        let r2a = h.begin_read(c(2), c(0), 2);
        h.complete_read(r2a, 3, Some(Value::from("a")), None);
        let wc = h.begin_write(c(2), Value::from("c"), 4);
        h.complete_write(wc, 5, None);
        let r1c = h.begin_read(c(1), c(2), 6);
        h.complete_read(r1c, 7, Some(Value::from("c")), None);
        let r1a = h.begin_read(c(1), c(0), 8);
        h.complete_read(r1a, 9, None, None); // ⊥: causally stale!

        assert!(check_causal_consistency(&h, &b()).is_violated());
        assert!(check_weak_fork_linearizability(&h, &b()).is_violated());
        assert_eq!(
            check_fork_star_linearizability(&h, &b()),
            Verdict::Satisfied
        );
    }

    /// fork-* also passes ordinary linearizable histories (sanity).
    #[test]
    fn fork_star_accepts_linearizable_histories() {
        assert_eq!(
            check_fork_star_linearizability(&sequential_history(), &b()),
            Verdict::Satisfied
        );
    }

    #[test]
    fn causal_violation_rejected_by_causal_and_weak() {
        let h = causal_violation_history();
        assert!(check_causal_consistency(&h, &b()).is_violated());
        assert!(check_weak_fork_linearizability(&h, &b()).is_violated());
        assert!(check_linearizability(&h, &b()).is_violated());
    }

    #[test]
    fn stale_read_is_fork_linearizable_but_not_linearizable() {
        // write v1, write v2 (both complete), read returns v1: the server
        // may hide v2 from the reader forever (a plain fork).
        let mut h = History::new();
        let w1 = h.begin_write(c(0), Value::from("v1"), 0);
        h.complete_write(w1, 1, None);
        let w2 = h.begin_write(c(0), Value::from("v2"), 2);
        h.complete_write(w2, 3, None);
        let r = h.begin_read(c(1), c(0), 10);
        h.complete_read(r, 11, Some(Value::from("v1")), None);

        assert!(check_linearizability(&h, &b()).is_violated());
        assert_eq!(check_fork_linearizability(&h, &b()), Verdict::Satisfied);
        assert_eq!(
            check_weak_fork_linearizability(&h, &b()),
            Verdict::Satisfied
        );
    }

    #[test]
    fn fabricated_value_rejected_everywhere() {
        let mut h = History::new();
        let r = h.begin_read(c(0), c(1), 0);
        h.complete_read(r, 1, Some(Value::from("ghost")), None);
        assert!(check_linearizability(&h, &b()).is_violated());
        assert!(check_causal_consistency(&h, &b()).is_violated());
        assert!(check_fork_linearizability(&h, &b()).is_violated());
        assert!(check_weak_fork_linearizability(&h, &b()).is_violated());
    }

    #[test]
    fn concurrent_writes_to_distinct_registers_linearizable() {
        let mut h = History::new();
        let w0 = h.begin_write(c(0), Value::from("a"), 0);
        let w1 = h.begin_write(c(1), Value::from("b"), 0);
        h.complete_write(w0, 10, None);
        h.complete_write(w1, 10, None);
        let r0 = h.begin_read(c(2), c(0), 20);
        h.complete_read(r0, 21, Some(Value::from("a")), None);
        let r1 = h.begin_read(c(2), c(1), 22);
        h.complete_read(r1, 23, Some(Value::from("b")), None);
        assert!(check_linearizability(&h, &b()).is_satisfied());
    }

    #[test]
    fn pending_write_may_be_observed() {
        // A write that never completes can still be read (it took effect).
        let mut h = History::new();
        let _w = h.begin_write(c(0), Value::from("x"), 0); // pending forever
        let r = h.begin_read(c(1), c(0), 100);
        h.complete_read(r, 101, Some(Value::from("x")), None);
        assert!(check_linearizability(&h, &b()).is_satisfied());
        assert!(check_weak_fork_linearizability(&h, &b()).is_satisfied());
    }

    #[test]
    fn wait_freedom_accounts_for_crashes() {
        let mut h = History::new();
        let _w = h.begin_write(c(0), Value::from("x"), 0); // never completes
        assert!(!check_wait_freedom(&h, &[]));
        assert!(check_wait_freedom(&h, &[c(0)]));
    }

    #[test]
    fn oversized_history_returns_unknown() {
        let mut h = History::new();
        for i in 0..70u64 {
            let w = h.begin_write(c(0), Value::unique(0, i), i * 2);
            h.complete_write(w, i * 2 + 1, None);
        }
        assert!(matches!(
            check_linearizability(&h, &b()),
            Verdict::Unknown(_)
        ));
    }

    #[test]
    fn duplicate_values_return_unknown() {
        let mut h = History::new();
        let w1 = h.begin_write(c(0), Value::from("same"), 0);
        h.complete_write(w1, 1, None);
        let w2 = h.begin_write(c(1), Value::from("same"), 2);
        h.complete_write(w2, 3, None);
        assert!(matches!(
            check_linearizability(&h, &b()),
            Verdict::Unknown(_)
        ));
    }

    #[test]
    fn linearization_witness_is_legal() {
        let h = sequential_history();
        let (verdict, witness) = find_linearization(&h, &b());
        assert!(verdict.is_satisfied());
        let witness = witness.expect("witness accompanies Satisfied");
        assert_eq!(witness.len(), 2);
        // Witness order: write before the read that observed it.
        assert_eq!(witness[0], OpId(0));
        assert_eq!(witness[1], OpId(1));
    }
}
