//! Deterministic queue-pair transport: the adapter between the
//! discrete-event simulator and the server engine.
//!
//! The simulator owns delivery order and virtual time; this transport is
//! merely the mailbox between a simulated delivery and the engine. A
//! driver pushes each message the simulator delivers to the server node
//! ([`QueueTransport::push_incoming`]), lets the engine drain the
//! transport, and then forwards everything the engine emitted
//! ([`QueueTransport::drain_outgoing`]) back into the simulation as
//! normally scheduled messages. Single-threaded and allocation-light, so
//! simulated executions stay bit-for-bit reproducible.

use crate::{Incoming, ServerTransport};
use faust_types::{ClientId, UstorMsg};
use std::collections::VecDeque;

/// FIFO queue pair implementing [`ServerTransport`] without threads.
#[derive(Debug, Default)]
pub struct QueueTransport {
    incoming: VecDeque<(ClientId, UstorMsg)>,
    outgoing: VecDeque<(ClientId, UstorMsg)>,
}

impl QueueTransport {
    /// Creates an empty queue pair.
    pub fn new() -> Self {
        QueueTransport::default()
    }

    /// Enqueues a message delivered by the surrounding harness.
    pub fn push_incoming(&mut self, from: ClientId, msg: UstorMsg) {
        self.incoming.push_back((from, msg));
    }

    /// Removes the next engine output, if any.
    pub fn pop_outgoing(&mut self) -> Option<(ClientId, UstorMsg)> {
        self.outgoing.pop_front()
    }

    /// Drains every engine output in emission order.
    pub fn drain_outgoing(&mut self) -> impl Iterator<Item = (ClientId, UstorMsg)> + '_ {
        self.outgoing.drain(..)
    }
}

impl ServerTransport for QueueTransport {
    fn recv(&mut self) -> Incoming {
        match self.incoming.pop_front() {
            Some((from, msg)) => Incoming::Msg(from, msg),
            None => Incoming::Idle,
        }
    }

    fn try_recv(&mut self) -> Incoming {
        self.recv()
    }

    fn send(&mut self, to: ClientId, msg: UstorMsg) {
        self.outgoing.push_back((to, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_types::{CommitMsg, SignedVersion, Version};

    fn commit(n: usize) -> UstorMsg {
        let v = Version::initial(n);
        let sig = SignedVersion::initial(n).sig;
        let _ = sig;
        UstorMsg::Commit(CommitMsg {
            version: v,
            commit_sig: faust_crypto::Signature::garbage(),
            proof_sig: faust_crypto::Signature::garbage(),
        })
    }

    #[test]
    fn fifo_in_both_directions() {
        let mut q = QueueTransport::new();
        q.push_incoming(ClientId::new(0), commit(2));
        q.push_incoming(ClientId::new(1), commit(2));
        let Incoming::Msg(first, _) = q.recv() else {
            panic!("expected message");
        };
        assert_eq!(first, ClientId::new(0));
        let Incoming::Msg(second, _) = q.recv() else {
            panic!("expected message");
        };
        assert_eq!(second, ClientId::new(1));
        assert!(matches!(q.recv(), Incoming::Idle));

        q.send(ClientId::new(1), commit(2));
        q.send(ClientId::new(0), commit(2));
        let order: Vec<ClientId> = q.drain_outgoing().map(|(to, _)| to).collect();
        assert_eq!(order, vec![ClientId::new(1), ClientId::new(0)]);
    }
}
