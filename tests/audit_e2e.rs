//! The offline auditor over a real deployment: multi-client sessions on
//! loopback TCP against a persistent server, exported from the store
//! directory through the read-only cursor and replayed by `faust-audit`.
//!
//! The acceptance pair from the audit subsystem's issue:
//! * an honest multi-client TCP run is **certified** end to end;
//! * a WAL-tampered copy of the same history is **diverged** with the
//!   exact first divergent version — and a forked (split-brain) pair of
//!   sessions yields the signed evidence pair that convicts the server
//!   to any third party.

use faust::audit::{audit, AuditVerdict, Divergence, SessionHistory};
use faust::core::threaded_faust::{run_threaded_faust_tcp, ThreadedFaustConfig};
use faust::core::{FaustConfig, UserOp};
use faust::crypto::sig::KeySet;
use faust::crypto::{SigScheme, VerifierRegistry};
use faust::store::{testutil, Durability, LogRecord, PersistentServer, StoreConfig};
use faust::types::{ClientId, Value};
use std::time::Duration;

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn config(dummy_reads: bool) -> ThreadedFaustConfig {
    ThreadedFaustConfig {
        faust: FaustConfig {
            dummy_reads,
            ..FaustConfig::default()
        },
        run_for: Duration::from_millis(1200),
        ..ThreadedFaustConfig::default()
    }
}

fn registry(n: usize, key_seed: &[u8]) -> VerifierRegistry {
    KeySet::generate_with(SigScheme::Hmac, n, key_seed).registry()
}

/// Runs `workloads` over loopback TCP against a fresh persistent server
/// in `dir` and returns the exported session history.
fn tcp_session(
    dir: &std::path::Path,
    workloads: Vec<Vec<UserOp>>,
    key_seed: &[u8],
    dummy_reads: bool,
) -> SessionHistory {
    let n = workloads.len();
    let server = PersistentServer::open(
        dir,
        n,
        StoreConfig {
            durability: Durability::Never,
            snapshot_every: 0,
        },
    )
    .expect("open store");
    let report = run_threaded_faust_tcp(
        n,
        workloads,
        Box::new(server),
        config(dummy_reads),
        key_seed,
    )
    .expect("loopback TCP available");
    assert!(
        report.failures.is_empty(),
        "honest run must not fail: {:?}",
        report.failures
    );
    faust::audit::export_store_dir(dir, SigScheme::Hmac, None).expect("export store dir")
}

/// Re-derives a structurally tampered container so every checksum is
/// consistent again — the file passes all integrity checks and only the
/// cryptographic audit can convict.
fn relaunder(session: &SessionHistory) -> SessionHistory {
    SessionHistory::decode(&session.encode()).expect("re-checksummed container decodes")
}

#[test]
fn honest_tcp_run_is_certified_and_tampered_copy_is_pinpointed() {
    let key_seed = b"audit-e2e";
    let n = 3;
    let dir = testutil::scratch_dir("audit-e2e-honest");
    let workloads = vec![
        vec![
            UserOp::Write(Value::from("a1")),
            UserOp::Write(Value::from("a2")),
            UserOp::Read(c(1)),
        ],
        vec![UserOp::Write(Value::from("b1")), UserOp::Read(c(0))],
        vec![UserOp::Read(c(0)), UserOp::Write(Value::from("c1"))],
    ];
    let session = tcp_session(&dir, workloads, key_seed, true);
    assert!(
        session.records.len() >= 14,
        "7 user ops = 14+ records, got {}",
        session.records.len()
    );

    // The honest export certifies.
    let report = audit(&session, &registry(n, key_seed)).expect("audit runs");
    match &report.verdict {
        AuditVerdict::Certified {
            fork_linearizable,
            ops,
            clients,
        } => {
            assert!(fork_linearizable);
            assert!(*ops >= 7, "at least the 7 user ops, got {ops}");
            assert_eq!(*clients, 3);
        }
        other => panic!("honest TCP run must certify, got {other:?}"),
    }

    // A WAL-tampered copy: remove a middle record (client 0's second
    // SUBMIT) and renumber so the container stays internally pristine.
    // The audit must pinpoint the exact sequence number where the
    // session stops being explainable.
    let mut tampered = session.clone();
    let victim = tampered
        .records
        .iter()
        .position(|(_, r)| {
            matches!(r, LogRecord::Submit { from, msg } if from.index() == 0 && msg.timestamp == 2)
        })
        .expect("client 0 submits timestamp 2");
    tampered.records.remove(victim);
    for (i, (seq, _)) in tampered.records.iter_mut().enumerate() {
        *seq = i as u64;
    }
    // The earliest record at which the removal is *provable*: everything
    // before it replays cleanly, so the auditor must pin exactly the
    // first record that references the missing operation — client 0's
    // next SUBMIT (its timestamp skips the removed one) or any COMMIT
    // acknowledging ≥ 2 of client 0's operations, whichever the TCP
    // interleaving put first.
    let expected_pin = victim
        + tampered.records[victim..]
            .iter()
            .position(|(_, r)| match r {
                LogRecord::Submit { from, .. } => from.index() == 0,
                LogRecord::Commit { msg, .. } => msg.version.v().get(c(0)) >= 2,
                _ => false,
            })
            .expect("a later record exposes the removed one");
    let tampered = relaunder(&tampered);
    let report = audit(&tampered, &registry(n, key_seed)).expect("audit runs");
    match report.verdict {
        AuditVerdict::Diverged {
            first_bad_version,
            divergence,
        } => {
            assert_eq!(
                first_bad_version, expected_pin as u64,
                "divergence must be pinned to the first record that \
                 exposes the removal (removed at {victim})"
            );
            assert!(
                matches!(
                    divergence,
                    Divergence::UnjustifiedCommit { .. } | Divergence::ScheduleGap { .. }
                ),
                "a removed record shows up as a gap or an unjustified commit, got {divergence:?}"
            );
        }
        other => panic!("tampered copy must diverge, got {other:?}"),
    }

    // A flipped signature byte inside a record, with every container
    // checksum rebuilt: the container is clean, the audit convicts.
    let mut resigned = session.clone();
    let victim = resigned
        .records
        .iter()
        .position(|(_, r)| matches!(r, LogRecord::Submit { .. }))
        .expect("some submit");
    if let (_, LogRecord::Submit { msg, .. }) = &mut resigned.records[victim] {
        let mut bytes: Vec<u8> = msg.tuple.sig.as_bytes().to_vec();
        bytes[0] ^= 0xff;
        msg.tuple.sig = faust::crypto::Signature::Mac(bytes.try_into().expect("mac width"));
    }
    let resigned = relaunder(&resigned);
    let report = audit(&resigned, &registry(n, key_seed)).expect("audit runs");
    match report.verdict {
        AuditVerdict::Diverged {
            first_bad_version,
            divergence: Divergence::BadSignature { .. },
        } => assert_eq!(first_bad_version, victim as u64),
        other => panic!("flipped signature must diverge at {victim}, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// A forking server shows each client its own universe. Offline, that
/// is two separately honest sessions spliced into one claimed schedule —
/// and the auditor extracts the *signed evidence pair*: two validly
/// COMMIT-signed, mutually incomparable versions that prove the fork to
/// any third party holding only the verification keys.
#[test]
fn spliced_split_brain_tcp_sessions_yield_signed_fork_evidence() {
    let key_seed = b"audit-e2e-fork";
    let n = 2;
    // Universe A: only client 0 operates. Universe B: only client 1.
    // Same keys, same client set — exactly what a forking server serves.
    let dir_a = testutil::scratch_dir("audit-e2e-fork-a");
    let session_a = tcp_session(
        &dir_a,
        vec![vec![UserOp::Write(Value::from("universe-a"))], vec![]],
        key_seed,
        false,
    );
    let dir_b = testutil::scratch_dir("audit-e2e-fork-b");
    let session_b = tcp_session(
        &dir_b,
        vec![vec![], vec![UserOp::Write(Value::from("universe-b"))]],
        key_seed,
        false,
    );
    assert_eq!(session_a.records.len(), 2, "one write = SUBMIT + COMMIT");
    assert_eq!(session_b.records.len(), 2, "one write = SUBMIT + COMMIT");

    // Splice B's records after A's and renumber — the forged "single
    // server" schedule a forking server would have to defend.
    let mut records = session_a.records.clone();
    records.extend(session_b.records.iter().cloned());
    for (i, (seq, _)) in records.iter_mut().enumerate() {
        *seq = i as u64;
    }
    let spliced = faust::audit::export_records(n, SigScheme::Hmac, None, records, None);
    let spliced = relaunder(&spliced);

    let report = audit(&spliced, &registry(n, key_seed)).expect("audit runs");
    match &report.verdict {
        AuditVerdict::Diverged {
            first_bad_version,
            divergence: Divergence::ForkedCommits { .. },
        } => {
            // A's submit+commit replay cleanly; the fork becomes evident
            // at B's commit, record 3.
            assert_eq!(*first_bad_version, 3);
            let (a, b) = report.verdict.signed_evidence().expect("signed pair");
            assert!(
                !a.version.comparable(&b.version),
                "evidence versions must be incomparable: {:?} vs {:?}",
                a.version.v(),
                b.version.v()
            );
            assert!(
                a.sig.is_some() && b.sig.is_some(),
                "both versions must carry COMMIT signatures"
            );
        }
        other => panic!("spliced fork must yield signed evidence, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
