//! The USTOR server — Algorithm 2 of the paper — and the [`Server`] trait
//! that Byzantine variants implement.

use faust_crypto::sig::Signature;
use faust_types::{
    ClientId, CommitMsg, InvocationTuple, OpKind, ReadReply, ReplyMsg, SignedVersion, SubmitMsg,
    Timestamp, Value,
};

/// Interface of a storage server, correct or Byzantine.
///
/// The simulator delivers each client message to these handlers; a handler
/// returns the messages the server chooses to send (a correct server
/// answers each SUBMIT with exactly one REPLY to the submitter, but a
/// faulty server may answer differently, later, or not at all).
pub trait Server {
    /// Handles `⟨SUBMIT, …⟩` from `client`; returns `(recipient, reply)`
    /// pairs to deliver.
    fn on_submit(&mut self, client: ClientId, msg: SubmitMsg) -> Vec<(ClientId, ReplyMsg)>;

    /// Handles `⟨COMMIT, …⟩` from `client`; may release further replies
    /// (a correct server never does).
    fn on_commit(&mut self, client: ClientId, msg: CommitMsg) -> Vec<(ClientId, ReplyMsg)>;

    /// Offers the server a durability flush point, returning any replies
    /// it was holding back until their records became durable.
    ///
    /// A purely in-memory server releases every reply from
    /// [`Server::on_submit`] directly and has nothing to flush — the
    /// default returns no replies. A group-committing persistent server
    /// (`faust-store`'s `Durability::Group`) appends records *without*
    /// fsyncing, withholds the corresponding replies, and releases them
    /// here after one batched fsync. `force` ignores the server's
    /// batching policy (size/age thresholds) and makes everything held
    /// durable now — runtimes force a flush when a transport closes so
    /// no reply is stranded.
    ///
    /// The engine calls this at the end of every processing round, so
    /// "one round" is the natural group-commit batch under load.
    fn flush(&mut self, force: bool) -> Vec<(ClientId, ReplyMsg)> {
        let _ = force;
        Vec::new()
    }

    /// When the server must next be offered a [`Server::flush`] even if
    /// no further traffic arrives — `Some(deadline)` while replies or
    /// unsynced records are being held back, `None` otherwise.
    ///
    /// Serve loops use this to bound how long a held reply can wait: a
    /// blocking transport switches from `recv` to `recv_deadline` while
    /// a deadline is pending.
    fn flush_deadline(&self) -> Option<std::time::Instant> {
        None
    }

    /// Virtual-time twin of [`Server::flush_deadline`]: the simulation
    /// tick at which a held reply must next be offered a flush, for
    /// servers driven by a discrete-event clock instead of `Instant`.
    ///
    /// `None` means either nothing is held or the server runs on wall
    /// time; a server reports its deadline through *one* of the two
    /// methods, never both.
    fn flush_deadline_at(&self) -> Option<u64> {
        None
    }

    /// Per-client session state recovered from durable storage, indexed
    /// by client — what the engine needs to seed its sessions so that a
    /// *restarted* server still recognises resent SUBMITs as duplicates
    /// (and keeps verifying reads against the right value hash).
    ///
    /// A volatile server recovers nothing — the default returns an empty
    /// vector, which the engine treats as all-fresh sessions. The engine
    /// calls this once, at construction.
    fn resume_sessions(&mut self) -> Vec<SessionResume> {
        Vec::new()
    }
}

/// One client's recovered session state — see
/// [`Server::resume_sessions`].
#[derive(Debug, Clone, Default)]
pub struct SessionResume {
    /// Timestamp of the client's last durably applied SUBMIT (0 if none).
    pub last_timestamp: Timestamp,
    /// Hash of the client's last written value, if any.
    pub last_value_hash: Option<faust_crypto::Digest>,
    /// Replies re-derived during recovery, oldest first, each tagged with
    /// the timestamp of the SUBMIT it answered — the duplicate-replay
    /// cache. Recovery can only rebuild replies for records replayed from
    /// the log (post-snapshot), which covers every reply a client could
    /// still be waiting on.
    pub replies: Vec<(Timestamp, ReplyMsg)>,
}

/// `MEM[i]`: the timestamp, value, and DATA-signature most recently
/// received from client `C_i` (Algorithm 2 line 102).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemEntry {
    /// Timestamp of `C_i`'s last submitted operation.
    pub timestamp: Timestamp,
    /// Last written value (`None` = `⊥`, never written).
    pub value: Option<Value>,
    /// DATA-signature from the last submitted operation.
    pub data_sig: Option<Signature>,
}

impl MemEntry {
    fn initial() -> Self {
        MemEntry {
            timestamp: 0,
            value: None,
            data_sig: None,
        }
    }
}

/// A factory for [`Server`] instances — how runtimes choose *where the
/// server's state lives* without caring which transport carries it.
///
/// [`MemoryBackend`] builds a fresh volatile [`UstorServer`]; the
/// `faust-store` crate's `PersistentBackend` recovers one from an
/// append-only log + snapshot directory. Because `build` is a factory
/// (not a single instance), the same backend can be invoked again after
/// a crash to model a server restart — see
/// [`CrashRestartServer`](crate::fault::CrashRestartServer).
pub trait ServerBackend {
    /// Builds (or recovers) a server instance for `n` clients.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from persistent backends; the in-memory
    /// backend never fails.
    fn build(&self, n: usize) -> std::io::Result<Box<dyn Server + Send>>;
}

/// The default backend: a fresh in-memory [`UstorServer`]. All state is
/// volatile — a restart erases `MEM`, `SVER`, and the schedule, which
/// clients whose versions have advanced detect as a protocol violation.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryBackend;

impl ServerBackend for MemoryBackend {
    fn build(&self, n: usize) -> std::io::Result<Box<dyn Server + Send>> {
        Ok(Box::new(UstorServer::new(n)))
    }
}

/// The complete protocol state of a correct server, exported for
/// persistence backends (snapshots) and state-identity assertions.
///
/// [`UstorServer::export_state`] and [`UstorServer::from_state`] round-trip
/// through this struct; two servers with equal states behave identically
/// on all future inputs (the server is deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerState {
    /// `MEM` — register contents, indexed by client.
    pub mem: Vec<MemEntry>,
    /// `SVER` — last committed version per client.
    pub sver: Vec<SignedVersion>,
    /// `P` — PROOF-signatures per client.
    pub proofs: Vec<Option<Signature>>,
    /// `c` — the client that committed the last operation in the schedule.
    pub last_committer: ClientId,
    /// `L` — submitted-but-uncommitted invocation tuples, schedule order.
    pub pending: Vec<InvocationTuple>,
}

/// The correct USTOR server (Algorithm 2).
///
/// The order in which SUBMIT messages are processed defines the schedule
/// of operations — the linearization order when the server is correct.
/// The server never verifies signatures itself; it merely stores and
/// forwards them (it could not verify anyway: it holds no keys).
///
/// # Example
///
/// ```
/// use faust_types::ClientId;
/// use faust_ustor::{Server, UstorServer};
///
/// let server = UstorServer::new(3);
/// assert_eq!(server.pending_len(), 0);
/// let _: &dyn Server = &server;
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UstorServer {
    n: usize,
    /// `MEM` — register contents.
    mem: Vec<MemEntry>,
    /// `SVER` — last committed version per client, with COMMIT-signature.
    sver: Vec<SignedVersion>,
    /// `P` — PROOF-signatures per client.
    proofs: Vec<Option<Signature>>,
    /// `c` — the client that committed the last operation in the schedule.
    last_committer: ClientId,
    /// `L` — invocation tuples of submitted-but-uncommitted operations,
    /// in schedule order.
    pending: Vec<InvocationTuple>,
}

impl UstorServer {
    /// Creates a server for `n` clients with all registers `⊥`.
    pub fn new(n: usize) -> Self {
        UstorServer {
            n,
            mem: (0..n).map(|_| MemEntry::initial()).collect(),
            sver: (0..n).map(|_| SignedVersion::initial(n)).collect(),
            proofs: vec![None; n],
            last_committer: ClientId::new(0),
            pending: Vec::new(),
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.n
    }

    /// Length of the concurrent-operation list `L` (exposed for the
    /// garbage-collection tests and metrics).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The stored register entry for `client` (test/diagnostic access).
    pub fn mem(&self, client: ClientId) -> &MemEntry {
        &self.mem[client.index()]
    }

    /// The last committed version of `client` (test/diagnostic access).
    pub fn stored_version(&self, client: ClientId) -> &SignedVersion {
        &self.sver[client.index()]
    }

    /// Exports the complete protocol state (for snapshots).
    pub fn export_state(&self) -> ServerState {
        ServerState {
            mem: self.mem.clone(),
            sver: self.sver.clone(),
            proofs: self.proofs.clone(),
            last_committer: self.last_committer,
            pending: self.pending.clone(),
        }
    }

    /// Rebuilds a server from an exported state.
    ///
    /// # Panics
    ///
    /// Panics if the state's per-client vectors disagree on the client
    /// count (a decoded snapshot must be validated before this call).
    pub fn from_state(state: ServerState) -> Self {
        let n = state.mem.len();
        assert_eq!(state.sver.len(), n, "SVER arity");
        assert_eq!(state.proofs.len(), n, "proofs arity");
        assert!(state.last_committer.index() < n, "last committer in range");
        UstorServer {
            n,
            mem: state.mem,
            sver: state.sver,
            proofs: state.proofs,
            last_committer: state.last_committer,
            pending: state.pending,
        }
    }

    /// Applies a SUBMIT to the server state **without constructing the
    /// REPLY** — the replica path of a sharded deployment, where every
    /// shard applies every message so the version plane (schedule,
    /// `L`, `SVER`, `P`) stays identical across shards, but only the
    /// shard owning the target register pays the `O(n + |L|)` clones
    /// of the internal reply builder.
    ///
    /// State-equivalent to [`Server::on_submit`]: the piggybacked
    /// commit, the `MEM` update, and the append to `L` all happen
    /// exactly as there. Two servers fed the same message stream —
    /// one via `on_submit`, one via `absorb_submit` — are equal.
    pub fn absorb_submit(&mut self, client: ClientId, msg: SubmitMsg) {
        self.apply_submit(client, msg, false);
    }

    /// Shared body of [`Server::on_submit`] and
    /// [`UstorServer::absorb_submit`]; builds the reply only when asked.
    fn apply_submit(
        &mut self,
        client: ClientId,
        mut msg: SubmitMsg,
        with_reply: bool,
    ) -> Option<ReplyMsg> {
        // Piggybacked COMMIT of the client's previous operation (Section
        // 5 optimization): apply it first, exactly as if it had arrived
        // as a separate message on the FIFO channel.
        if let Some(pb) = msg.piggyback.take() {
            self.on_commit(client, pb);
        }
        let i = client.index();
        // Lines 108–113: update MEM[i]. A read refreshes the timestamp and
        // DATA-signature but keeps the stored value.
        match msg.tuple.kind {
            OpKind::Read => {
                self.mem[i].timestamp = msg.timestamp;
                self.mem[i].data_sig = Some(msg.data_sig);
            }
            OpKind::Write => {
                self.mem[i] = MemEntry {
                    timestamp: msg.timestamp,
                    value: msg.value.clone(),
                    data_sig: Some(msg.data_sig),
                };
            }
        }
        // Lines 111/114–115: reply, then line 116: append to L.
        let reply = with_reply.then(|| self.build_reply(&msg));
        self.pending.push(msg.tuple);
        reply
    }

    /// Builds the REPLY for a submit without mutating state further;
    /// used by both the correct path and adversarial wrappers.
    fn build_reply(&self, msg: &SubmitMsg) -> ReplyMsg {
        let c = self.last_committer;
        let read = (msg.tuple.kind == OpKind::Read).then(|| {
            let j = msg.tuple.register;
            let entry = &self.mem[j.index()];
            ReadReply {
                writer_version: self.sver[j.index()].clone(),
                mem_timestamp: entry.timestamp,
                mem_value: entry.value.clone(),
                mem_data_sig: entry.data_sig,
            }
        });
        ReplyMsg {
            last_committer: c,
            commit_version: self.sver[c.index()].clone(),
            read,
            pending: self.pending.clone(),
            proofs: self.proofs.clone(),
        }
    }
}

impl Server for UstorServer {
    fn on_submit(&mut self, client: ClientId, msg: SubmitMsg) -> Vec<(ClientId, ReplyMsg)> {
        let reply = self
            .apply_submit(client, msg, true)
            .expect("with_reply = true");
        vec![(client, reply)]
    }

    fn on_commit(&mut self, client: ClientId, msg: CommitMsg) -> Vec<(ClientId, ReplyMsg)> {
        // Lines 118–121: if this commit advances the schedule head, prune
        // L up to and including the committing client's tuple that the
        // committed version actually covers. For a sequential client that
        // is always its last tuple (the paper's rule verbatim); a
        // pipelined client may have *later* uncommitted tuples in L,
        // which must survive — they are not reflected in this version,
        // and dropping them would present a schedule with holes.
        let current = &self.sver[self.last_committer.index()];
        if msg.version.v().gt(current.version.v()) {
            self.last_committer = client;
            let committed_t = msg.version.v().get(client);
            // The client's tuples in L carry consecutive timestamps
            // ending at MEM[client].timestamp (its last submitted op),
            // so the covered tuple is the `committed_t - base`-th one.
            let in_l = self.pending.iter().filter(|t| t.client == client).count() as Timestamp;
            let base = self.mem[client.index()].timestamp.saturating_sub(in_l);
            let covered = committed_t.saturating_sub(base);
            if covered >= 1 {
                let mut seen = 0;
                let mut pos = None;
                for (idx, tuple) in self.pending.iter().enumerate() {
                    if tuple.client == client {
                        seen += 1;
                        if seen == covered {
                            pos = Some(idx);
                            break;
                        }
                    }
                }
                if let Some(pos) = pos {
                    self.pending.drain(..=pos);
                }
            }
        }
        // Lines 122–123.
        self.sver[client.index()] = SignedVersion {
            version: msg.version,
            sig: Some(msg.commit_sig),
        };
        self.proofs[client.index()] = Some(msg.proof_sig);
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::UstorClient;
    use faust_crypto::sig::KeySet;

    fn setup(n: usize) -> (UstorServer, Vec<UstorClient>) {
        let keys = KeySet::generate(n, b"server-tests");
        let clients = (0..n)
            .map(|i| {
                UstorClient::new(
                    ClientId::new(i as u32),
                    n,
                    keys.keypair(i as u32).unwrap().clone(),
                    keys.registry(),
                )
            })
            .collect();
        (UstorServer::new(n), clients)
    }

    /// Runs one full operation synchronously through the server.
    fn run_op(
        server: &mut UstorServer,
        client: &mut UstorClient,
        submit: SubmitMsg,
    ) -> crate::client::OpCompletion {
        let id = client.id();
        let mut replies = server.on_submit(id, submit);
        assert_eq!(replies.len(), 1);
        let (to, reply) = replies.pop().unwrap();
        assert_eq!(to, id);
        let (commit, done) = client.handle_reply(reply).expect("correct server");
        server.on_commit(id, commit.expect("immediate mode"));
        done
    }

    #[test]
    fn write_then_read_returns_value() {
        let (mut s, mut cs) = setup(2);
        let submit = cs[0].begin_write(Value::from("v1")).unwrap();
        let w = run_op(&mut s, &mut cs[0], submit);
        assert_eq!(w.timestamp, 1);

        let submit = cs[1].begin_read(ClientId::new(0)).unwrap();
        let r = run_op(&mut s, &mut cs[1], submit);
        assert_eq!(r.read_value, Some(Some(Value::from("v1"))));
    }

    #[test]
    fn read_of_unwritten_register_returns_bottom() {
        let (mut s, mut cs) = setup(2);
        let submit = cs[1].begin_read(ClientId::new(0)).unwrap();
        let r = run_op(&mut s, &mut cs[1], submit);
        assert_eq!(r.read_value, Some(None));
    }

    #[test]
    fn read_own_register() {
        let (mut s, mut cs) = setup(2);
        let submit = cs[0].begin_write(Value::from("mine")).unwrap();
        run_op(&mut s, &mut cs[0], submit);
        let submit = cs[0].begin_read(ClientId::new(0)).unwrap();
        let r = run_op(&mut s, &mut cs[0], submit);
        assert_eq!(r.read_value, Some(Some(Value::from("mine"))));
    }

    #[test]
    fn sequential_ops_commit_increasing_versions() {
        let (mut s, mut cs) = setup(3);
        let mut last = Version::initial(3);
        for round in 0..5u64 {
            for i in 0..3usize {
                let submit = cs[i].begin_write(Value::unique(i as u32, round)).unwrap();
                let done = run_op(&mut s, &mut cs[i], submit);
                assert!(last.lt(&done.version), "versions must grow");
                last = done.version;
            }
        }
    }

    use faust_types::Version;

    #[test]
    fn pending_list_garbage_collected() {
        let (mut s, mut cs) = setup(3);
        for round in 0..4u64 {
            for i in 0..3usize {
                let submit = cs[i].begin_write(Value::unique(i as u32, round)).unwrap();
                run_op(&mut s, &mut cs[i], submit);
            }
        }
        // After quiescence every submitted op has committed; L is empty.
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn concurrent_submits_fill_pending_list() {
        let (mut s, mut cs) = setup(3);
        // Three clients submit before any commits arrive.
        let m0 = cs[0].begin_write(Value::from("a")).unwrap();
        let m1 = cs[1].begin_write(Value::from("b")).unwrap();
        let m2 = cs[2].begin_write(Value::from("c")).unwrap();
        let r0 = s.on_submit(ClientId::new(0), m0);
        let r1 = s.on_submit(ClientId::new(1), m1);
        let r2 = s.on_submit(ClientId::new(2), m2);
        assert_eq!(s.pending_len(), 3);
        // Replies see increasing amounts of concurrency.
        assert_eq!(r0[0].1.pending.len(), 0);
        assert_eq!(r1[0].1.pending.len(), 1);
        assert_eq!(r2[0].1.pending.len(), 2);

        // All clients can complete without waiting for each other
        // (wait-freedom with a correct server).
        let (c0, d0) = cs[0]
            .handle_reply(r0.into_iter().next().unwrap().1)
            .unwrap();
        let (c1, d1) = cs[1]
            .handle_reply(r1.into_iter().next().unwrap().1)
            .unwrap();
        let (c2, d2) = cs[2]
            .handle_reply(r2.into_iter().next().unwrap().1)
            .unwrap();
        let (c0, c1, c2) = (c0.unwrap(), c1.unwrap(), c2.unwrap());
        assert_eq!(d0.timestamp, 1);
        assert_eq!(d1.timestamp, 1);
        assert_eq!(d2.timestamp, 1);
        // Versions reflect the schedule: c1's version includes c0's op.
        assert_eq!(d1.version.v().get(ClientId::new(0)), 1);
        assert_eq!(d2.version.v().get(ClientId::new(0)), 1);
        assert_eq!(d2.version.v().get(ClientId::new(1)), 1);
        s.on_commit(ClientId::new(0), c0);
        s.on_commit(ClientId::new(1), c1);
        s.on_commit(ClientId::new(2), c2);
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn commit_pruning_spares_a_pipelined_clients_later_tuples() {
        // A pipelined client has ops 1..=3 in L; its commit for op 1 must
        // prune only op 1 — ops 2 and 3 are not covered by that version
        // and must keep appearing in replies, or the schedule the server
        // presents would have holes.
        let keys = KeySet::generate(1, b"server-tests");
        let mut c0 = UstorClient::new(
            ClientId::new(0),
            1,
            keys.keypair(0).unwrap().clone(),
            keys.registry(),
        );
        c0.set_pipeline(3);
        let mut s = UstorServer::new(1);
        let mut replies = Vec::new();
        for k in 0..3u64 {
            let m = c0.begin_write(Value::unique(0, k)).unwrap();
            replies.push(s.on_submit(ClientId::new(0), m).pop().unwrap().1);
        }
        assert_eq!(s.pending_len(), 3);
        let (commit1, _) = c0.handle_reply(replies.remove(0)).unwrap();
        s.on_commit(ClientId::new(0), commit1.unwrap());
        assert_eq!(s.pending_len(), 2, "ops 2 and 3 must survive");
        // The remaining replies still complete and GC the rest.
        for reply in replies {
            let (commit, _) = c0.handle_reply(reply).unwrap();
            s.on_commit(ClientId::new(0), commit.unwrap());
        }
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn exported_state_roundtrips_bit_identically() {
        let (mut s, mut cs) = setup(3);
        // Leave the server mid-protocol: committed ops AND a pending one.
        for round in 0..2u64 {
            for i in 0..3usize {
                let submit = cs[i].begin_write(Value::unique(i as u32, round)).unwrap();
                run_op(&mut s, &mut cs[i], submit);
            }
        }
        let uncommitted = cs[0].begin_write(Value::from("in-flight")).unwrap();
        s.on_submit(ClientId::new(0), uncommitted);
        assert_eq!(s.pending_len(), 1);

        let rebuilt = UstorServer::from_state(s.export_state());
        assert_eq!(rebuilt, s, "round-trip must be bit-identical");
        // And the rebuilt server behaves identically on new input.
        let mut a = s.clone();
        let mut b = rebuilt;
        let submit = cs[1].begin_read(ClientId::new(0)).unwrap();
        let ra = a.on_submit(ClientId::new(1), submit.clone());
        let rb = b.on_submit(ClientId::new(1), submit);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn absorb_submit_reaches_the_same_state_as_on_submit() {
        // Two servers fed an identical stream — one building replies,
        // one absorbing — must be equal after every step, including
        // piggybacked commits and interleaved reads.
        let (mut replying, mut cs) = setup(3);
        for client in &mut cs {
            client.set_commit_mode(crate::client::CommitMode::Piggyback);
        }
        let script: Vec<(ClientId, SubmitMsg)> = {
            let mut ops = Vec::new();
            for round in 0..3u64 {
                for i in 0..3usize {
                    let id = ClientId::new(i as u32);
                    let submit = if (round + i as u64).is_multiple_of(2) {
                        cs[i].begin_write(Value::unique(i as u32, round)).unwrap()
                    } else {
                        cs[i]
                            .begin_read(ClientId::new(((i + 1) % 3) as u32))
                            .unwrap()
                    };
                    ops.push((id, submit.clone()));
                    // Drive the real client forward so later submits carry
                    // genuine piggybacked commits.
                    let mut replies = replying.on_submit(id, submit);
                    let (_, reply) = replies.pop().unwrap();
                    cs[i].handle_reply(reply).expect("correct server");
                }
            }
            ops
        };
        let mut a = UstorServer::new(3);
        let mut b = UstorServer::new(3);
        for (id, submit) in script {
            a.on_submit(id, submit.clone());
            b.absorb_submit(id, submit);
            assert_eq!(a, b, "states must stay bit-identical");
        }
        assert!(a.pending_len() > 0, "the script left work in L");
    }

    #[test]
    fn memory_backend_builds_a_fresh_server() {
        let server = MemoryBackend.build(4).expect("infallible");
        // The backend starts from scratch: nothing pending, no state.
        let direct = UstorServer::new(4);
        assert_eq!(direct.pending_len(), 0);
        drop(server);
    }

    #[test]
    fn concurrent_read_sees_pending_write() {
        // A read scheduled after a not-yet-committed write returns the new
        // value: MEM is updated at SUBMIT time.
        let (mut s, mut cs) = setup(2);
        let w = cs[0].begin_write(Value::from("new")).unwrap();
        let wr = s.on_submit(ClientId::new(0), w);
        // C1 reads while C0's write is uncommitted.
        let r = cs[1].begin_read(ClientId::new(0)).unwrap();
        let rr = s.on_submit(ClientId::new(1), r);
        let (_, done) = cs[1]
            .handle_reply(rr.into_iter().next().unwrap().1)
            .unwrap();
        assert_eq!(done.read_value, Some(Some(Value::from("new"))));
        // C0 completes afterwards — nobody blocked.
        let (_, d0) = cs[0]
            .handle_reply(wr.into_iter().next().unwrap().1)
            .unwrap();
        assert_eq!(d0.timestamp, 1);
    }
}
