//! Server-misbehaviour diagnoses and server-side fault *injection*.
//!
//! Every check a USTOR client performs on a REPLY message (Algorithm 1,
//! lines 35–52) has a corresponding [`Fault`] variant, so tests and
//! operators can see *which* check a Byzantine server tripped. Any fault
//! is proof that the server violated its specification: a correct server
//! never triggers one (failure-detection accuracy, Definition 5 property
//! 5).
//!
//! The injection side lives in [`CrashRestartServer`]: a wrapper that
//! kills its inner server after a scheduled number of messages and
//! rebuilds it from a [`ServerBackend`], optionally
//! running a tamper hook (e.g. log truncation) in between. With a
//! volatile backend the "restart" silently erases the schedule — the
//! rollback clients must detect; with a persistent backend an honest
//! restart is invisible.

use crate::server::{Server, ServerBackend, SessionResume};
use faust_types::{ClientId, CommitMsg, ReplyMsg, SubmitMsg};
use std::fmt;

/// Proof of server misbehaviour detected by a client.
///
/// The paper's client executes `output fail_i; halt` when a check fails;
/// this enum is the reason attached to that event. Line numbers refer to
/// Algorithm 1 in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Line 35: the COMMIT-signature on the reply's main version
    /// `(V^c, M^c)` does not verify against client `c`.
    BadCommitVersionSignature,
    /// Line 36, first conjunct: the reply's version is not `≽` the
    /// client's own version — the server tried to rewind or fork history.
    VersionRegression,
    /// Line 36, second conjunct: `V^c[i] ≠ V_i[i]` — the reply's version
    /// accounts for a different number of the client's own operations than
    /// the client has performed.
    OwnTimestampMismatch,
    /// Line 41: a pending operation's client has a non-`⊥` digest entry
    /// but the server presented no PROOF-signature for it.
    MissingProofSignature,
    /// Line 41: the presented PROOF-signature does not verify.
    BadProofSignature,
    /// Line 41, pipelined generalization: more pending operations of one
    /// client lack a vouching PROOF-signature than the deployment's
    /// pipeline depth allows — commits cannot legitimately lag submits
    /// that far, so the server is replaying or fabricating invocations.
    UnanchoredPendingOverflow,
    /// Line 43, first disjunct: the pending list contains an operation by
    /// this client itself — impossible, since a client is sequential.
    OwnOperationPending,
    /// Line 43, second disjunct: a pending tuple's SUBMIT-signature does
    /// not verify against the expected timestamp (replayed or fabricated
    /// invocation).
    BadSubmitSignature,
    /// Line 49: the COMMIT-signature on the writer's version `(V^j, M^j)`
    /// returned with a read does not verify.
    BadWriterCommitSignature,
    /// Line 50: the DATA-signature on the returned value does not verify —
    /// the value or its timestamp was tampered with.
    BadDataSignature,
    /// Line 51, first conjunct: the writer's version is not `≼` the
    /// reply's main version.
    WriterVersionAhead,
    /// Line 51, second conjunct: the returned value's timestamp `t_j`
    /// differs from `V_i[j]` — the server served a value inconsistent
    /// with the view history it presented.
    DataTimestampMismatch,
    /// Line 52: `V^j[j] ∉ {t_j, t_j − 1}` — the writer's committed
    /// version does not match the returned timestamp.
    WriterSelfEntryMismatch,
    /// The reply is structurally invalid (wrong vector arity, out-of-range
    /// client index, missing read part). A correct server never sends
    /// such a message.
    MalformedReply(&'static str),
    /// A REPLY arrived while no operation was in flight. FIFO channels
    /// from a correct server cannot produce this.
    UnsolicitedReply,
    /// A session resumed from a persisted state file failed its first
    /// post-resume verification — the state file is a *rollback* of the
    /// session the server remembers (stale snapshot, restored backup).
    /// Unlike the other variants this convicts the resumed *client
    /// state*, not the server; it is raised by the resume guard in
    /// `faust-core`, never by live protocol checks.
    StaleClientState,
}

impl Fault {
    /// The Algorithm 1 line whose check detected the fault, if any.
    pub fn algorithm_line(&self) -> Option<u32> {
        match self {
            Fault::BadCommitVersionSignature => Some(35),
            Fault::VersionRegression | Fault::OwnTimestampMismatch => Some(36),
            Fault::MissingProofSignature
            | Fault::BadProofSignature
            | Fault::UnanchoredPendingOverflow => Some(41),
            Fault::OwnOperationPending | Fault::BadSubmitSignature => Some(43),
            Fault::BadWriterCommitSignature => Some(49),
            Fault::BadDataSignature => Some(50),
            Fault::WriterVersionAhead | Fault::DataTimestampMismatch => Some(51),
            Fault::WriterSelfEntryMismatch => Some(52),
            Fault::MalformedReply(_) | Fault::UnsolicitedReply | Fault::StaleClientState => None,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::BadCommitVersionSignature => {
                f.write_str("invalid commit signature on reply version")
            }
            Fault::VersionRegression => f.write_str("reply version regresses the client version"),
            Fault::OwnTimestampMismatch => {
                f.write_str("reply version disagrees on the client's own timestamp")
            }
            Fault::MissingProofSignature => {
                f.write_str("missing proof signature for a pending operation")
            }
            Fault::BadProofSignature => {
                f.write_str("invalid proof signature for a pending operation")
            }
            Fault::UnanchoredPendingOverflow => {
                f.write_str("more unanchored pending operations than the pipeline depth allows")
            }
            Fault::OwnOperationPending => {
                f.write_str("server lists the client's own operation as pending")
            }
            Fault::BadSubmitSignature => {
                f.write_str("invalid submit signature on a pending operation")
            }
            Fault::BadWriterCommitSignature => {
                f.write_str("invalid commit signature on the writer's version")
            }
            Fault::BadDataSignature => f.write_str("invalid data signature on the read value"),
            Fault::WriterVersionAhead => {
                f.write_str("writer's version is not below the reply version")
            }
            Fault::DataTimestampMismatch => {
                f.write_str("returned value timestamp disagrees with the view history")
            }
            Fault::WriterSelfEntryMismatch => {
                f.write_str("writer's committed version disagrees with the value timestamp")
            }
            Fault::MalformedReply(why) => write!(f, "malformed reply: {why}"),
            Fault::UnsolicitedReply => f.write_str("reply received with no operation in flight"),
            Fault::StaleClientState => {
                f.write_str("resumed client state is stale (rolled-back session file)")
            }
        }
    }
}

impl std::error::Error for Fault {}

/// A hook run between the simulated crash and the recovery, while the
/// server is "down" — the natural place to tamper with durable state
/// (truncate the log, delete a snapshot) and model a rollback attack.
pub type RestartHook = Box<dyn FnMut() + Send>;

/// Fault injection: a server that crashes after a scheduled number of
/// messages and restarts from its backend.
///
/// The wrapper processes each message through the inner server first and
/// crashes *between* messages, so every acknowledged operation was fully
/// handled before the crash — exactly the situation a write-ahead log
/// must survive. On the crash it drops the inner server (the "kill"),
/// runs the optional [`RestartHook`], then rebuilds the inner server via
/// [`ServerBackend::build`] (the "restart" — for a persistent backend,
/// recovery from disk).
///
/// Whether clients notice is entirely the backend's doing:
///
/// * [`MemoryBackend`](crate::MemoryBackend): the restart erases `MEM`,
///   `SVER`, and the schedule. The next reply carries a rewound version,
///   which clients flag as [`Fault::VersionRegression`] /
///   [`Fault::OwnTimestampMismatch`].
/// * a persistent backend with a complete log: recovery rebuilds
///   bit-identical state and the restart is invisible.
/// * a persistent backend whose log was truncated by the hook: locally
///   consistent recovery of a *prefix* — the rollback attack, detected by
///   clients exactly like the volatile case.
///
/// If the backend fails to rebuild, the server stays down and answers
/// nothing (crash-silence), which the fail-aware layer already models.
pub struct CrashRestartServer {
    n: usize,
    backend: Box<dyn ServerBackend + Send>,
    inner: Option<Box<dyn Server + Send>>,
    crash_after: usize,
    seen: usize,
    hook: Option<RestartHook>,
    restarts: usize,
}

impl fmt::Debug for CrashRestartServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CrashRestartServer")
            .field("n", &self.n)
            .field("crash_after", &self.crash_after)
            .field("seen", &self.seen)
            .field("restarts", &self.restarts)
            .field("down", &self.inner.is_none())
            .finish_non_exhaustive()
    }
}

impl CrashRestartServer {
    /// Wraps a server built from `backend`, scheduled to crash after
    /// `crash_after` messages (SUBMITs and COMMITs both count).
    ///
    /// # Errors
    ///
    /// Propagates the backend's error for the *initial* build.
    pub fn new(
        n: usize,
        backend: Box<dyn ServerBackend + Send>,
        crash_after: usize,
    ) -> std::io::Result<Self> {
        let inner = backend.build(n)?;
        Ok(CrashRestartServer {
            n,
            backend,
            inner: Some(inner),
            crash_after,
            seen: 0,
            hook: None,
            restarts: 0,
        })
    }

    /// Installs a hook run while the server is down, between the kill and
    /// the recovery (builder style).
    #[must_use]
    pub fn with_hook(mut self, hook: RestartHook) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Number of crash/restart cycles performed so far.
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// Whether the server is currently down (backend rebuild failed).
    pub fn is_down(&self) -> bool {
        self.inner.is_none()
    }

    /// Counts one processed message and performs the scheduled
    /// crash/restart once the count is reached.
    fn after_message(&mut self) {
        self.seen += 1;
        if self.seen != self.crash_after {
            return;
        }
        // Kill: drop all volatile state.
        self.inner = None;
        // Tamper with durable state while down, if scheduled.
        if let Some(hook) = &mut self.hook {
            hook();
        }
        // Restart: whatever the backend can recover.
        self.inner = self.backend.build(self.n).ok();
        self.restarts += 1;
    }
}

impl Server for CrashRestartServer {
    // The engine collects resumable sessions once, at construction —
    // forward whatever the initial build recovered. (Mid-run restarts
    // don't need this: the engine's own sessions survive them.)
    fn resume_sessions(&mut self) -> Vec<SessionResume> {
        match &mut self.inner {
            Some(server) => server.resume_sessions(),
            None => Vec::new(),
        }
    }

    fn on_submit(&mut self, client: ClientId, msg: SubmitMsg) -> Vec<(ClientId, ReplyMsg)> {
        let replies = match &mut self.inner {
            Some(server) => server.on_submit(client, msg),
            None => Vec::new(), // down: crash-silence
        };
        self.after_message();
        replies
    }

    fn on_commit(&mut self, client: ClientId, msg: CommitMsg) -> Vec<(ClientId, ReplyMsg)> {
        let replies = match &mut self.inner {
            Some(server) => server.on_commit(client, msg),
            None => Vec::new(),
        };
        self.after_message();
        replies
    }

    // Durability flushes pass straight through to the inner server (a
    // group-committing backend holds replies until its batched fsync);
    // while the server is down there is nothing to flush — crash-silence.
    fn flush(&mut self, force: bool) -> Vec<(ClientId, ReplyMsg)> {
        match &mut self.inner {
            Some(server) => server.flush(force),
            None => Vec::new(),
        }
    }

    fn flush_deadline(&self) -> Option<std::time::Instant> {
        self.inner.as_ref().and_then(|s| s.flush_deadline())
    }

    fn flush_deadline_at(&self) -> Option<u64> {
        self.inner.as_ref().and_then(|s| s.flush_deadline_at())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_numbers_match_paper() {
        assert_eq!(Fault::BadCommitVersionSignature.algorithm_line(), Some(35));
        assert_eq!(Fault::VersionRegression.algorithm_line(), Some(36));
        assert_eq!(Fault::BadProofSignature.algorithm_line(), Some(41));
        assert_eq!(Fault::OwnOperationPending.algorithm_line(), Some(43));
        assert_eq!(Fault::BadWriterCommitSignature.algorithm_line(), Some(49));
        assert_eq!(Fault::BadDataSignature.algorithm_line(), Some(50));
        assert_eq!(Fault::DataTimestampMismatch.algorithm_line(), Some(51));
        assert_eq!(Fault::WriterSelfEntryMismatch.algorithm_line(), Some(52));
        assert_eq!(Fault::MalformedReply("x").algorithm_line(), None);
        assert_eq!(Fault::StaleClientState.algorithm_line(), None);
    }

    #[test]
    fn display_is_nonempty() {
        for fault in [
            Fault::BadCommitVersionSignature,
            Fault::VersionRegression,
            Fault::UnsolicitedReply,
            Fault::MalformedReply("arity"),
            Fault::StaleClientState,
        ] {
            assert!(!fault.to_string().is_empty());
        }
    }
}
