//! Regenerates every figure and quantitative claim of the paper as
//! printed tables (experiments E1–E9 of DESIGN.md; EXPERIMENTS.md records
//! the outcomes).
//!
//! Run with: `cargo run -p faust-bench --bin experiments --release`

use faust_bench::{
    commit_mode_ablation, concurrency_sweep, crash_blocking, detection_latency_sweep,
    message_size_sweep, rounds_per_op, stability_latency_sweep,
};

fn main() {
    println!("FAUST reproduction — experiment suite");
    println!("=====================================\n");

    // E5: one round of message exchange per operation.
    println!("E5  rounds per operation (paper §5: \"a single round ... for every operation\")");
    println!("    n   ops   msgs/op  rounds/op  bytes/op");
    for n in [2usize, 4, 8, 16, 32] {
        let row = rounds_per_op(n, 20);
        println!(
            "  {:>3} {:>5}   {:>7.2}  {:>9.2}  {:>8.1}",
            row.n, row.ops, row.messages_per_op, row.rounds_per_op, row.bytes_per_op
        );
    }
    println!();

    // E5b: the commit-piggybacking ablation.
    println!("E5b commit piggybacking ablation (paper §5: the COMMIT \"can be eliminated by");
    println!("    piggybacking its contents on the SUBMIT message of the next operation\")");
    println!("      n   immediate msgs/op (bytes)   piggyback msgs/op (bytes)");
    for row in commit_mode_ablation(&[2, 8, 32], 20) {
        println!(
            "  {:>5}   {:>10.2} ({:>7.1})        {:>10.2} ({:>7.1})",
            row.n,
            row.immediate_msgs_per_op,
            row.immediate_bytes_per_op,
            row.piggyback_msgs_per_op,
            row.piggyback_bytes_per_op
        );
    }
    println!();

    // E6: O(n) bits of communication overhead per request.
    println!("E6  message sizes in bytes vs n (paper §1/§5: O(n) overhead per request;");
    println!("    64-byte register values)");
    println!("      n   SUBMIT   REPLY(w)   COMMIT   REPLY(r)");
    let rows = message_size_sweep(&[2, 4, 8, 16, 32, 64, 128, 256], 64);
    for row in &rows {
        println!(
            "  {:>5}   {:>6}   {:>8}   {:>6}   {:>8}",
            row.n, row.submit_write, row.reply_write, row.commit, row.reply_read
        );
    }
    let d1 = rows[1].reply_write - rows[0].reply_write;
    let dl = rows[7].reply_write - rows[6].reply_write;
    println!(
        "    growth check: Δ(n:2→4) = {d1} B, Δ(n:128→256) = {dl} B ⇒ {} B/client — linear ✓\n",
        dl / 128
    );

    // E7: wait-freedom vs blocking.
    println!("E7a concurrency sweep (paper §1: no fork-linearizable protocol is wait-free;");
    println!("    k clients write 5 ops each, link delay 10 ticks, virtual completion time)");
    println!("      k    USTOR   lock-step   slowdown");
    for row in concurrency_sweep(&[2, 4, 8, 16, 32], 5, 10) {
        println!(
            "  {:>5}   {:>6}   {:>9}   {:>7.1}x",
            row.clients,
            row.ustor_time,
            row.lockstep_time,
            row.lockstep_time as f64 / row.ustor_time as f64
        );
    }
    println!();

    println!("E7b crash while operating (survivors' completed ops out of attempted)");
    for n in [3usize, 8] {
        let row = crash_blocking(n, 5);
        println!(
            "    n={n}: USTOR {}/{} — lock-step {}/{} (lock holder crashed)",
            row.ustor_completed, row.survivor_ops, row.lockstep_completed, row.survivor_ops
        );
    }
    println!();

    // E8: failure-detection latency vs probe period.
    println!("E8  failure-detection latency vs probe period Δ (split-brain fork at t=0,");
    println!("    4 clients, mean over 5 seeds; Definition 5 property 7)");
    println!("        Δ    detection time   rate");
    for row in detection_latency_sweep(&[50, 100, 200, 400, 800, 1600], 5, 4) {
        println!(
            "    {:>5}   {:>14.0}   {:>4.0}%",
            row.probe_period,
            row.mean_detection_time,
            row.detection_rate * 100.0
        );
    }
    println!();

    // E9: stability latency vs dummy-read/probe periods.
    println!("E9  time from op completion to global stability (correct server, 3 clients,");
    println!("    mean over 5 seeds)");
    println!("    tick   Δ(probe)   stability time");
    for row in stability_latency_sweep(
        &[(10, 100), (25, 200), (50, 400), (100, 800), (200, 1600)],
        5,
        3,
    ) {
        println!(
            "    {:>4}   {:>8}   {:>14.0}",
            row.tick_period, row.probe_period, row.mean_stability_time
        );
    }
    println!();
    println!("(E1–E4 are the scenario reproductions: run the examples `quickstart`,");
    println!(" `collaboration`, `forking_attack`, `wait_freedom`.)");
}
