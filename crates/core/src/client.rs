//! The FAUST client (Section 6): wraps the USTOR protocol's extended
//! operations with stability detection, offline probing, and failure
//! propagation, implementing the fail-aware untrusted service of
//! Definition 5.
//!
//! Like the USTOR client it wraps, [`FaustClient`] is sans-io: every
//! entry point takes the current time and returns the [`Actions`] the
//! caller must perform — messages for the server, offline messages for
//! other clients, and notifications for the application.

use crate::events::{FailReason, FaustCompletion, Notification, StabilityCut};
use crate::offline::OfflineMsg;
use faust_crypto::sig::{Keypair, VerifierRegistry};
use faust_types::{ClientId, ReplyMsg, Timestamp, UstorMsg, Value, Version, Wire, WireError};
use faust_ustor::{Fault, UstorClient, UstorClientState};
use std::collections::VecDeque;

/// Tuning parameters of the FAUST layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaustConfig {
    /// `Δ`: if no version update has been received from a client for this
    /// long (virtual time), probe it offline.
    pub probe_period: u64,
    /// Whether to issue dummy reads when idle (one per tick, round-robin
    /// over the other clients' registers). The paper requires them for
    /// stability detection; disabling them isolates the probe mechanism
    /// in experiments.
    pub dummy_reads: bool,
    /// COMMIT transmission strategy of the underlying USTOR client
    /// (Section 5 piggybacking optimization).
    pub commit_mode: faust_ustor::CommitMode,
    /// Pipeline depth of the underlying USTOR client: how many user
    /// operations may be in flight at once. 1 (the default) is the
    /// paper's sequential client; deeper windows overlap round trips and
    /// group-commit latency at the cost of a wider detection window (see
    /// `faust_ustor::client` and `docs/client-api.md`). The depth is a
    /// deployment-wide protocol parameter — configure every client
    /// identically.
    pub pipeline: usize,
}

impl Default for FaustConfig {
    fn default() -> Self {
        FaustConfig {
            probe_period: 200,
            dummy_reads: true,
            commit_mode: faust_ustor::CommitMode::Immediate,
            pipeline: 1,
        }
    }
}

/// A queued user operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserOp {
    /// Write the client's own register.
    Write(Value),
    /// Read a register.
    Read(ClientId),
}

impl Wire for UserOp {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            UserOp::Write(value) => {
                0u8.encode_into(out);
                value.encode_into(out);
            }
            UserOp::Read(register) => {
                1u8.encode_into(out);
                register.encode_into(out);
            }
        }
    }

    fn decode_from(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode_from(buf)? {
            0 => Ok(UserOp::Write(Value::decode_from(buf)?)),
            1 => Ok(UserOp::Read(ClientId::decode_from(buf)?)),
            tag => Err(WireError::BadTag(tag)),
        }
    }
}

/// Serializable snapshot of a [`FaustClient`]'s resumable state (keys
/// excluded — the caller re-supplies the keypair and registry on
/// restore). Produced by [`FaustClient::export_state`], consumed by
/// [`FaustClient::from_state`].
///
/// A halted client's failure is *not* part of the state: a failed
/// session has nothing to resume, and callers refuse to export one at
/// the [`crate::SessionCore`] layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaustClientState {
    /// The wrapped USTOR protocol state (carries `id`, `n`, the version,
    /// in-flight operations, pipeline depth, and commit mode).
    pub ustor: UstorClientState,
    /// [`FaustConfig::probe_period`].
    pub probe_period: u64,
    /// [`FaustConfig::dummy_reads`].
    pub dummy_reads: bool,
    /// `VER_i[j]`: maximal version received per client.
    pub ver: Vec<Version>,
    /// Virtual time of the last update (or probe) per entry.
    pub ver_time: Vec<u64>,
    /// Index of the maximal version in `ver`.
    pub max_idx: u32,
    /// The stability cut `W_i`.
    pub w: Vec<Timestamp>,
    /// User operations queued but not yet begun, oldest first.
    pub user_queue: Vec<UserOp>,
    /// One flag per in-flight operation, oldest first: 1 = user
    /// operation (completion notifies the application), 0 = dummy read.
    pub current_user: Vec<u8>,
    /// Round-robin pointer for dummy reads.
    pub rr_next: u32,
}

impl Wire for FaustClientState {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.ustor.encode_into(out);
        self.probe_period.encode_into(out);
        u8::from(self.dummy_reads).encode_into(out);
        self.ver.encode_into(out);
        self.ver_time.encode_into(out);
        self.max_idx.encode_into(out);
        self.w.encode_into(out);
        self.user_queue.encode_into(out);
        self.current_user.encode_into(out);
        self.rr_next.encode_into(out);
    }

    fn decode_from(buf: &mut &[u8]) -> Result<Self, WireError> {
        let ustor = UstorClientState::decode_from(buf)?;
        let probe_period = u64::decode_from(buf)?;
        let dummy_reads = match u8::decode_from(buf)? {
            0 => false,
            1 => true,
            tag => return Err(WireError::BadTag(tag)),
        };
        let ver = Vec::<Version>::decode_from(buf)?;
        let ver_time = Vec::<u64>::decode_from(buf)?;
        let max_idx = u32::decode_from(buf)?;
        let w = Vec::<Timestamp>::decode_from(buf)?;
        let user_queue = Vec::<UserOp>::decode_from(buf)?;
        let current_user = Vec::<u8>::decode_from(buf)?;
        if let Some(&tag) = current_user.iter().find(|&&flag| flag > 1) {
            return Err(WireError::BadTag(tag));
        }
        let rr_next = u32::decode_from(buf)?;
        Ok(FaustClientState {
            ustor,
            probe_period,
            dummy_reads,
            ver,
            ver_time,
            max_idx,
            w,
            user_queue,
            current_user,
            rr_next,
        })
    }
}

/// Everything the caller must do after an event: forward messages and
/// deliver notifications.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Actions {
    /// Messages to send to the storage server, in order.
    pub to_server: Vec<UstorMsg>,
    /// Offline messages to other clients.
    pub offline: Vec<(ClientId, OfflineMsg)>,
    /// Notifications for the application.
    pub notifications: Vec<Notification>,
}

#[derive(Debug, Clone, Copy)]
struct CurrentOp {
    user: bool,
}

/// User operations in flight, oldest first (completions arrive FIFO).
type InFlight = VecDeque<CurrentOp>;

/// The FAUST protocol state for one client.
///
/// # Example
///
/// ```
/// use faust_core::{FaustClient, FaustConfig, UserOp};
/// use faust_crypto::sig::KeySet;
/// use faust_types::{ClientId, Value};
///
/// let keys = KeySet::generate(2, b"doc");
/// let mut client = FaustClient::new(
///     ClientId::new(0),
///     2,
///     keys.keypair(0).unwrap().clone(),
///     keys.registry(),
///     FaustConfig::default(),
/// );
/// let actions = client.invoke(UserOp::Write(Value::from("v1")), 0);
/// assert_eq!(actions.to_server.len(), 1); // the SUBMIT message
/// ```
#[derive(Debug, Clone)]
pub struct FaustClient {
    ustor: UstorClient,
    keypair: Keypair,
    config: FaustConfig,
    /// `VER_i[j]`: maximal version received from client `j` (own entry =
    /// own last committed version).
    ver: Vec<Version>,
    /// Virtual time of the last update (or probe) per entry.
    ver_time: Vec<u64>,
    /// Index of the maximal version in `ver`.
    max_idx: usize,
    /// The current stability cut `W_i`.
    w: Vec<Timestamp>,
    user_queue: VecDeque<UserOp>,
    current: InFlight,
    /// Round-robin pointer for dummy reads.
    rr_next: u32,
    failed: Option<FailReason>,
    /// Set when this client was rebuilt from a persisted snapshot and
    /// has not yet validated a reply against the live server. While set,
    /// any USTOR fault is reported as [`Fault::StaleClientState`]: a
    /// rolled-back snapshot replays timestamps the server has already
    /// answered, and the resulting mismatch (cached-reply divergence or
    /// an own-timestamp mismatch, Algorithm 1 line 36) is evidence of
    /// stale *local* state, not of server misbehavior. Cleared by the
    /// first successfully verified reply.
    stale_guard: bool,
}

impl FaustClient {
    /// Creates the FAUST client state for client `id` of `n`.
    ///
    /// # Panics
    ///
    /// Panics if the keypair does not match `id` or `id ≥ n`.
    pub fn new(
        id: ClientId,
        n: usize,
        keypair: Keypair,
        registry: VerifierRegistry,
        config: FaustConfig,
    ) -> Self {
        let mut ustor = UstorClient::new(id, n, keypair.clone(), registry);
        ustor.set_commit_mode(config.commit_mode);
        ustor.set_pipeline(config.pipeline);
        FaustClient {
            ustor,
            keypair,
            config,
            ver: vec![Version::initial(n); n],
            ver_time: vec![0; n],
            max_idx: id.index(),
            w: vec![0; n],
            user_queue: VecDeque::new(),
            current: VecDeque::new(),
            rr_next: 0,
            failed: None,
            stale_guard: false,
        }
    }

    /// Snapshots the resumable state (keys excluded; see
    /// [`FaustClientState`]).
    pub fn export_state(&self) -> FaustClientState {
        FaustClientState {
            ustor: self.ustor.export_state(),
            probe_period: self.config.probe_period,
            dummy_reads: self.config.dummy_reads,
            ver: self.ver.clone(),
            ver_time: self.ver_time.clone(),
            max_idx: self.max_idx as u32,
            w: self.w.clone(),
            user_queue: self.user_queue.iter().cloned().collect(),
            current_user: self.current.iter().map(|c| u8::from(c.user)).collect(),
            rr_next: self.rr_next,
        }
    }

    /// Rebuilds a client from a state snapshot plus its (externally
    /// kept) key material. The restored client starts with the stale
    /// guard armed: until its first reply verifies against the live
    /// server, any USTOR fault is reported as
    /// [`Fault::StaleClientState`] (see the field docs). Callers should
    /// follow up with [`FaustClient::probe_resume`] so staleness
    /// surfaces promptly even when nothing was in flight.
    ///
    /// # Panics
    ///
    /// Panics if the keypair does not match the snapshot's `id` or
    /// `id ≥ n` (same contract as [`FaustClient::new`]).
    pub fn from_state(
        keypair: Keypair,
        registry: VerifierRegistry,
        state: FaustClientState,
    ) -> Self {
        let config = FaustConfig {
            probe_period: state.probe_period,
            dummy_reads: state.dummy_reads,
            commit_mode: if state.ustor.piggyback {
                faust_ustor::CommitMode::Piggyback
            } else {
                faust_ustor::CommitMode::Immediate
            },
            pipeline: (state.ustor.max_pipeline as usize).max(1),
        };
        let n = state.ustor.n as usize;
        let ustor = UstorClient::from_state(keypair.clone(), registry, state.ustor);
        FaustClient {
            ustor,
            keypair,
            config,
            ver: state.ver,
            ver_time: state.ver_time,
            max_idx: (state.max_idx as usize).min(n.saturating_sub(1)),
            w: state.w,
            user_queue: state.user_queue.into(),
            current: state
                .current_user
                .into_iter()
                .map(|flag| CurrentOp { user: flag != 0 })
                .collect(),
            rr_next: state.rr_next,
            failed: None,
            stale_guard: true,
        }
    }

    /// Issues a non-user read of the client's own register, if nothing
    /// is in flight. Runtimes call this once after
    /// [`FaustClient::from_state`]: the probe round-trips the restored
    /// version against the live server, so a rolled-back snapshot is
    /// flagged as [`Fault::StaleClientState`] at connect time instead of
    /// lying dormant until the next user operation. When resumed
    /// operations are already in flight the probe is skipped — their
    /// resent SUBMITs perform the same validation.
    pub fn probe_resume(&mut self, _now: u64) -> Actions {
        let mut actions = Actions::default();
        if self.failed.is_some() || self.ustor.in_flight() > 0 {
            return actions;
        }
        if let Ok(msg) = self.ustor.begin_read(self.id()) {
            self.current.push_back(CurrentOp { user: false });
            actions.to_server.push(UstorMsg::Submit(msg));
        }
        actions
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.ustor.id()
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.ustor.num_clients()
    }

    /// The failure that halted this client, if any.
    pub fn failure(&self) -> Option<&FailReason> {
        self.failed.as_ref()
    }

    /// The current stability cut `W_i`.
    pub fn stability_cut(&self) -> StabilityCut {
        StabilityCut { w: self.w.clone() }
    }

    /// The maximal version this client knows.
    pub fn max_version(&self) -> &Version {
        &self.ver[self.max_idx]
    }

    /// Number of queued user operations (including those in flight).
    pub fn backlog(&self) -> usize {
        self.user_queue.len() + self.current.len()
    }

    /// The underlying protocol configuration.
    pub fn config(&self) -> &FaustConfig {
        &self.config
    }

    /// Whether nothing at all is in flight or queued (dummy reads
    /// included).
    pub fn is_idle(&self) -> bool {
        self.current.is_empty() && self.user_queue.is_empty()
    }

    /// In [`faust_ustor::CommitMode::Piggyback`]: takes the COMMIT
    /// awaiting the next SUBMIT, if any, so an idle runtime can send it
    /// explicitly (see [`faust_ustor::UstorClient::take_held_commit`]).
    pub fn take_held_commit(&mut self) -> Option<faust_types::CommitMsg> {
        self.ustor.take_held_commit()
    }

    /// Submits a user operation. It is queued if another operation is in
    /// flight (the service is used sequentially, but the application may
    /// hand over work at any time).
    pub fn invoke(&mut self, op: UserOp, now: u64) -> Actions {
        let mut actions = Actions::default();
        if self.failed.is_some() {
            return actions;
        }
        self.user_queue.push_back(op);
        self.maybe_start(&mut actions, now);
        actions
    }

    /// Processes a REPLY from the server.
    pub fn handle_reply(&mut self, reply: ReplyMsg, now: u64) -> Actions {
        let mut actions = Actions::default();
        if self.failed.is_some() {
            return actions;
        }
        match self.ustor.handle_reply(reply) {
            Err(fault) => {
                // A rebuilt-from-snapshot client that fails its first
                // reply check most likely restored rolled-back state
                // (the server has moved past the snapshot's timestamps);
                // blame the snapshot, not the server.
                let fault = if self.stale_guard {
                    Fault::StaleClientState
                } else {
                    fault
                };
                self.fail(FailReason::Ustor(fault), &mut actions);
            }
            Ok((commit, done)) => {
                self.stale_guard = false;
                if let Some(commit) = commit {
                    actions.to_server.push(UstorMsg::Commit(commit));
                }
                // Completions arrive FIFO: this reply answers the oldest
                // in-flight operation.
                let was_user = self.current.pop_front().map(|c| c.user).unwrap_or(false);
                let own = self.id().index();
                self.install_version(own, done.version.clone(), now, &mut actions);
                if self.failed.is_none() {
                    if let Some(writer_version) = &done.writer_version {
                        self.install_version(
                            done.target.index(),
                            writer_version.version.clone(),
                            now,
                            &mut actions,
                        );
                    }
                }
                if was_user {
                    actions
                        .notifications
                        .push(Notification::Completed(FaustCompletion {
                            kind: done.kind,
                            target: done.target,
                            timestamp: done.timestamp,
                            read_value: done.read_value.clone(),
                        }));
                }
                if self.failed.is_none() {
                    self.maybe_start(&mut actions, now);
                }
            }
        }
        actions
    }

    /// Processes an offline message from another client.
    pub fn handle_offline(&mut self, msg: OfflineMsg, now: u64) -> Actions {
        let mut actions = Actions::default();
        if self.failed.is_some() {
            return actions;
        }
        if !msg.verify(self.ustor_registry()) {
            return actions; // unauthenticated noise; ignore
        }
        match msg {
            OfflineMsg::Probe { from, .. } => {
                let version = self.ver[self.max_idx].clone();
                actions
                    .offline
                    .push((from, OfflineMsg::version(&self.keypair, version)));
            }
            OfflineMsg::Version { from, version, .. } => {
                self.install_version(from.index(), version, now, &mut actions);
            }
            OfflineMsg::Failure { from, .. } => {
                self.fail(FailReason::ReportedBy(from), &mut actions);
            }
        }
        actions
    }

    /// Periodic tick: probes silent clients and issues a dummy read when
    /// idle.
    pub fn on_tick(&mut self, now: u64) -> Actions {
        let mut actions = Actions::default();
        if self.failed.is_some() {
            return actions;
        }
        let me = self.id().index();
        for j in 0..self.num_clients() {
            if j == me {
                continue;
            }
            if now.saturating_sub(self.ver_time[j]) >= self.config.probe_period {
                self.ver_time[j] = now; // wait another Δ before re-probing
                actions
                    .offline
                    .push((ClientId::new(j as u32), OfflineMsg::probe(&self.keypair)));
            }
        }
        self.maybe_start(&mut actions, now);
        if self.current.is_empty()
            && self.user_queue.is_empty()
            && self.config.dummy_reads
            && self.num_clients() > 1
        {
            self.start_dummy_read(&mut actions);
        }
        actions
    }

    fn ustor_registry(&self) -> &VerifierRegistry {
        // The registry is shared; UstorClient holds a clone. Keep one
        // accessor so the offline path uses the same trust root.
        self.registry()
    }

    /// The verifier registry used for offline-message authentication.
    fn registry(&self) -> &VerifierRegistry {
        self.ustor.registry()
    }

    /// Starts as many queued user operations as the pipeline window
    /// allows (one, at the default depth).
    fn maybe_start(&mut self, actions: &mut Actions, _now: u64) {
        if self.failed.is_some() {
            return;
        }
        while !self.ustor.is_busy() {
            let Some(op) = self.user_queue.pop_front() else {
                return;
            };
            let submit = match op {
                UserOp::Write(value) => self.ustor.begin_write(value),
                UserOp::Read(register) => self.ustor.begin_read(register),
            };
            match submit {
                Ok(msg) => {
                    self.current.push_back(CurrentOp { user: true });
                    actions.to_server.push(UstorMsg::Submit(msg));
                }
                Err(_) => {
                    // Busy/halted: both are guarded above; nothing to do.
                    return;
                }
            }
        }
    }

    fn start_dummy_read(&mut self, actions: &mut Actions) {
        let n = self.num_clients() as u32;
        let me = self.id().as_u32();
        // Next round-robin target, skipping ourselves.
        let mut target = self.rr_next % n;
        if target == me {
            target = (target + 1) % n;
        }
        self.rr_next = (target + 1) % n;
        if let Ok(msg) = self.ustor.begin_read(ClientId::new(target)) {
            self.current.push_back(CurrentOp { user: false });
            actions.to_server.push(UstorMsg::Submit(msg));
        }
    }

    /// Installs a version received from client `j`, running the
    /// comparability check and refreshing the stability cut.
    fn install_version(&mut self, j: usize, version: Version, now: u64, actions: &mut Actions) {
        if !version.comparable(&self.ver[self.max_idx]) {
            self.fail(
                FailReason::IncomparableVersions {
                    from: ClientId::new(j as u32),
                },
                actions,
            );
            return;
        }
        if self.ver[j].lt(&version) {
            // Only a *growing* version counts as an update from C_j;
            // receiving a stale version must not suppress probing, or a
            // faulty server could keep forked clients from ever
            // exchanging versions (detection completeness would break).
            self.ver_time[j] = now;
            self.ver[j] = version;
            if self.ver[self.max_idx].le(&self.ver[j]) {
                self.max_idx = j;
            }
            self.refresh_stability(actions);
        }
    }

    fn refresh_stability(&mut self, actions: &mut Actions) {
        let me = self.id();
        let mut changed = false;
        for j in 0..self.num_clients() {
            let vji = self.ver[j].v().get(me);
            if vji > self.w[j] {
                self.w[j] = vji;
                changed = true;
            }
        }
        if changed {
            actions
                .notifications
                .push(Notification::Stable(self.stability_cut()));
        }
    }

    fn fail(&mut self, reason: FailReason, actions: &mut Actions) {
        if self.failed.is_some() {
            return;
        }
        self.failed = Some(reason.clone());
        let me = self.id();
        for j in ClientId::all(self.num_clients()) {
            if j != me {
                actions
                    .offline
                    .push((j, OfflineMsg::failure(&self.keypair)));
            }
        }
        actions.notifications.push(Notification::Failed(reason));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_crypto::sig::KeySet;
    use faust_types::OpKind;
    use faust_ustor::{Server, UstorServer};

    fn setup(n: usize) -> (UstorServer, Vec<FaustClient>) {
        let keys = KeySet::generate(n, b"faust-client");
        let clients = (0..n)
            .map(|i| {
                FaustClient::new(
                    ClientId::new(i as u32),
                    n,
                    keys.keypair(i as u32).unwrap().clone(),
                    keys.registry(),
                    FaustConfig::default(),
                )
            })
            .collect();
        (UstorServer::new(n), clients)
    }

    /// Pushes one user op through client `who` synchronously.
    fn run_user_op(
        server: &mut UstorServer,
        client: &mut FaustClient,
        op: UserOp,
        now: u64,
    ) -> Vec<Notification> {
        let mut notifications = Vec::new();
        let actions = client.invoke(op, now);
        notifications.extend(actions.notifications.clone());
        let mut to_server = actions.to_server;
        while let Some(msg) = to_server.first().cloned() {
            to_server.remove(0);
            let replies = match msg {
                UstorMsg::Submit(m) => server.on_submit(client.id(), m),
                UstorMsg::Commit(m) => server.on_commit(client.id(), m),
                UstorMsg::Reply(_) => Vec::new(),
            };
            for (_, reply) in replies {
                let a = client.handle_reply(reply, now);
                notifications.extend(a.notifications.clone());
                to_server.extend(a.to_server);
            }
        }
        notifications
    }

    #[test]
    fn user_op_completes_with_timestamp() {
        let (mut server, mut clients) = setup(2);
        let notes = run_user_op(
            &mut server,
            &mut clients[0],
            UserOp::Write(Value::from("x")),
            0,
        );
        let completed: Vec<_> = notes
            .iter()
            .filter_map(|n| match n {
                Notification::Completed(c) => Some(c.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].timestamp, 1);
        assert_eq!(completed[0].kind, OpKind::Write);
    }

    #[test]
    fn own_ops_are_immediately_self_stable() {
        let (mut server, mut clients) = setup(2);
        run_user_op(
            &mut server,
            &mut clients[0],
            UserOp::Write(Value::from("x")),
            0,
        );
        let cut = clients[0].stability_cut();
        assert_eq!(cut.w[0], 1, "own entry tracks own timestamp");
        assert_eq!(cut.w[1], 0, "nothing known from the other client yet");
    }

    #[test]
    fn reading_a_register_imports_the_writer_version() {
        let (mut server, mut clients) = setup(2);
        // C1 writes; C0 reads C1's register and thereby learns C1's
        // version. C1's version does not include any op of C0 yet, so
        // C0's stability w.r.t. C1 stays 0 — but after C1 reads C0's
        // register and C0 reads again, stability advances.
        run_user_op(
            &mut server,
            &mut clients[1],
            UserOp::Write(Value::from("b")),
            0,
        );
        run_user_op(
            &mut server,
            &mut clients[0],
            UserOp::Write(Value::from("a")),
            1,
        );
        run_user_op(
            &mut server,
            &mut clients[1],
            UserOp::Read(ClientId::new(0)),
            2,
        );
        let notes = run_user_op(
            &mut server,
            &mut clients[0],
            UserOp::Read(ClientId::new(1)),
            3,
        );
        // C0 now holds a version from C1 whose entry for C0 is 1.
        let cut = clients[0].stability_cut();
        assert_eq!(cut.w[1], 1, "C1 vouches for C0's first op");
        assert!(notes.iter().any(|n| matches!(n, Notification::Stable(_))));
    }

    #[test]
    fn probe_is_answered_with_max_version() {
        let (mut server, mut clients) = setup(2);
        run_user_op(
            &mut server,
            &mut clients[0],
            UserOp::Write(Value::from("a")),
            0,
        );
        let (c0, c1) = {
            let (a, b) = clients.split_at_mut(1);
            (&mut a[0], &mut b[0])
        };
        let probe = OfflineMsg::probe_from_tests(c1);
        let actions = c0.handle_offline(probe, 10);
        assert_eq!(actions.offline.len(), 1);
        let (to, reply) = &actions.offline[0];
        assert_eq!(*to, c1.id());
        let OfflineMsg::Version { version, .. } = reply else {
            panic!("expected VERSION, got {reply:?}");
        };
        assert_eq!(version, c0.max_version());
        // C1 installs it and now knows C0's version. No stability change
        // for C1 yet — the version contains no operation of C1.
        let _ = c1.handle_offline(reply.clone(), 11);
        assert_eq!(c1.max_version(), version);
        assert_eq!(c1.stability_cut().w, vec![0, 0]);
    }

    impl OfflineMsg {
        /// Test helper: a probe signed by `client`.
        fn probe_from_tests(client: &FaustClient) -> OfflineMsg {
            OfflineMsg::probe(&client.keypair)
        }
    }

    #[test]
    fn incomparable_version_triggers_failure() {
        let (mut server, mut clients) = setup(3);
        run_user_op(
            &mut server,
            &mut clients[0],
            UserOp::Write(Value::from("a")),
            0,
        );
        // Forge a version on a different branch: same length, different
        // digest (as a forking server would produce).
        let mut fork = Version::initial(3);
        fork.v_mut().set(ClientId::new(0), 1);
        fork.m_mut()
            .set(ClientId::new(0), faust_crypto::sha256(b"other branch"));
        let keys = KeySet::generate(3, b"faust-client");
        let msg = OfflineMsg::version(keys.keypair(1).unwrap(), fork);
        let actions = clients[0].handle_offline(msg, 5);
        assert!(matches!(
            actions.notifications.last(),
            Some(Notification::Failed(
                FailReason::IncomparableVersions { .. }
            ))
        ));
        // The failure is broadcast to all other clients.
        assert_eq!(actions.offline.len(), 2);
        assert!(clients[0].failure().is_some());
    }

    #[test]
    fn failure_report_propagates_and_halts() {
        let (mut _server, mut clients) = setup(2);
        let keys = KeySet::generate(2, b"faust-client");
        let report = OfflineMsg::failure(keys.keypair(1).unwrap());
        let actions = clients[0].handle_offline(report, 0);
        assert!(matches!(
            actions.notifications.last(),
            Some(Notification::Failed(FailReason::ReportedBy(c))) if c.index() == 1
        ));
        // Halted: further invocations are ignored.
        let a = clients[0].invoke(UserOp::Write(Value::from("x")), 1);
        assert!(a.to_server.is_empty());
    }

    #[test]
    fn unauthenticated_offline_messages_ignored() {
        let (mut _server, mut clients) = setup(2);
        let other_keys = KeySet::generate(2, b"different-universe");
        let forged = OfflineMsg::failure(other_keys.keypair(1).unwrap());
        let actions = clients[0].handle_offline(forged, 0);
        assert!(actions.notifications.is_empty());
        assert!(clients[0].failure().is_none());
    }

    #[test]
    fn tick_probes_silent_clients() {
        let (mut server, mut clients) = setup(3);
        run_user_op(
            &mut server,
            &mut clients[0],
            UserOp::Write(Value::from("a")),
            0,
        );
        let actions = clients[0].on_tick(1000);
        let probed: Vec<ClientId> = actions.offline.iter().map(|(to, _)| *to).collect();
        assert_eq!(probed, vec![ClientId::new(1), ClientId::new(2)]);
        // Within Δ of the probe, no re-probe.
        let actions = clients[0].on_tick(1001);
        assert!(actions.offline.is_empty());
    }

    #[test]
    fn tick_issues_round_robin_dummy_reads_when_idle() {
        let (mut _server, mut clients) = setup(3);
        let a1 = clients[0].on_tick(1);
        // One dummy read submitted (plus possibly probes at t=1? ver_time
        // starts at 0 and probe_period is 200, so no probes yet).
        assert_eq!(a1.to_server.len(), 1);
        let UstorMsg::Submit(s1) = &a1.to_server[0] else {
            panic!("expected submit");
        };
        assert_eq!(s1.tuple.kind, OpKind::Read);
        // While the dummy read is in flight, no second one starts.
        let a2 = clients[0].on_tick(2);
        assert!(a2.to_server.is_empty());
    }

    #[test]
    fn dummy_reads_skip_self_and_rotate() {
        let (mut server, mut clients) = setup(3);
        let mut targets = Vec::new();
        for t in 0..4 {
            let actions = clients[1].on_tick(t);
            let UstorMsg::Submit(s) = &actions.to_server[0] else {
                panic!("expected submit")
            };
            targets.push(s.tuple.register.index());
            // Complete the dummy read so the next tick can start one.
            let replies = server.on_submit(clients[1].id(), s.clone());
            for (_, r) in replies {
                let a = clients[1].handle_reply(r, t);
                for m in a.to_server {
                    if let UstorMsg::Commit(commit) = m {
                        server.on_commit(clients[1].id(), commit);
                    }
                }
            }
        }
        assert_eq!(targets, vec![0, 2, 0, 2], "round-robin skipping self");
    }
}
