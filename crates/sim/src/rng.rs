//! A small, deterministic pseudo-random number generator.
//!
//! The repository needs reproducible randomness in three places: the
//! simulator's delay models, workload generation, and the seeded property
//! tests. All of them use [`SmallRng`], a SplitMix64 generator — tiny,
//! fast, and with well-understood statistical quality for non-cryptographic
//! use. Equal seeds yield identical streams on every platform, which is
//! what keeps simulated executions bit-for-bit reproducible.

/// Deterministic SplitMix64 generator.
///
/// # Example
///
/// ```
/// use faust_sim::rng::SmallRng;
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[lo, hi]` (both inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Debiased multiply-shift (Lemire). For the small spans used here a
        // simple widening multiply is unbiased enough; reject the biased
        // tail to keep it exact.
        let span = span + 1;
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= threshold {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        self.gen_range_inclusive(0, n as u64 - 1) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..10).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(1), seq(1));
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range_inclusive(5, 9);
            assert!((5..=9).contains(&x));
            let i = r.gen_index(7);
            assert!(i < 7);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn degenerate_range_is_constant() {
        let mut r = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(r.gen_range_inclusive(4, 4), 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_index(8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket counts {counts:?}");
        }
    }
}
