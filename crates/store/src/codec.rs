//! Binary encodings for persisted values, built entirely from the
//! [`Wire`] codecs of `faust-types` — the on-disk format reuses the
//! byte-exact message encodings the protocol already ships, so a logged
//! record *is* the message the server acknowledged.

use faust_crypto::sig::Signature;
use faust_types::{ClientId, CommitMsg, SubmitMsg, Timestamp, Value, Wire, WireError};
use faust_ustor::{MemEntry, Server, ServerState};

/// One logged state mutation: an inbound protocol message, replayable
/// against any [`Server`].
///
/// Logging *inputs* rather than state deltas covers every mutation with
/// one record: a SUBMIT updates `MEM` and appends to the schedule `L`
/// (and may carry a piggybacked COMMIT), a COMMIT advances `SVER` and
/// prunes `L`. The server is deterministic, so replaying the accepted
/// inputs in order rebuilds bit-identical state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// `⟨SUBMIT, …⟩` accepted from `from`.
    Submit {
        /// The submitting client.
        from: ClientId,
        /// The message, exactly as received.
        msg: SubmitMsg,
    },
    /// `⟨COMMIT, …⟩` accepted from `from`.
    Commit {
        /// The committing client.
        from: ClientId,
        /// The message, exactly as received.
        msg: CommitMsg,
    },
    /// A record of a *sharded* deployment: `inner` as accepted, plus
    /// its position in the cross-shard global order. Each shard logs
    /// only the messages it owns, with ordinary consecutive *local* WAL
    /// sequence numbers; the global position travels inside the
    /// checksummed payload, and recovery merges the shards' logs back
    /// into one gap-checked global sequence (`sharded` module).
    Routed {
        /// The message's global sequence number across all shards.
        seq: u64,
        /// The logged message.
        inner: Box<LogRecord>,
    },
}

impl LogRecord {
    /// Applies this record to `server`, returning the replies it
    /// produces — the live write path (log first, then apply the very
    /// record that was logged, no copies).
    pub fn apply(self, server: &mut dyn Server) -> Vec<(ClientId, faust_types::ReplyMsg)> {
        match self {
            LogRecord::Submit { from, msg } => server.on_submit(from, msg),
            LogRecord::Commit { from, msg } => server.on_commit(from, msg),
            LogRecord::Routed { inner, .. } => inner.apply(server),
        }
    }

    /// Replays this record against `server`, discarding the replies (the
    /// original replies were delivered before the crash; recovery only
    /// rebuilds state).
    pub fn replay(self, server: &mut dyn Server) {
        self.apply(server);
    }

    /// The client the logged message came from.
    pub fn from(&self) -> ClientId {
        match self {
            LogRecord::Submit { from, .. } | LogRecord::Commit { from, .. } => *from,
            LogRecord::Routed { inner, .. } => inner.from(),
        }
    }

    /// The timestamp of the logged SUBMIT, if this record holds one —
    /// what recovery tags the rebuilt reply with so a restarted engine
    /// can answer a resent SUBMIT from its duplicate cache.
    pub fn submit_timestamp(&self) -> Option<Timestamp> {
        match self {
            LogRecord::Submit { msg, .. } => Some(msg.timestamp),
            LogRecord::Commit { .. } => None,
            LogRecord::Routed { inner, .. } => inner.submit_timestamp(),
        }
    }

    /// The global sequence number, for [`LogRecord::Routed`] records.
    pub fn global_seq(&self) -> Option<u64> {
        match self {
            LogRecord::Routed { seq, .. } => Some(*seq),
            _ => None,
        }
    }
}

impl Wire for LogRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            LogRecord::Submit { from, msg } => {
                out.push(0);
                from.encode_into(out);
                msg.encode_into(out);
            }
            LogRecord::Commit { from, msg } => {
                out.push(1);
                from.encode_into(out);
                msg.encode_into(out);
            }
            LogRecord::Routed { seq, inner } => {
                out.push(2);
                seq.encode_into(out);
                inner.encode_into(out);
            }
        }
    }

    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode_from(input)? {
            0 => Ok(LogRecord::Submit {
                from: ClientId::decode_from(input)?,
                msg: SubmitMsg::decode_from(input)?,
            }),
            1 => Ok(LogRecord::Commit {
                from: ClientId::decode_from(input)?,
                msg: CommitMsg::decode_from(input)?,
            }),
            2 => {
                let seq = u64::decode_from(input)?;
                let inner = LogRecord::decode_from(input)?;
                // A routed record wraps exactly one protocol message —
                // nesting would make the global order ambiguous.
                if matches!(inner, LogRecord::Routed { .. }) {
                    return Err(WireError::BadTag(2));
                }
                Ok(LogRecord::Routed {
                    seq,
                    inner: Box::new(inner),
                })
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Encodes a [`MemEntry`] (helper for the snapshot payload; `MemEntry`
/// lives in `faust-ustor`, which does not know about persistence).
fn encode_mem_entry(entry: &MemEntry, out: &mut Vec<u8>) {
    entry.timestamp.encode_into(out);
    entry.value.encode_into(out);
    entry.data_sig.encode_into(out);
}

fn decode_mem_entry(input: &mut &[u8]) -> Result<MemEntry, WireError> {
    Ok(MemEntry {
        timestamp: Timestamp::decode_from(input)?,
        value: Option::<Value>::decode_from(input)?,
        data_sig: Option::<Signature>::decode_from(input)?,
    })
}

/// Encodes a full [`ServerState`] (the snapshot payload body).
pub fn encode_state(state: &ServerState, out: &mut Vec<u8>) {
    (state.mem.len() as u32).encode_into(out);
    for entry in &state.mem {
        encode_mem_entry(entry, out);
    }
    state.sver.encode_into(out);
    state.proofs.encode_into(out);
    state.last_committer.encode_into(out);
    state.pending.encode_into(out);
}

/// Decodes a [`ServerState`] and validates its internal arity (all
/// per-client vectors must agree and the last committer must be in
/// range), so [`faust_ustor::UstorServer::from_state`] cannot panic on
/// hostile input.
///
/// # Errors
///
/// Returns a [`WireError`] on truncation, malformed fields, or arity
/// mismatch (reported as [`WireError::BadLength`]).
pub fn decode_state(input: &mut &[u8]) -> Result<ServerState, WireError> {
    let n = u32::decode_from(input)? as usize;
    // n = 0 is rejected outright: no deployment has zero clients, and a
    // zero-client state would defeat the last-committer range check
    // below (every ClientId would be out of range, including the one
    // `UstorServer::new` starts with).
    if n == 0 || n as u64 > (1 << 24) {
        return Err(WireError::BadLength(n as u64));
    }
    let mut mem = Vec::with_capacity(n);
    for _ in 0..n {
        mem.push(decode_mem_entry(input)?);
    }
    let state = ServerState {
        mem,
        sver: Wire::decode_from(input)?,
        proofs: Wire::decode_from(input)?,
        last_committer: ClientId::decode_from(input)?,
        pending: Wire::decode_from(input)?,
    };
    if state.sver.len() != n || state.proofs.len() != n {
        return Err(WireError::BadLength(state.sver.len() as u64));
    }
    if state.last_committer.index() >= n {
        return Err(WireError::BadLength(state.last_committer.index() as u64));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_crypto::sig::KeySet;
    use faust_ustor::{UstorClient, UstorServer};

    fn client(n: usize, i: u32) -> UstorClient {
        let keys = KeySet::generate(n, b"store-codec");
        UstorClient::new(
            ClientId::new(i),
            n,
            keys.keypair(i).unwrap().clone(),
            keys.registry(),
        )
    }

    #[test]
    fn log_record_roundtrips() {
        let mut c0 = client(2, 0);
        let submit = c0.begin_write(Value::from("payload")).unwrap();
        let rec = LogRecord::Submit {
            from: ClientId::new(0),
            msg: submit.clone(),
        };
        assert_eq!(LogRecord::decode(&rec.encode()), Ok(rec));

        // A commit record too, via a real protocol step.
        let mut server = UstorServer::new(2);
        let (_, reply) = server.on_submit(ClientId::new(0), submit).pop().unwrap();
        let (commit, _) = c0.handle_reply(reply).unwrap();
        let rec = LogRecord::Commit {
            from: ClientId::new(0),
            msg: commit.unwrap(),
        };
        assert_eq!(rec.from(), ClientId::new(0));
        assert_eq!(LogRecord::decode(&rec.encode()), Ok(rec));
    }

    #[test]
    fn routed_record_roundtrips_and_delegates() {
        let mut c0 = client(2, 0);
        let submit = c0.begin_write(Value::from("routed")).unwrap();
        let rec = LogRecord::Routed {
            seq: 41,
            inner: Box::new(LogRecord::Submit {
                from: ClientId::new(0),
                msg: submit.clone(),
            }),
        };
        assert_eq!(rec.from(), ClientId::new(0));
        assert_eq!(rec.global_seq(), Some(41));
        assert_eq!(LogRecord::decode(&rec.encode()), Ok(rec.clone()));
        // Applying the routed record is applying the inner message.
        let mut via_routed = UstorServer::new(2);
        rec.replay(&mut via_routed);
        let mut direct = UstorServer::new(2);
        direct.on_submit(ClientId::new(0), submit);
        assert_eq!(via_routed, direct);
        // Nested routing is rejected at decode time.
        let nested = LogRecord::Routed {
            seq: 7,
            inner: Box::new(LogRecord::Routed {
                seq: 8,
                inner: Box::new(LogRecord::Commit {
                    from: ClientId::new(1),
                    msg: CommitMsg {
                        version: faust_types::Version::initial(2),
                        commit_sig: Signature::garbage(),
                        proof_sig: Signature::garbage(),
                    },
                }),
            }),
        };
        assert_eq!(
            LogRecord::decode(&nested.encode()),
            Err(WireError::BadTag(2))
        );
    }

    #[test]
    fn log_record_rejects_bad_tag_and_truncation() {
        assert_eq!(LogRecord::decode(&[9]), Err(WireError::BadTag(9)));
        let mut c0 = client(1, 0);
        let rec = LogRecord::Submit {
            from: ClientId::new(0),
            msg: c0.begin_write(Value::from("v")).unwrap(),
        };
        let bytes = rec.encode();
        assert!(LogRecord::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn replay_matches_direct_application() {
        let mut c0 = client(2, 0);
        let submit = c0.begin_write(Value::from("x")).unwrap();
        let mut direct = UstorServer::new(2);
        direct.on_submit(ClientId::new(0), submit.clone());

        let mut replayed = UstorServer::new(2);
        LogRecord::Submit {
            from: ClientId::new(0),
            msg: submit,
        }
        .replay(&mut replayed);
        assert_eq!(direct, replayed);
    }

    #[test]
    fn state_roundtrips_mid_protocol() {
        let n = 2;
        let mut c0 = client(n, 0);
        let mut server = UstorServer::new(n);
        let submit = c0.begin_write(Value::from("v1")).unwrap();
        let (_, reply) = server.on_submit(ClientId::new(0), submit).pop().unwrap();
        let (commit, _) = c0.handle_reply(reply).unwrap();
        server.on_commit(ClientId::new(0), commit.unwrap());
        // Leave one op pending so `L` is non-empty.
        let submit = c0.begin_read(ClientId::new(0)).unwrap();
        server.on_submit(ClientId::new(0), submit);

        let state = server.export_state();
        let mut bytes = Vec::new();
        encode_state(&state, &mut bytes);
        let mut input = bytes.as_slice();
        let decoded = decode_state(&mut input).expect("roundtrip");
        assert!(input.is_empty(), "full consumption");
        assert_eq!(decoded, state);
        assert_eq!(UstorServer::from_state(decoded), server);
    }

    #[test]
    fn state_decode_rejects_arity_mismatch() {
        let state = UstorServer::new(2).export_state();
        let mut bytes = Vec::new();
        encode_state(&state, &mut bytes);
        // Claim 3 clients while the vectors hold 2.
        bytes[3] = 3;
        let mut input = bytes.as_slice();
        assert!(decode_state(&mut input).is_err());
    }
}
