//! Shared helpers for tests and benchmarks: scratch directories (the
//! repository vendors no `tempfile` crate) and the synchronous
//! op-driving shorthand every store test needs.

use faust_crypto::sig::KeySet;
use faust_types::{ClientId, SubmitMsg};
use faust_ustor::{Server, UstorClient};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Creates a fresh, empty directory under the system temp dir, unique to
/// this process and call. Callers remove it when done (`remove_dir_all`);
/// a leaked directory under `$TMPDIR` is harmless.
///
/// # Panics
///
/// Panics if the directory cannot be created — tests cannot run without
/// a writable temp dir, so failing loudly beats limping on.
pub fn scratch_dir(label: &str) -> PathBuf {
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("faust-store-{label}-{}-{id}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Builds `n` USTOR clients with HMAC keys derived from `seed` — the
/// setup boilerplate of every test/bench that drives a server directly.
pub fn clients(n: usize, seed: &[u8]) -> Vec<UstorClient> {
    let keys = KeySet::generate(n, seed);
    (0..n)
        .map(|i| {
            UstorClient::new(
                ClientId::new(i as u32),
                n,
                keys.keypair(i as u32).expect("generated").clone(),
                keys.registry(),
            )
        })
        .collect()
}

/// Runs one full synchronous operation (submit → reply → commit)
/// through any server.
///
/// # Panics
///
/// Panics if the server misbehaves — these helpers drive *correct*
/// servers; adversarial paths assert on errors explicitly.
pub fn run_op(server: &mut dyn Server, client: &mut UstorClient, submit: SubmitMsg) {
    let id = client.id();
    let (_, reply) = server.on_submit(id, submit).pop().expect("one reply");
    let (commit, _) = client.handle_reply(reply).expect("correct server");
    server.on_commit(id, commit.expect("immediate mode"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_distinct_and_empty() {
        let a = scratch_dir("x");
        let b = scratch_dir("x");
        assert_ne!(a, b);
        assert_eq!(std::fs::read_dir(&a).unwrap().count(), 0);
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }
}
