//! Failure-notification gossip: once any client has proof of server
//! misbehaviour, *every* correct client eventually halts — even clients
//! the detector never talks to again, and even when the detector crashes
//! immediately after broadcasting (the offline channel is reliable).

use faust_core::{FaustConfig, FaustDriver, FaustDriverConfig, FaustWorkloadOp};
use faust_sim::{DelayModel, SimConfig};
use faust_types::{ClientId, Value};
use faust_ustor::adversary::{Tamper, TamperServer};
use faust_ustor::UstorServer;

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

/// A tampered reply to one victim propagates `fail` to all five clients.
#[test]
fn one_detection_halts_everyone() {
    let n = 5;
    let server = TamperServer::new(n, c(2), 3, Tamper::CorruptCommitSig);
    let mut driver = FaustDriver::new(n, Box::new(server), FaustDriverConfig::default(), b"gossip");
    for i in 0..n as u32 {
        driver.push_ops(
            c(i),
            vec![
                FaustWorkloadOp::Write(Value::unique(i, 1)),
                FaustWorkloadOp::Pause(40),
                FaustWorkloadOp::Write(Value::unique(i, 2)),
            ],
        );
    }
    let result = driver.run_until(30_000);
    assert_eq!(
        result.failures.len(),
        n,
        "every client must learn of the failure: {:?}",
        result.failures
    );
    // The victim detects first; the others follow via FAILURE messages.
    let victim_time = result.failure_time(c(2)).expect("victim detected");
    for i in 0..n as u32 {
        let t = result.failure_time(c(i)).expect("all detected");
        assert!(t >= victim_time, "C{i} cannot detect before the victim");
    }
}

/// The detector crashes right after broadcasting FAILURE; the broadcast
/// still reaches everyone (reliable offline channel).
#[test]
fn detector_crash_does_not_lose_the_alarm() {
    let n = 3;
    let server = TamperServer::new(n, c(0), 1, Tamper::CorruptCommitSig);
    let mut driver = FaustDriver::new(
        n,
        Box::new(server),
        FaustDriverConfig {
            sim: SimConfig {
                seed: 4,
                link_delay: DelayModel::Fixed(2),
                offline_delay: DelayModel::Fixed(40),
            },
            ..FaustDriverConfig::default()
        },
        b"gossip-crash",
    );
    // C0 triggers the tamper with its second op, then crashes. The crash
    // lands after detection (the FAILURE messages are already in flight)
    // but long before delivery (offline delay 40).
    driver.push_ops(
        c(0),
        vec![
            FaustWorkloadOp::Write(Value::unique(0, 1)),
            FaustWorkloadOp::Write(Value::unique(0, 2)),
            FaustWorkloadOp::Crash,
        ],
    );
    driver.push_op(c(1), FaustWorkloadOp::Write(Value::unique(1, 1)));
    driver.push_op(c(2), FaustWorkloadOp::Write(Value::unique(2, 1)));
    let result = driver.run_until(30_000);
    // C0 detected (and is now crashed); C1 and C2 must still have been
    // alerted by the in-flight broadcast.
    assert!(
        result.failure_time(c(1)).is_some() && result.failure_time(c(2)).is_some(),
        "in-flight FAILURE messages must survive the detector's crash: {:?}",
        result.failures
    );
}

/// Failure notifications never fire spuriously even with aggressive
/// probing and tiny tick periods (accuracy under stress).
#[test]
fn aggressive_probing_stays_accurate() {
    let n = 4;
    let mut driver = FaustDriver::new(
        n,
        Box::new(UstorServer::new(n)),
        FaustDriverConfig {
            sim: SimConfig {
                seed: 9,
                link_delay: DelayModel::Uniform(1, 30),
                offline_delay: DelayModel::Uniform(1, 10),
            },
            faust: FaustConfig {
                probe_period: 10, // probe constantly
                dummy_reads: true,
                commit_mode: faust_ustor::CommitMode::Immediate,
                pipeline: 1,
            },
            tick_period: 5,
        },
        b"aggressive",
    );
    for (i, w) in faust_core::random_faust_workloads(n, 6, 0.5, 13)
        .into_iter()
        .enumerate()
    {
        driver.push_ops(c(i as u32), w);
    }
    let result = driver.run_until(5_000);
    assert!(result.failures.is_empty(), "{:?}", result.failures);
}
