//! Deterministic discrete-event simulator for the FAUST system model.
//!
//! The paper assumes an asynchronous distributed system with
//!
//! * reliable FIFO channels between each client and the server, and
//! * a reliable *offline* communication method between clients that
//!   eventually delivers messages even if the clients are never
//!   simultaneously connected (Figure 1).
//!
//! [`Simulation`] implements exactly that model under virtual time: the
//! harness pulls [`ScheduledEvent`]s one at a time and feeds them to the
//! protocol state machines, which in turn call [`Simulation::send`] /
//! [`Simulation::send_offline`] / [`Simulation::set_timer`]. Executions are
//! fully deterministic for a given seed, which makes protocol tests and
//! latency experiments reproducible bit-for-bit.
//!
//! Fault injection covers the paper's fault model: nodes can [crash]
//! (`crash-stop`), and clients can temporarily [disconnect] (the paper's
//! "clients are not simultaneously present"), during which incoming
//! traffic is buffered and flushed in order upon reconnection.
//!
//! [crash]: Simulation::crash
//! [disconnect]: Simulation::set_connected
//!
//! # Example
//!
//! ```
//! use faust_sim::{DelayModel, Event, SimConfig, Simulation, NodeId};
//!
//! let mut sim: Simulation<&'static str> = Simulation::new(SimConfig::default());
//! let (a, b) = (NodeId(0), NodeId(1));
//! sim.send(a, b, "hello");
//! let ev = sim.next().expect("one event pending");
//! match ev.event {
//!     Event::Message { from, to, msg, .. } => {
//!         assert_eq!((from, to, msg), (a, b, "hello"));
//!     }
//!     _ => unreachable!(),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod metrics;
pub mod rng;

pub use fault::{shrink, TimeWindow};
pub use metrics::Metrics;
pub use rng::SmallRng;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Identifies a node (client or server) in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Identifies a pending timer, for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// Which transport carried a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// The reliable FIFO client↔server channel.
    Link,
    /// The reliable eventual-delivery client↔client offline channel.
    Offline,
}

/// Distribution of message delays, in virtual time ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayModel {
    /// Every message takes exactly this long.
    Fixed(u64),
    /// Delays drawn uniformly from `[lo, hi]`.
    Uniform(u64, u64),
}

impl DelayModel {
    fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform(lo, hi) => rng.gen_range_inclusive(lo, hi),
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// RNG seed; equal seeds yield identical executions.
    pub seed: u64,
    /// Delay of client↔server link messages.
    pub link_delay: DelayModel,
    /// Delay of offline client↔client messages (typically much larger).
    pub offline_delay: DelayModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            link_delay: DelayModel::Fixed(1),
            offline_delay: DelayModel::Fixed(50),
        }
    }
}

/// Something the simulation can hand back to the harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A message delivery.
    Message {
        /// Sender node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// The payload.
        msg: M,
        /// Which transport carried it.
        transport: Transport,
    },
    /// A timer set by `node` fired.
    Timer {
        /// The node whose timer fired.
        node: NodeId,
        /// The caller-chosen tag identifying the timer's purpose.
        tag: u64,
        /// The timer's id (as returned by [`Simulation::set_timer`]).
        id: TimerId,
    },
}

/// An [`Event`] stamped with its virtual delivery time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<M> {
    /// Virtual time at which the event occurs.
    pub time: u64,
    /// The event itself.
    pub event: Event<M>,
}

/// Reports the wire size of a message, for the traffic metrics.
///
/// Implemented by the protocol's message enums; the blanket size of `0`
/// can be avoided by implementing this precisely (the `O(n)` experiment
/// does).
pub trait MessageSize {
    /// Encoded size in bytes.
    fn size_bytes(&self) -> usize;
}

impl MessageSize for &'static str {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

enum Payload<M> {
    Message {
        from: NodeId,
        to: NodeId,
        msg: M,
        transport: Transport,
    },
    Timer {
        node: NodeId,
        tag: u64,
        id: TimerId,
    },
}

struct QueueEntry<M> {
    time: u64,
    seq: u64,
    payload: Payload<M>,
}

impl<M> PartialEq for QueueEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QueueEntry<M> {}
impl<M> PartialOrd for QueueEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueueEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The deterministic event-driven network.
///
/// Generic over the message type `M`; the protocol harness defines its own
/// message enum and drives the loop:
///
/// ```text
/// while let Some(ev) = sim.next() {
///     match ev.event { ... dispatch to state machines ... }
/// }
/// ```
pub struct Simulation<M> {
    now: u64,
    seq: u64,
    next_timer: u64,
    queue: BinaryHeap<Reverse<QueueEntry<M>>>,
    /// Enforces FIFO per ordered (from, to) link: the next delivery on a
    /// link never precedes an earlier one.
    link_clock: HashMap<(NodeId, NodeId), u64>,
    crashed: std::collections::HashSet<NodeId>,
    disconnected: std::collections::HashSet<NodeId>,
    /// Traffic buffered for disconnected nodes, in arrival order.
    parked: HashMap<NodeId, VecDeque<(NodeId, M, Transport)>>,
    cancelled: std::collections::HashSet<u64>,
    rng: SmallRng,
    config: SimConfig,
    metrics: Metrics,
}

impl<M: MessageSize> Simulation<M> {
    /// Creates a simulation with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulation {
            now: 0,
            seq: 0,
            next_timer: 0,
            queue: BinaryHeap::new(),
            link_clock: HashMap::new(),
            crashed: Default::default(),
            disconnected: Default::default(),
            parked: HashMap::new(),
            cancelled: Default::default(),
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            metrics: Metrics::default(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Traffic statistics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Sends `msg` on the reliable FIFO link from `from` to `to`.
    ///
    /// Delivery is never reordered relative to other messages on the same
    /// `(from, to)` link, regardless of sampled delays.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        let delay = self.config.link_delay.sample(&mut self.rng);
        self.enqueue_message(from, to, msg, Transport::Link, delay);
    }

    /// Sends `msg` on the offline channel (reliable, eventual, typically
    /// slow). Order on this channel is also FIFO per pair, which is
    /// stronger than the paper requires but harmless.
    pub fn send_offline(&mut self, from: NodeId, to: NodeId, msg: M) {
        let delay = self.config.offline_delay.sample(&mut self.rng);
        self.enqueue_message(from, to, msg, Transport::Offline, delay);
    }

    /// Sends `msg` on the FIFO link from `from` to `to` with an explicit
    /// `delay` instead of one sampled from the delay model. The FIFO
    /// clamp still applies, so delayed messages cannot overtake or be
    /// overtaken by other traffic on the same link. Fault harnesses use
    /// this to model added latency without disturbing the RNG stream.
    pub fn forward(&mut self, from: NodeId, to: NodeId, msg: M, delay: u64) {
        self.enqueue_message(from, to, msg, Transport::Link, delay);
    }

    /// Schedules `msg` for delivery at absolute virtual time `at`,
    /// **bypassing** the per-link FIFO clamp (the link clock is neither
    /// consulted nor advanced). This deliberately violates the reliable-
    /// FIFO channel assumption and exists only for fault injection:
    /// reordered or duplicated frames that an adversarial network — or an
    /// adversarial server replaying old replies — could produce.
    ///
    /// Crash and disconnect handling still apply on delivery.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M, at: u64) {
        if self.crashed.contains(&from) {
            return;
        }
        self.metrics.record_send(Transport::Link, msg.size_bytes());
        let seq = self.bump_seq();
        self.queue.push(Reverse(QueueEntry {
            time: at.max(self.now),
            seq,
            payload: Payload::Message {
                from,
                to,
                msg,
                transport: Transport::Link,
            },
        }));
    }

    fn enqueue_message(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: M,
        transport: Transport,
        delay: u64,
    ) {
        if self.crashed.contains(&from) {
            return; // a crashed node takes no further steps
        }
        self.metrics.record_send(transport, msg.size_bytes());
        let clock = self.link_clock.entry((from, to)).or_insert(0);
        let at = (self.now + delay).max(*clock + 1);
        *clock = at;
        let seq = self.bump_seq();
        self.queue.push(Reverse(QueueEntry {
            time: at,
            seq,
            payload: Payload::Message {
                from,
                to,
                msg,
                transport,
            },
        }));
    }

    /// Schedules a timer at `node`, firing after `delay` ticks, carrying a
    /// caller-chosen `tag`.
    pub fn set_timer(&mut self, node: NodeId, delay: u64, tag: u64) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        let seq = self.bump_seq();
        self.queue.push(Reverse(QueueEntry {
            time: self.now + delay,
            seq,
            payload: Payload::Timer { node, tag, id },
        }));
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled.insert(id.0);
    }

    /// Permanently crashes a node: it receives no further events and its
    /// future sends are discarded. Messages already in flight *from* it
    /// may still be delivered (asynchronous network).
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Whether `node` has crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Connects or disconnects a node. While disconnected, traffic to the
    /// node is parked; on reconnection it is delivered promptly, in
    /// arrival order. Models clients that are "not simultaneously
    /// present".
    pub fn set_connected(&mut self, node: NodeId, connected: bool) {
        if connected {
            if self.disconnected.remove(&node) {
                if let Some(parked) = self.parked.remove(&node) {
                    for (from, msg, transport) in parked {
                        // Re-deliver promptly; seq keeps arrival order.
                        let seq = self.bump_seq();
                        self.queue.push(Reverse(QueueEntry {
                            time: self.now + 1,
                            seq,
                            payload: Payload::Message {
                                from,
                                to: node,
                                msg,
                                transport,
                            },
                        }));
                    }
                }
            }
        } else {
            self.disconnected.insert(node);
        }
    }

    /// Whether `node` is currently connected.
    pub fn is_connected(&self, node: NodeId) -> bool {
        !self.disconnected.contains(&node)
    }

    /// Advances virtual time to the next event and returns it, or `None`
    /// when no more events can occur.
    pub fn next(&mut self) -> Option<ScheduledEvent<M>> {
        while let Some(Reverse(entry)) = self.queue.pop() {
            debug_assert!(entry.time >= self.now, "time went backwards");
            match entry.payload {
                Payload::Timer { node, tag, id } => {
                    if self.cancelled.remove(&id.0) || self.crashed.contains(&node) {
                        continue;
                    }
                    self.now = self.now.max(entry.time);
                    return Some(ScheduledEvent {
                        time: self.now,
                        event: Event::Timer { node, tag, id },
                    });
                }
                Payload::Message {
                    from,
                    to,
                    msg,
                    transport,
                } => {
                    if self.crashed.contains(&to) {
                        continue;
                    }
                    if self.disconnected.contains(&to) {
                        self.parked
                            .entry(to)
                            .or_default()
                            .push_back((from, msg, transport));
                        // Do not advance time for parked deliveries.
                        continue;
                    }
                    self.now = self.now.max(entry.time);
                    self.metrics.record_delivery(transport);
                    return Some(ScheduledEvent {
                        time: self.now,
                        event: Event::Message {
                            from,
                            to,
                            msg,
                            transport,
                        },
                    });
                }
            }
        }
        None
    }

    /// Runs the simulation to quiescence, discarding events. Useful in
    /// tests that only care about final state or metrics.
    pub fn drain(&mut self) {
        while self.next().is_some() {}
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct TestMsg(u64);

    impl MessageSize for TestMsg {
        fn size_bytes(&self) -> usize {
            8
        }
    }

    fn sim(seed: u64, link: DelayModel) -> Simulation<TestMsg> {
        Simulation::new(SimConfig {
            seed,
            link_delay: link,
            offline_delay: DelayModel::Uniform(10, 100),
        })
    }

    fn drain_events(sim: &mut Simulation<TestMsg>) -> Vec<(u64, NodeId, NodeId, u64)> {
        let mut out = Vec::new();
        while let Some(ev) = sim.next() {
            if let Event::Message { from, to, msg, .. } = ev.event {
                out.push((ev.time, from, to, msg.0));
            }
        }
        out
    }

    #[test]
    fn fifo_per_link_despite_random_delays() {
        let mut s = sim(7, DelayModel::Uniform(1, 50));
        for i in 0..100 {
            s.send(NodeId(0), NodeId(1), TestMsg(i));
        }
        let seen: Vec<u64> = drain_events(&mut s).iter().map(|e| e.3).collect();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn independent_links_may_interleave_but_stay_fifo() {
        let mut s = sim(3, DelayModel::Uniform(1, 20));
        for i in 0..50 {
            s.send(NodeId(0), NodeId(2), TestMsg(i));
            s.send(NodeId(1), NodeId(2), TestMsg(1000 + i));
        }
        let events = drain_events(&mut s);
        let from0: Vec<u64> = events
            .iter()
            .filter(|e| e.1 == NodeId(0))
            .map(|e| e.3)
            .collect();
        let from1: Vec<u64> = events
            .iter()
            .filter(|e| e.1 == NodeId(1))
            .map(|e| e.3)
            .collect();
        assert_eq!(from0, (0..50).collect::<Vec<_>>());
        assert_eq!(from1, (1000..1050).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut s = sim(seed, DelayModel::Uniform(1, 30));
            for i in 0..20 {
                s.send(NodeId(i % 3), NodeId((i + 1) % 3), TestMsg(i as u64));
            }
            drain_events(&mut s)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43)); // different seeds shuffle delays
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut s = sim(0, DelayModel::Fixed(1));
        let _t1 = s.set_timer(NodeId(0), 10, 1);
        let t2 = s.set_timer(NodeId(0), 5, 2);
        let _t3 = s.set_timer(NodeId(0), 20, 3);
        s.cancel_timer(t2);
        let mut tags = Vec::new();
        while let Some(ev) = s.next() {
            if let Event::Timer { tag, .. } = ev.event {
                tags.push((ev.time, tag));
            }
        }
        assert_eq!(tags, vec![(10, 1), (20, 3)]);
    }

    #[test]
    fn crashed_node_receives_nothing_and_sends_nothing() {
        let mut s = sim(0, DelayModel::Fixed(1));
        s.send(NodeId(0), NodeId(1), TestMsg(1));
        s.crash(NodeId(1));
        s.send(NodeId(0), NodeId(1), TestMsg(2));
        s.send(NodeId(1), NodeId(0), TestMsg(3));
        assert!(drain_events(&mut s).is_empty());
        assert!(s.is_crashed(NodeId(1)));
    }

    #[test]
    fn timer_at_crashed_node_is_suppressed() {
        let mut s = sim(0, DelayModel::Fixed(1));
        s.set_timer(NodeId(0), 5, 9);
        s.crash(NodeId(0));
        assert!(s.next().is_none());
    }

    #[test]
    fn disconnect_parks_and_reconnect_flushes_in_order() {
        let mut s = sim(0, DelayModel::Fixed(1));
        s.set_connected(NodeId(1), false);
        for i in 0..5 {
            s.send(NodeId(0), NodeId(1), TestMsg(i));
        }
        // Nothing deliverable while disconnected.
        assert!(s.next().is_none());
        s.set_connected(NodeId(1), true);
        let seen: Vec<u64> = drain_events(&mut s).iter().map(|e| e.3).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn offline_messages_eventually_delivered() {
        let mut s = sim(5, DelayModel::Fixed(1));
        s.send_offline(NodeId(0), NodeId(2), TestMsg(77));
        let events = drain_events(&mut s);
        assert_eq!(events.len(), 1);
        assert!(events[0].0 >= 10, "offline delay should apply");
    }

    #[test]
    fn time_is_monotone() {
        let mut s = sim(11, DelayModel::Uniform(1, 40));
        for i in 0..30 {
            s.send(NodeId(0), NodeId(1), TestMsg(i));
            s.set_timer(NodeId(0), i * 2, i);
        }
        let mut last = 0;
        while let Some(ev) = s.next() {
            assert!(ev.time >= last);
            last = ev.time;
        }
    }

    #[test]
    fn metrics_count_sends_and_bytes() {
        let mut s = sim(0, DelayModel::Fixed(1));
        s.send(NodeId(0), NodeId(1), TestMsg(1));
        s.send_offline(NodeId(0), NodeId(1), TestMsg(2));
        let m = s.metrics();
        assert_eq!(m.link_messages_sent, 1);
        assert_eq!(m.offline_messages_sent, 1);
        assert_eq!(m.link_bytes_sent, 8);
        assert_eq!(m.offline_bytes_sent, 8);
        s.drain();
        assert_eq!(s.metrics().link_messages_delivered, 1);
        assert_eq!(s.metrics().offline_messages_delivered, 1);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct M(u64);
    impl MessageSize for M {
        fn size_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn timers_fire_while_disconnected() {
        // Disconnection parks messages only; local timers keep running
        // (a sleeping laptop still has a clock).
        let mut s: Simulation<M> = Simulation::new(SimConfig::default());
        s.set_connected(NodeId(0), false);
        s.set_timer(NodeId(0), 5, 1);
        let ev = s.next().expect("timer fires");
        assert!(matches!(ev.event, Event::Timer { tag: 1, .. }));
    }

    #[test]
    fn offline_message_to_crashed_node_dropped() {
        let mut s: Simulation<M> = Simulation::new(SimConfig::default());
        s.crash(NodeId(1));
        s.send_offline(NodeId(0), NodeId(1), M(1));
        assert!(s.next().is_none());
    }

    #[test]
    fn messages_parked_then_node_crashes_never_delivered() {
        let mut s: Simulation<M> = Simulation::new(SimConfig::default());
        s.set_connected(NodeId(1), false);
        s.send(NodeId(0), NodeId(1), M(1));
        assert!(s.next().is_none()); // parked
        s.crash(NodeId(1));
        s.set_connected(NodeId(1), true); // reconnect after crash
                                          // Delivery is re-scheduled but suppressed by the crash.
        assert!(s.next().is_none());
    }

    #[test]
    fn disconnect_reconnect_preserves_fifo_with_new_traffic() {
        let mut s: Simulation<M> = Simulation::new(SimConfig {
            seed: 5,
            link_delay: DelayModel::Fixed(1),
            offline_delay: DelayModel::Fixed(10),
        });
        s.set_connected(NodeId(1), false);
        s.send(NodeId(0), NodeId(1), M(1));
        s.send(NodeId(0), NodeId(1), M(2));
        assert!(s.next().is_none());
        s.set_connected(NodeId(1), true);
        // New message sent after reconnection.
        s.send(NodeId(0), NodeId(1), M(3));
        let mut seen = Vec::new();
        while let Some(ev) = s.next() {
            if let Event::Message { msg, .. } = ev.event {
                seen.push(msg.0);
            }
        }
        assert_eq!(seen, vec![1, 2, 3], "parked traffic flushes before new");
    }

    #[test]
    fn forward_respects_fifo_clamp() {
        let mut s: Simulation<M> = Simulation::new(SimConfig {
            seed: 0,
            link_delay: DelayModel::Fixed(10),
            offline_delay: DelayModel::Fixed(10),
        });
        s.send(NodeId(0), NodeId(1), M(1)); // arrives at t=10
        s.forward(NodeId(0), NodeId(1), M(2), 0); // clamped behind it
        let mut seen = Vec::new();
        while let Some(ev) = s.next() {
            if let Event::Message { msg, .. } = ev.event {
                seen.push((ev.time, msg.0));
            }
        }
        assert_eq!(seen, vec![(10, 1), (11, 2)]);
    }

    #[test]
    fn inject_bypasses_fifo_and_delivers_at_requested_time() {
        let mut s: Simulation<M> = Simulation::new(SimConfig {
            seed: 0,
            link_delay: DelayModel::Fixed(10),
            offline_delay: DelayModel::Fixed(10),
        });
        s.send(NodeId(0), NodeId(1), M(1)); // arrives at t=10
        s.inject(NodeId(0), NodeId(1), M(99), 2); // overtakes
        let mut seen = Vec::new();
        while let Some(ev) = s.next() {
            if let Event::Message { msg, .. } = ev.event {
                seen.push((ev.time, msg.0));
            }
        }
        assert_eq!(seen, vec![(2, 99), (10, 1)]);
    }

    #[test]
    fn inject_to_crashed_node_is_dropped() {
        let mut s: Simulation<M> = Simulation::new(SimConfig::default());
        s.crash(NodeId(1));
        s.inject(NodeId(0), NodeId(1), M(1), 5);
        assert!(s.next().is_none());
    }

    #[test]
    fn zero_delay_messages_still_ordered() {
        let mut s: Simulation<M> = Simulation::new(SimConfig {
            seed: 0,
            link_delay: DelayModel::Fixed(0),
            offline_delay: DelayModel::Fixed(0),
        });
        for i in 0..10 {
            s.send(NodeId(0), NodeId(1), M(i));
        }
        let mut seen = Vec::new();
        while let Some(ev) = s.next() {
            if let Event::Message { msg, .. } = ev.event {
                seen.push(msg.0);
            }
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}
