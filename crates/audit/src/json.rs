//! JSON rendering of audit reports, for `faust audit --json` and the CI
//! certification artifact. Hand-rolled like the bench tooling — the
//! output is a small, flat document and the repo takes no dependencies.

use faust_types::{SignedVersion, Version};

use crate::replay::{AuditReport, AuditVerdict, Divergence};

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn version_json(version: &Version) -> String {
    let v: Vec<String> = version
        .v()
        .as_slice()
        .iter()
        .map(|t| t.to_string())
        .collect();
    format!("[{}]", v.join(","))
}

fn signed_version_json(sv: &SignedVersion) -> String {
    let sig = match &sv.sig {
        Some(sig) => {
            let hex: String = sig.as_bytes().iter().map(|b| format!("{b:02x}")).collect();
            format!("\"{hex}\"")
        }
        None => "null".to_string(),
    };
    format!(
        "{{\"version\":{},\"commit_sig\":{}}}",
        version_json(&sv.version),
        sig
    )
}

fn divergence_json(divergence: &Divergence) -> String {
    match divergence {
        Divergence::ForkedCommits { evidence } => format!(
            "{{\"kind\":\"forked_commits\",\"conflicting_pair\":[{},{}],\"signed_evidence\":[{},{}]}}",
            version_json(&evidence.0.version),
            version_json(&evidence.1.version),
            signed_version_json(&evidence.0),
            signed_version_json(&evidence.1),
        ),
        Divergence::CommitRollback { client, from, to } => format!(
            "{{\"kind\":\"commit_rollback\",\"client\":{},\"from\":{},\"to\":{}}}",
            client.index(),
            version_json(from),
            version_json(to),
        ),
        Divergence::BadSignature { client, what } => format!(
            "{{\"kind\":\"bad_signature\",\"client\":{},\"signature\":\"{what}\"}}",
            client.index(),
        ),
        Divergence::ScheduleGap {
            client,
            expected,
            found,
        } => format!(
            "{{\"kind\":\"schedule_gap\",\"client\":{},\"expected\":{expected},\"found\":{found}}}",
            client.index(),
        ),
        Divergence::UnjustifiedCommit {
            committer,
            victim,
            claimed,
            submitted,
        } => format!(
            "{{\"kind\":\"unjustified_commit\",\"committer\":{},\"victim\":{},\"claimed\":{claimed},\"submitted\":{submitted}}}",
            committer.index(),
            victim.index(),
        ),
        Divergence::ChainMismatch { client } => format!(
            "{{\"kind\":\"chain_mismatch\",\"client\":{}}}",
            client.index()
        ),
        Divergence::OmittedOperation { client, timestamp } => format!(
            "{{\"kind\":\"omitted_operation\",\"client\":{},\"timestamp\":{timestamp}}}",
            client.index(),
        ),
        Divergence::MisreportedOperation {
            client,
            timestamp,
            detail,
        } => format!(
            "{{\"kind\":\"misreported_operation\",\"client\":{},\"timestamp\":{timestamp},\"detail\":\"{}\"}}",
            client.index(),
            escape(detail),
        ),
        Divergence::MalformedRecord { detail } => format!(
            "{{\"kind\":\"malformed_record\",\"detail\":\"{}\"}}",
            escape(detail)
        ),
        Divergence::HistoryNotLinearizable { witness, reason } => format!(
            "{{\"kind\":\"history_not_linearizable\",\"witness\":[{},{}],\"reason\":\"{}\"}}",
            witness.0 .0,
            witness.1 .0,
            escape(reason),
        ),
    }
}

/// Renders an audit report as a single JSON document.
pub fn report_to_json(report: &AuditReport) -> String {
    let verdict = match &report.verdict {
        AuditVerdict::Certified {
            fork_linearizable,
            ops,
            clients,
        } => format!(
            "{{\"status\":\"certified\",\"fork_linearizable\":{fork_linearizable},\"ops\":{ops},\"clients\":{clients}}}"
        ),
        AuditVerdict::Diverged {
            first_bad_version,
            divergence,
        } => format!(
            "{{\"status\":\"diverged\",\"first_bad_version\":{first_bad_version},\"divergence\":{}}}",
            divergence_json(divergence)
        ),
    };
    format!(
        "{{\"schema\":1,\"verdict\":{verdict},\"records_replayed\":{},\"signatures_checked\":{},\"commits_checked\":{}}}",
        report.records_replayed, report.signatures_checked, report.commits_checked,
    )
}
