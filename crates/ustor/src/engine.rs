//! The transport-agnostic server engine.
//!
//! [`ServerEngine`] wraps any [`Server`] implementation (the correct
//! [`UstorServer`](crate::UstorServer) or a Byzantine adversary) behind a
//! pure enqueue/process/poll interface over `(ClientId, UstorMsg)` pairs:
//!
//! 1. a transport pushes inbound messages with [`ServerEngine::enqueue`];
//! 2. [`ServerEngine::process_all`] runs the protocol handlers in strict
//!    FIFO arrival order — the order that *defines* the schedule of
//!    operations in Algorithm 2;
//! 3. the transport drains the replies with [`ServerEngine::poll_output`].
//!
//! Because the engine never performs I/O, the same code path serves the
//! deterministic simulator (via [`faust_net::QueueTransport`]), the
//! thread-per-client channel runtime, and real TCP clients — the [`serve`]
//! loop works over any [`ServerTransport`].
//!
//! # Sessions
//!
//! The engine keeps one [`Session`] per client: message counters, the last
//! submitted timestamp, and the hash of the client's last written value.
//! Sessions are what make ingress verification possible — the DATA
//! signature covers the hash of the *previous* write, which the session
//! tracks — and give operators per-client visibility.
//!
//! # Ingress verification
//!
//! The USTOR protocol needs no server-side checks: every signature is
//! re-verified by clients, and a server that forwards garbage is detected
//! and pinned. A deployed service still wants to reject unauthenticated
//! traffic at the door (resource protection, not correctness). The engine
//! optionally does so, per message or batched
//! ([`IngressVerification`]). Batched mode drains the whole inbox first
//! and verifies all SUBMIT signatures through
//! [`Verifier::verify_batch`] — for HMAC keys that amortizes each
//! signer's key schedule, for Ed25519 keys it runs one multi-scalar
//! batch equation over the whole inbox; both are measurably faster than
//! per-message verification (see `faust-bench/benches/protocol.rs` and
//! `faust-bench/benches/crypto.rs`).
//!
//! Note on the trust model (`docs/trust-model.md` has the full story):
//! the engine takes a `dyn` [`Verifier`], and which keys stand behind it
//! decides whether ingress verification is *sound* in the paper's
//! Byzantine-server setting. An Ed25519 registry
//! ([`KeySet::generate_ed25519`](faust_crypto::KeySet::generate_ed25519))
//! holds public keys only — handing it to the server grants no forging
//! power, so rejection at the door is sound. An HMAC registry holds the
//! shared signing secrets
//! ([`VerifierRegistry::try_forge`](faust_crypto::VerifierRegistry::try_forge)
//! demonstrates the forgery), so HMAC-backed ingress verification is a
//! benchmarking/closed-deployment device only.

use crate::server::Server;
use faust_crypto::sha256::sha256;
use faust_crypto::sig::{SigContext, Verifier, VerifyItem};
use faust_crypto::Digest;
use faust_net::{Incoming, ServerTransport};
use faust_types::op::{data_signing_bytes, submit_signing_bytes};
use faust_types::{ClientId, OpKind, ReplyMsg, SubmitMsg, Timestamp, UstorMsg};
use std::collections::VecDeque;
use std::sync::Arc;

/// Per-session cap on cached `(timestamp, reply)` pairs kept for
/// duplicate-SUBMIT replay. Must exceed any client's pipeline depth so a
/// whole resend window after a reconnect hits the cache exactly.
const REPLY_CACHE_CAP: usize = 32;

/// A shared, thread-safe signature verifier for ingress checks.
pub type SharedVerifier = Arc<dyn Verifier + Send + Sync>;

/// Whether (and how) the engine verifies SUBMIT signatures at ingress.
#[derive(Clone, Default)]
pub enum IngressVerification {
    /// Trust the transport; forward everything (the paper's model — all
    /// checking happens at clients). This is the default.
    #[default]
    Off,
    /// Verify each SUBMIT's signatures as it is processed.
    PerMessage(SharedVerifier),
    /// Drain the inbox and verify all queued SUBMITs as one batch,
    /// amortizing per-signer verifier setup.
    Batched(SharedVerifier),
}

impl std::fmt::Debug for IngressVerification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IngressVerification::Off => "Off",
            IngressVerification::PerMessage(_) => "PerMessage(..)",
            IngressVerification::Batched(_) => "Batched(..)",
        })
    }
}

/// Per-client connection/protocol state tracked by the engine.
#[derive(Debug, Clone, Default)]
pub struct Session {
    /// SUBMIT messages accepted from this client.
    pub submits: u64,
    /// COMMIT messages accepted from this client (piggybacked commits
    /// count here too).
    pub commits: u64,
    /// Messages dropped by ingress verification.
    pub rejected: u64,
    /// Timestamp of the last accepted SUBMIT (0 before the first).
    pub last_timestamp: Timestamp,
    /// Hash of the client's most recently written value (`x̄` as the
    /// server can reconstruct it); `None` before the first write.
    pub last_value_hash: Option<Digest>,
    /// Resent SUBMITs recognised as duplicates (answered from the reply
    /// cache, never re-run through the protocol server).
    pub duplicates: u64,
    /// Timestamps of accepted SUBMITs whose replies have not yet been
    /// released, oldest first. A correct server answers SUBMITs FIFO per
    /// client, which is what lets the engine tag each released reply
    /// with the timestamp it answered.
    awaiting_reply: VecDeque<Timestamp>,
    /// Released replies, oldest first, tagged with the SUBMIT timestamp
    /// each answered — the duplicate-replay cache (bounded by
    /// [`REPLY_CACHE_CAP`]). A cached reply was already released once,
    /// so re-issuing it bypasses group-commit holds safely: its record
    /// is durable.
    replies: VecDeque<(Timestamp, ReplyMsg)>,
}

/// Aggregate engine counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// SUBMITs forwarded to the protocol server.
    pub submits: u64,
    /// COMMITs forwarded to the protocol server.
    pub commits: u64,
    /// Resent SUBMITs answered from the reply cache instead of being
    /// re-run (exactly-once ingress).
    pub duplicates: u64,
    /// Messages dropped by ingress verification.
    pub rejected: u64,
    /// Client messages of a kind only the server sends (ignored).
    pub nonsense: u64,
    /// Number of `process_all` rounds that processed at least one message.
    pub batches: u64,
    /// Largest number of messages processed in one round.
    pub max_batch: usize,
    /// Outbound messages handed to the transport.
    pub frames_out: u64,
    /// Transport hand-offs (one per [`ServerEngine::poll_output`] frame,
    /// one per [`ServerEngine::poll_output_batch`] *batch*). With a
    /// coalescing transport this is the number of socket writes, so
    /// `flushes < frames_out` is the measurable proof that egress
    /// batching works.
    pub flushes: u64,
    /// Largest per-client egress batch drained in one hand-off.
    pub max_egress_batch: usize,
}

impl EngineStats {
    /// Accumulates `other` into `self`: counters add, high-water marks
    /// take the maximum. This is the one sanctioned way to aggregate
    /// stats across engines or shards — router aggregation and bench
    /// reporting must not hand-roll the field sums.
    pub fn merge(&mut self, other: &EngineStats) {
        self.submits += other.submits;
        self.commits += other.commits;
        self.duplicates += other.duplicates;
        self.rejected += other.rejected;
        self.nonsense += other.nonsense;
        self.batches += other.batches;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.frames_out += other.frames_out;
        self.flushes += other.flushes;
        self.max_egress_batch = self.max_egress_batch.max(other.max_egress_batch);
    }

    /// [`EngineStats::merge`] over any number of stats, starting from
    /// zero.
    pub fn merged<'a>(stats: impl IntoIterator<Item = &'a EngineStats>) -> EngineStats {
        let mut out = EngineStats::default();
        for s in stats {
            out.merge(s);
        }
        out
    }
}

/// The transport-agnostic server engine. See the module docs.
pub struct ServerEngine {
    n: usize,
    server: Box<dyn Server + Send>,
    sessions: Vec<Session>,
    inbox: VecDeque<(ClientId, UstorMsg)>,
    outbox: VecDeque<(ClientId, UstorMsg)>,
    /// Per-client egress batches grouped out of the outbox by the last
    /// [`ServerEngine::poll_output_batch`] pass, in first-seen client
    /// order; always older than anything still in `outbox`.
    staged: VecDeque<(ClientId, Vec<UstorMsg>)>,
    verification: IngressVerification,
    stats: EngineStats,
}

impl std::fmt::Debug for ServerEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerEngine")
            .field("n", &self.n)
            .field("verification", &self.verification)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ServerEngine {
    /// Creates an engine for `n` clients around `server`, with ingress
    /// verification off. Sessions are seeded from
    /// [`Server::resume_sessions`], so a recovered persistent server
    /// still recognises resent SUBMITs as duplicates and verifies reads
    /// against the right value hash.
    pub fn new(n: usize, mut server: Box<dyn Server + Send>) -> Self {
        let mut sessions = vec![Session::default(); n];
        for (session, resume) in sessions.iter_mut().zip(server.resume_sessions()) {
            session.last_timestamp = resume.last_timestamp;
            session.last_value_hash = resume.last_value_hash;
            session.replies = resume
                .replies
                .into_iter()
                .rev()
                .take(REPLY_CACHE_CAP)
                .rev()
                .collect();
        }
        ServerEngine {
            n,
            server,
            sessions,
            inbox: VecDeque::new(),
            outbox: VecDeque::new(),
            staged: VecDeque::new(),
            verification: IngressVerification::Off,
            stats: EngineStats::default(),
        }
    }

    /// Creates an engine whose server comes from `backend` — the hook
    /// through which every runtime (simulator, threaded, TCP) chooses
    /// between volatile and persistent server state.
    ///
    /// # Errors
    ///
    /// Propagates the backend's build/recovery error.
    pub fn from_backend(
        n: usize,
        backend: &(dyn crate::server::ServerBackend + Send),
    ) -> std::io::Result<Self> {
        Ok(ServerEngine::new(n, backend.build(n)?))
    }

    /// Sets the ingress-verification policy (builder style).
    pub fn with_verification(mut self, verification: IngressVerification) -> Self {
        self.verification = verification;
        self
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.n
    }

    /// The session state of `client`.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn session(&self, client: ClientId) -> &Session {
        &self.sessions[client.index()]
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Queues one inbound message. No processing happens until
    /// [`ServerEngine::process_all`].
    pub fn enqueue(&mut self, from: ClientId, msg: UstorMsg) {
        self.inbox.push_back((from, msg));
    }

    /// Removes the next outbound `(recipient, message)` pair.
    pub fn poll_output(&mut self) -> Option<(ClientId, UstorMsg)> {
        let out = match self.staged.front_mut() {
            // A grouping pass already staged batches: serve their frames
            // first (they are older than anything still in the outbox).
            Some((to, batch)) => {
                let msg = batch.remove(0);
                let to = *to;
                if batch.is_empty() {
                    self.staged.pop_front();
                }
                Some((to, msg))
            }
            None => self.outbox.pop_front(),
        };
        if out.is_some() {
            self.stats.frames_out += 1;
            self.stats.flushes += 1;
            self.stats.max_egress_batch = self.stats.max_egress_batch.max(1);
        }
        out
    }

    /// Removes the next per-client egress batch: every outbound message
    /// addressed to the recipient of the oldest queued message
    /// (per-client FIFO order is preserved; messages to *different*
    /// clients carry no ordering guarantee — they travel on separate
    /// connections anyway).
    ///
    /// The first call after a round groups the whole outbox per client
    /// in one pass; subsequent calls pop the staged batches, so a full
    /// drain is `O(frames)` regardless of how many clients it touches.
    ///
    /// Serve loops feed each batch to [`ServerTransport::send_batch`],
    /// which the TCP transport coalesces into one socket write — egress
    /// syscalls then scale with clients touched per round, not frames.
    pub fn poll_output_batch(&mut self) -> Option<(ClientId, Vec<UstorMsg>)> {
        if self.staged.is_empty() && !self.outbox.is_empty() {
            let mut index: std::collections::HashMap<ClientId, usize> =
                std::collections::HashMap::new();
            for (to, msg) in self.outbox.drain(..) {
                match index.get(&to) {
                    Some(&slot) => self.staged[slot].1.push(msg),
                    None => {
                        index.insert(to, self.staged.len());
                        self.staged.push_back((to, vec![msg]));
                    }
                }
            }
        }
        let (to, batch) = self.staged.pop_front()?;
        self.stats.frames_out += batch.len() as u64;
        self.stats.flushes += 1;
        self.stats.max_egress_batch = self.stats.max_egress_batch.max(batch.len());
        Some((to, batch))
    }

    /// Offers the server a durability flush point and queues whatever
    /// replies it releases. `force` overrides the server's batching
    /// policy (used when a transport closes, so held replies are never
    /// stranded).
    pub fn flush_server(&mut self, force: bool) {
        for (to, reply) in self.server.flush(force) {
            self.release_reply(to, reply);
        }
    }

    /// The one funnel every released reply passes through: tags it with
    /// the SUBMIT timestamp it answers (per-client FIFO), caches it for
    /// duplicate replay, and queues it for the transport. Replies with
    /// no awaiting SUBMIT (a Byzantine server broadcasting) are passed
    /// through uncached.
    fn release_reply(&mut self, to: ClientId, reply: ReplyMsg) {
        if let Some(session) = self.sessions.get_mut(to.index()) {
            if let Some(ts) = session.awaiting_reply.pop_front() {
                if session.replies.len() >= REPLY_CACHE_CAP {
                    session.replies.pop_front();
                }
                session.replies.push_back((ts, reply.clone()));
            }
        }
        self.outbox.push_back((to, UstorMsg::Reply(reply)));
    }

    /// When the server must next be flushed even without new traffic
    /// (`None` while nothing is held) — see [`Server::flush_deadline`].
    pub fn flush_deadline(&self) -> Option<std::time::Instant> {
        self.server.flush_deadline()
    }

    /// Virtual-time twin of [`ServerEngine::flush_deadline`], for servers
    /// driven by a simulation clock — see [`Server::flush_deadline_at`].
    pub fn flush_deadline_at(&self) -> Option<u64> {
        self.server.flush_deadline_at()
    }

    /// Processes every queued message in FIFO order, then offers the
    /// server a (non-forced) durability flush point — one processing
    /// round is the natural group-commit batch.
    ///
    /// In [`IngressVerification::Batched`] mode, all queued SUBMITs are
    /// signature-checked in one [`Verifier::verify_batch`] call first;
    /// processing order is unchanged.
    pub fn process_all(&mut self) {
        if !self.inbox.is_empty() {
            let batch_len = self.inbox.len();
            self.stats.batches += 1;
            self.stats.max_batch = self.stats.max_batch.max(batch_len);

            let verdicts: Option<Vec<bool>> = match &self.verification {
                IngressVerification::Batched(verifier) => {
                    Some(self.verify_queued_batch(Arc::clone(verifier)))
                }
                _ => None,
            };
            for idx in 0..batch_len {
                let (from, msg) = self.inbox.pop_front().expect("counted above");
                if let Some(verdicts) = &verdicts {
                    if !verdicts[idx] {
                        self.reject(from);
                        continue;
                    }
                }
                self.process_one(from, msg);
            }
        }
        self.flush_server(false);
    }

    /// Builds and checks the signature batch for every queued message.
    ///
    /// Two phases, so the verdicts match per-message processing exactly.
    /// Phase 1 verifies everything that does not depend on earlier queued
    /// messages: all SUBMIT signatures, plus the DATA signatures of
    /// writes (a write's `x̄` is the hash of its *own* value). Phase 2
    /// then walks the queue again, advancing a shadow copy of each
    /// session's last-value hash **only for writes that phase 1
    /// accepted**, and verifies the reads' DATA signatures against that
    /// shadow. A rejected write therefore cannot poison the expected `x̄`
    /// of an honest read queued behind it — per-message mode would have
    /// dropped the write and left the session hash untouched, and batched
    /// mode now agrees.
    fn verify_queued_batch(&mut self, verifier: SharedVerifier) -> Vec<bool> {
        // Phase 1: shadow-independent signatures.
        let mut items: Vec<VerifyItem> = Vec::new();
        // For message k: (well_formed, first item index, item count).
        let mut spans: Vec<(bool, usize, usize)> = Vec::with_capacity(self.inbox.len());
        for (from, msg) in &self.inbox {
            let UstorMsg::Submit(submit) = msg else {
                // Only SUBMITs carry ingress-checked signatures.
                spans.push((true, items.len(), 0));
                continue;
            };
            if from.index() >= self.n || submit.tuple.client != *from {
                spans.push((false, items.len(), 0));
                continue;
            }
            let start = items.len();
            items.push(VerifyItem {
                signer: from.as_u32(),
                context: SigContext::Submit,
                message: submit_signing_bytes(
                    submit.tuple.kind,
                    submit.tuple.register,
                    submit.timestamp,
                ),
                sig: submit.tuple.sig,
            });
            if submit.tuple.kind == OpKind::Write {
                let xbar = submit.value.as_ref().map(|v| sha256(v.as_bytes()));
                items.push(VerifyItem {
                    signer: from.as_u32(),
                    context: SigContext::Data,
                    message: data_signing_bytes(submit.timestamp, xbar),
                    sig: submit.data_sig,
                });
            }
            spans.push((true, start, items.len() - start));
        }
        let results = verifier.verify_batch(&items);
        let mut verdicts: Vec<bool> = spans
            .into_iter()
            .map(|(ok, start, count)| ok && results[start..start + count].iter().all(|&v| v))
            .collect();

        // Phase 2: reads, against the shadow hash advanced only by
        // accepted *fresh* writes. Resent duplicates (timestamp at or
        // below the session's shadow timestamp) are skipped entirely:
        // they will be answered from the reply cache without touching
        // server state, their DATA signatures cover a value hash the
        // session has since moved past, and letting them advance the
        // shadow would poison the checks of fresh traffic queued behind
        // them. Their SUBMIT signatures were still phase-1 checked.
        let mut shadow_hash: Vec<Option<Digest>> =
            self.sessions.iter().map(|s| s.last_value_hash).collect();
        let mut shadow_ts: Vec<Timestamp> =
            self.sessions.iter().map(|s| s.last_timestamp).collect();
        let mut read_items: Vec<VerifyItem> = Vec::new();
        let mut read_slots: Vec<usize> = Vec::new();
        for (idx, (from, msg)) in self.inbox.iter().enumerate() {
            let UstorMsg::Submit(submit) = msg else {
                continue;
            };
            if !verdicts[idx] {
                continue;
            }
            let i = from.index();
            if shadow_ts[i] > 0 && submit.timestamp <= shadow_ts[i] {
                continue; // duplicate: cache-answered, state untouched
            }
            shadow_ts[i] = submit.timestamp;
            match submit.tuple.kind {
                OpKind::Write => {
                    shadow_hash[i] = submit.value.as_ref().map(|v| sha256(v.as_bytes()));
                }
                OpKind::Read => {
                    read_items.push(VerifyItem {
                        signer: from.as_u32(),
                        context: SigContext::Data,
                        message: data_signing_bytes(submit.timestamp, shadow_hash[i]),
                        sig: submit.data_sig,
                    });
                    read_slots.push(idx);
                }
            }
        }
        for (slot, ok) in read_slots
            .into_iter()
            .zip(verifier.verify_batch(&read_items))
        {
            verdicts[slot] = verdicts[slot] && ok;
        }
        verdicts
    }

    /// Verifies one SUBMIT with individual [`Verifier::verify`] calls (the
    /// per-message path the batched mode is measured against).
    fn verify_one(&self, verifier: &SharedVerifier, from: ClientId, submit: &SubmitMsg) -> bool {
        if from.index() >= self.n || submit.tuple.client != from {
            return false;
        }
        let submit_ok = verifier.verify(
            from.as_u32(),
            SigContext::Submit,
            &submit_signing_bytes(submit.tuple.kind, submit.tuple.register, submit.timestamp),
            &submit.tuple.sig,
        );
        if !submit_ok {
            return false;
        }
        let session = &self.sessions[from.index()];
        let duplicate = session.last_timestamp > 0 && submit.timestamp <= session.last_timestamp;
        let xbar = match submit.tuple.kind {
            // A write's DATA signature covers its *own* value hash, so it
            // stays checkable even on a resend — which is what catches a
            // replayed SUBMIT whose value was swapped.
            OpKind::Write => submit.value.as_ref().map(|v| sha256(v.as_bytes())),
            // A resent read's DATA signature covers the value hash as of
            // its original submission, which the session has since moved
            // past; it is answered from the reply cache without touching
            // state, so the SUBMIT signature alone gates it.
            OpKind::Read if duplicate => return true,
            OpKind::Read => session.last_value_hash,
        };
        verifier.verify(
            from.as_u32(),
            SigContext::Data,
            &data_signing_bytes(submit.timestamp, xbar),
            &submit.data_sig,
        )
    }

    fn reject(&mut self, from: ClientId) {
        self.stats.rejected += 1;
        if let Some(session) = self.sessions.get_mut(from.index()) {
            session.rejected += 1;
        }
    }

    fn process_one(&mut self, from: ClientId, msg: UstorMsg) {
        match msg {
            UstorMsg::Submit(submit) => {
                if let IngressVerification::PerMessage(verifier) = &self.verification {
                    let verifier = Arc::clone(verifier);
                    if !self.verify_one(&verifier, from, &submit) {
                        self.reject(from);
                        return;
                    }
                }
                // Idempotent ingress: a SUBMIT whose timestamp the
                // session has already accepted is a resend (the client's
                // reply was lost with its connection). Re-running it
                // through the protocol server would double-apply the
                // piggybacked COMMIT and append a second tuple to `L`;
                // instead, re-issue the original reply byte-identically
                // from the cache. A cached reply was already released
                // once — under group commit that means its record is
                // durable — so immediate release is safe. With no exact
                // cache hit (a client resuming from state far older than
                // the cache) the *newest* cached reply is sent as
                // frontier evidence: its content cannot validate against
                // the stale op, which surfaces as `StaleClientState` at
                // the client instead of a silent hang.
                if let Some(session) = self.sessions.get_mut(from.index()) {
                    if session.last_timestamp > 0 && submit.timestamp <= session.last_timestamp {
                        session.duplicates += 1;
                        self.stats.duplicates += 1;
                        let cached = session
                            .replies
                            .iter()
                            .find(|(ts, _)| *ts == submit.timestamp)
                            .or_else(|| session.replies.back())
                            .map(|(_, reply)| reply.clone());
                        if let Some(reply) = cached {
                            self.outbox.push_back((from, UstorMsg::Reply(reply)));
                        }
                        return;
                    }
                }
                if let Some(session) = self.sessions.get_mut(from.index()) {
                    session.submits += 1;
                    session.last_timestamp = submit.timestamp;
                    session.awaiting_reply.push_back(submit.timestamp);
                    if submit.tuple.kind == OpKind::Write {
                        session.last_value_hash =
                            submit.value.as_ref().map(|v| sha256(v.as_bytes()));
                    }
                    if submit.piggyback.is_some() {
                        session.commits += 1;
                    }
                }
                self.stats.submits += 1;
                for (rcpt, reply) in self.server.on_submit(from, submit) {
                    self.release_reply(rcpt, reply);
                }
            }
            UstorMsg::Commit(commit) => {
                if let Some(session) = self.sessions.get_mut(from.index()) {
                    session.commits += 1;
                }
                self.stats.commits += 1;
                for (rcpt, reply) in self.server.on_commit(from, commit) {
                    self.release_reply(rcpt, reply);
                }
            }
            // Clients never legitimately send REPLY; ignore quietly.
            UstorMsg::Reply(_) => {
                self.stats.nonsense += 1;
            }
        }
    }
}

/// Runs an engine over a transport until the transport closes (blocking
/// transports) or drains ([`Incoming::Idle`], deterministic transports).
///
/// Each round greedily gathers every message already available before
/// processing, so batched ingress verification and group-commit fsyncs
/// see real batches under load while an idle connection still gets
/// per-message latency. While the server holds replies back for
/// durability ([`crate::Server::flush_deadline`]), the loop waits with
/// [`ServerTransport::recv_deadline`] instead of blocking indefinitely,
/// and forces a final flush when the transport closes — an acknowledged
/// reply is never stranded behind a parked `recv`.
///
/// Outputs are drained **per client as frame batches**
/// ([`ServerEngine::poll_output_batch`] →
/// [`ServerTransport::send_batch`]), so a coalescing transport issues
/// one write per client per round.
pub fn serve<T: ServerTransport>(engine: &mut ServerEngine, transport: &mut T) {
    loop {
        // Block (or observe Idle) for the first message of the round —
        // bounded by the flush deadline while replies are held back.
        let mut closed = false;
        let first = match engine.flush_deadline() {
            Some(deadline) => transport.recv_deadline(deadline),
            None => transport.recv(),
        };
        match first {
            Incoming::Msg(from, msg) => engine.enqueue(from, msg),
            Incoming::TimedOut => {} // flush is due; fall through
            Incoming::Idle | Incoming::Closed => closed = true,
        }
        if !closed {
            // Gather whatever else has already arrived.
            loop {
                match transport.try_recv() {
                    Incoming::Msg(from, msg) => engine.enqueue(from, msg),
                    Incoming::Idle | Incoming::TimedOut => break,
                    Incoming::Closed => {
                        closed = true;
                        break;
                    }
                }
            }
        }
        engine.process_all();
        if closed {
            // Last chance to release held replies before the loop ends.
            engine.flush_server(true);
        }
        while let Some((to, batch)) = engine.poll_output_batch() {
            transport.send_batch(to, batch);
        }
        if closed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::UstorClient;
    use crate::server::UstorServer;
    use faust_crypto::sig::KeySet;
    use faust_types::Value;

    fn setup(
        n: usize,
        verification: impl Fn(&KeySet) -> IngressVerification,
    ) -> (ServerEngine, Vec<UstorClient>) {
        let keys = KeySet::generate(n, b"engine-tests");
        let clients = (0..n)
            .map(|i| {
                UstorClient::new(
                    ClientId::new(i as u32),
                    n,
                    keys.keypair(i as u32).unwrap().clone(),
                    keys.registry(),
                )
            })
            .collect();
        let engine = ServerEngine::new(n, Box::new(UstorServer::new(n)))
            .with_verification(verification(&keys));
        (engine, clients)
    }

    fn registry(keys: &KeySet) -> SharedVerifier {
        Arc::new(keys.registry())
    }

    /// Runs one full op through the engine, asserting the reply routes
    /// back to the submitter.
    fn run_op(engine: &mut ServerEngine, client: &mut UstorClient, submit: faust_types::SubmitMsg) {
        let id = client.id();
        engine.enqueue(id, UstorMsg::Submit(submit));
        engine.process_all();
        let (to, reply) = engine.poll_output().expect("one reply");
        assert_eq!(to, id);
        let UstorMsg::Reply(reply) = reply else {
            panic!("expected a reply");
        };
        let (commit, _) = client.handle_reply(reply).expect("correct server");
        engine.enqueue(id, UstorMsg::Commit(commit.expect("immediate mode")));
        engine.process_all();
        assert!(engine.poll_output().is_none(), "commit produces no reply");
    }

    #[test]
    fn engine_matches_direct_server_behavior() {
        let (mut engine, mut clients) = setup(2, |_| IngressVerification::Off);
        let submit = clients[0].begin_write(Value::from("v1")).unwrap();
        run_op(&mut engine, &mut clients[0], submit);
        let submit = clients[1].begin_read(ClientId::new(0)).unwrap();
        run_op(&mut engine, &mut clients[1], submit);
        assert_eq!(engine.stats().submits, 2);
        assert_eq!(engine.stats().commits, 2);
        assert_eq!(engine.session(ClientId::new(0)).last_timestamp, 1);
    }

    #[test]
    fn honest_traffic_passes_both_verification_modes() {
        for batched in [false, true] {
            let (mut engine, mut clients) = setup(3, |keys| {
                if batched {
                    IngressVerification::Batched(registry(keys))
                } else {
                    IngressVerification::PerMessage(registry(keys))
                }
            });
            // Writes then cross-reads, including a read of an unwritten
            // register (x̄ = ⊥ for the never-written client 2).
            let submit = clients[0].begin_write(Value::from("a")).unwrap();
            run_op(&mut engine, &mut clients[0], submit);
            let submit = clients[0].begin_read(ClientId::new(2)).unwrap();
            run_op(&mut engine, &mut clients[0], submit);
            let submit = clients[2].begin_read(ClientId::new(0)).unwrap();
            run_op(&mut engine, &mut clients[2], submit);
            assert_eq!(engine.stats().rejected, 0, "batched={batched}");
        }
    }

    #[test]
    fn batched_mode_checks_reads_against_queued_writes() {
        // A write and a subsequent read by the same client verified in the
        // SAME batch: the read's DATA signature covers the new value's
        // hash, which only the shadow-tracking batch builder can know.
        let (mut engine, mut clients) =
            setup(2, |keys| IngressVerification::Batched(registry(keys)));
        let w = clients[0].begin_write(Value::from("fresh")).unwrap();
        engine.enqueue(ClientId::new(0), UstorMsg::Submit(w));
        engine.process_all();
        let (_, UstorMsg::Reply(reply)) = engine.poll_output().unwrap() else {
            panic!("expected reply");
        };
        let (commit, _) = clients[0].handle_reply(reply).unwrap();
        // Queue the commit AND the next read together.
        engine.enqueue(ClientId::new(0), UstorMsg::Commit(commit.unwrap()));
        let r = clients[0].begin_read(ClientId::new(0)).unwrap();
        engine.enqueue(ClientId::new(0), UstorMsg::Submit(r));
        engine.process_all();
        assert_eq!(engine.stats().rejected, 0);
        let (_, UstorMsg::Reply(reply)) = engine.poll_output().unwrap() else {
            panic!("expected reply");
        };
        let (_, done) = clients[0].handle_reply(reply).unwrap();
        assert_eq!(done.read_value, Some(Some(Value::from("fresh"))));
    }

    #[test]
    fn forged_submits_are_rejected_in_both_modes() {
        for batched in [false, true] {
            let (mut engine, mut clients) = setup(2, |keys| {
                if batched {
                    IngressVerification::Batched(registry(keys))
                } else {
                    IngressVerification::PerMessage(registry(keys))
                }
            });
            // A genuine submit, tampered three ways.
            let good = clients[0].begin_write(Value::from("v")).unwrap();
            let mut wrong_sig = good.clone();
            wrong_sig.tuple.sig = faust_crypto::Signature::garbage();
            let mut wrong_value = good.clone();
            wrong_value.value = Some(Value::from("swapped")); // DATA sig mismatch
            let mut spoofed = good.clone();
            spoofed.tuple.client = ClientId::new(1); // from ≠ tuple.client
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(wrong_sig));
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(wrong_value));
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(spoofed));
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(good));
            engine.process_all();
            assert_eq!(engine.stats().rejected, 3, "batched={batched}");
            assert_eq!(engine.stats().submits, 1, "batched={batched}");
            // Only the genuine submit got a reply.
            let mut replies = 0;
            while engine.poll_output().is_some() {
                replies += 1;
            }
            assert_eq!(replies, 1, "batched={batched}");
        }
    }

    #[test]
    fn rejected_write_does_not_poison_a_queued_honest_read() {
        // A forged write queued before the same client's genuine read, in
        // ONE batch: the write must be rejected and the read accepted
        // against the client's *previous* value hash — identical to what
        // per-message processing decides. (A naive batch builder that
        // advances the shadow hash for unverified writes rejects the
        // honest read here.)
        for batched in [false, true] {
            let (mut engine, mut clients) = setup(2, |keys| {
                if batched {
                    IngressVerification::Batched(registry(keys))
                } else {
                    IngressVerification::PerMessage(registry(keys))
                }
            });
            // Establish a committed write so the client has a value hash.
            let w = clients[0].begin_write(Value::from("genuine")).unwrap();
            run_op(&mut engine, &mut clients[0], w);
            // The client's genuine next read, signed over hash("genuine").
            let honest = clients[0].begin_read(ClientId::new(0)).unwrap();
            // A forgery in client 0's name (the attacker has no key).
            let mut forged = honest.clone();
            forged.tuple.kind = OpKind::Write;
            forged.value = Some(Value::from("poison"));
            forged.tuple.sig = faust_crypto::Signature::garbage();
            forged.data_sig = faust_crypto::Signature::garbage();
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(forged));
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(honest));
            engine.process_all();
            assert_eq!(engine.stats().rejected, 1, "batched={batched}");
            assert_eq!(engine.stats().submits, 2, "batched={batched}");
            let (_, UstorMsg::Reply(reply)) = engine.poll_output().unwrap() else {
                panic!("expected the honest read's reply");
            };
            let (_, done) = clients[0]
                .handle_reply(reply)
                .expect("honest read must survive the forged write");
            assert_eq!(done.read_value, Some(Some(Value::from("genuine"))));
        }
    }

    #[test]
    fn out_of_range_sender_is_rejected_not_panicking() {
        let keys = KeySet::generate(2, b"engine-tests");
        let mut engine = ServerEngine::new(2, Box::new(UstorServer::new(2)))
            .with_verification(IngressVerification::Batched(Arc::new(keys.registry())));
        let mut rogue = UstorClient::new(
            ClientId::new(0),
            2,
            keys.keypair(0).unwrap().clone(),
            keys.registry(),
        );
        let mut submit = rogue.begin_write(Value::from("x")).unwrap();
        submit.tuple.client = ClientId::new(7);
        engine.enqueue(ClientId::new(7), UstorMsg::Submit(submit));
        engine.process_all();
        assert_eq!(engine.stats().rejected, 1);
    }

    #[test]
    fn poll_output_batch_groups_per_client_preserving_fifo() {
        // One round whose inbox interleaves two clients — client 0 with
        // a pipelined burst of three reads, client 1 with one. The
        // engine answers in arrival order (outbox: 0,1,0,0), and the
        // batch drain must group client 0's three replies into ONE
        // batch without reordering them, then client 1's single reply.
        let (mut engine, mut clients) = setup(2, |_| IngressVerification::Off);
        let r0 = clients[0].begin_read(ClientId::new(1)).unwrap();
        let r1 = clients[1].begin_read(ClientId::new(0)).unwrap();
        // The protocol client is sequential; the engine is not — a
        // pipelined client (or a resend) legitimately queues several
        // submits in one round, which is exactly what egress batching
        // is for. Duplicate the read submit to model that.
        engine.enqueue(ClientId::new(0), UstorMsg::Submit(r0.clone()));
        engine.enqueue(ClientId::new(1), UstorMsg::Submit(r1));
        engine.enqueue(ClientId::new(0), UstorMsg::Submit(r0.clone()));
        engine.enqueue(ClientId::new(0), UstorMsg::Submit(r0));
        engine.process_all();

        let (to, batch) = engine.poll_output_batch().unwrap();
        assert_eq!(to, ClientId::new(0));
        assert_eq!(batch.len(), 3, "client 0's replies coalesce");
        assert!(batch.iter().all(|m| matches!(m, UstorMsg::Reply(_))));
        let (to, batch) = engine.poll_output_batch().unwrap();
        assert_eq!(to, ClientId::new(1));
        assert_eq!(batch.len(), 1);
        assert!(engine.poll_output_batch().is_none());

        let stats = engine.stats();
        assert_eq!(stats.frames_out, 4);
        assert_eq!(stats.flushes, 2, "4 frames left in 2 hand-offs");
        assert_eq!(stats.max_egress_batch, 3);
    }

    /// A test double standing in for a group-committing store: replies
    /// are withheld until `flush`, with a deadline while anything is
    /// held — exercising exactly the engine/serve plumbing the real
    /// `faust-store` backend relies on (which lives downstream and
    /// cannot be imported here).
    struct HoldingServer {
        inner: UstorServer,
        held: Vec<(ClientId, faust_types::ReplyMsg)>,
    }

    impl Server for HoldingServer {
        fn on_submit(
            &mut self,
            client: ClientId,
            msg: faust_types::SubmitMsg,
        ) -> Vec<(ClientId, faust_types::ReplyMsg)> {
            let replies = self.inner.on_submit(client, msg);
            self.held.extend(replies);
            Vec::new()
        }

        fn on_commit(
            &mut self,
            client: ClientId,
            msg: faust_types::CommitMsg,
        ) -> Vec<(ClientId, faust_types::ReplyMsg)> {
            self.inner.on_commit(client, msg)
        }

        fn flush(&mut self, force: bool) -> Vec<(ClientId, faust_types::ReplyMsg)> {
            // Policy never satisfied on its own: only a *forced* flush
            // (transport closing) releases — the strictest test of the
            // serve loop's no-stranded-replies guarantee.
            if force {
                std::mem::take(&mut self.held)
            } else {
                Vec::new()
            }
        }

        fn flush_deadline(&self) -> Option<std::time::Instant> {
            (!self.held.is_empty()).then(std::time::Instant::now)
        }
    }

    #[test]
    fn serve_flushes_held_replies_before_closing() {
        let keys = KeySet::generate(1, b"engine-tests");
        let mut client = UstorClient::new(
            ClientId::new(0),
            1,
            keys.keypair(0).unwrap().clone(),
            keys.registry(),
        );
        let holding = HoldingServer {
            inner: UstorServer::new(1),
            held: Vec::new(),
        };
        let mut engine = ServerEngine::new(1, Box::new(holding));
        let mut transport = faust_net::QueueTransport::new();
        let submit = client.begin_write(Value::from("held")).unwrap();
        transport.push_incoming(ClientId::new(0), UstorMsg::Submit(submit));
        serve(&mut engine, &mut transport);
        // The withheld reply must have been force-flushed out before the
        // serve loop returned — no reply is stranded.
        let outputs: Vec<_> = transport.drain_outgoing().collect();
        assert_eq!(outputs.len(), 1);
        assert_eq!(outputs[0].0, ClientId::new(0));
        assert!(matches!(outputs[0].1, UstorMsg::Reply(_)));
    }

    #[test]
    fn merge_adds_counters_and_maxes_high_water_marks() {
        let a = EngineStats {
            submits: 10,
            commits: 8,
            duplicates: 2,
            rejected: 1,
            nonsense: 0,
            batches: 4,
            max_batch: 5,
            frames_out: 12,
            flushes: 6,
            max_egress_batch: 3,
        };
        let b = EngineStats {
            submits: 7,
            commits: 5,
            duplicates: 1,
            rejected: 0,
            nonsense: 2,
            batches: 3,
            max_batch: 9,
            frames_out: 8,
            flushes: 2,
            max_egress_batch: 1,
        };
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.submits, 17);
        assert_eq!(merged.commits, 13);
        assert_eq!(merged.duplicates, 3);
        assert_eq!(merged.rejected, 1);
        assert_eq!(merged.nonsense, 2);
        assert_eq!(merged.batches, 7);
        assert_eq!(merged.max_batch, 9, "high-water marks take the max");
        assert_eq!(merged.frames_out, 20);
        assert_eq!(merged.flushes, 8);
        assert_eq!(merged.max_egress_batch, 3);
        // merged() folds from zero, so identity and order hold.
        assert_eq!(EngineStats::merged([&a, &b]), merged);
        assert_eq!(EngineStats::merged([&b, &a]), merged);
        assert_eq!(EngineStats::merged([&a]), a);
        assert_eq!(EngineStats::merged([]), EngineStats::default());
    }

    #[test]
    fn duplicate_submit_replays_the_original_reply_byte_identically() {
        use faust_types::Wire;
        let (mut engine, mut clients) = setup(2, |_| IngressVerification::Off);
        let w = clients[0].begin_write(Value::from("v1")).unwrap();
        run_op(&mut engine, &mut clients[0], w);
        // An in-flight read whose ack is "lost with the socket".
        let r = clients[0].begin_read(ClientId::new(0)).unwrap();
        engine.enqueue(ClientId::new(0), UstorMsg::Submit(r.clone()));
        engine.process_all();
        let (_, original) = engine.poll_output().expect("original reply");
        // The client reconnects and replays the identical SUBMIT bytes.
        engine.enqueue(ClientId::new(0), UstorMsg::Submit(r));
        engine.process_all();
        let (to, replayed) = engine.poll_output().expect("replayed reply");
        assert_eq!(to, ClientId::new(0));
        assert_eq!(replayed.encode(), original.encode(), "byte-identical");
        assert!(engine.poll_output().is_none());
        assert_eq!(engine.stats().duplicates, 1);
        assert_eq!(engine.session(ClientId::new(0)).duplicates, 1);
        // The duplicate never reached the protocol server: only the two
        // genuine submits were forwarded.
        assert_eq!(engine.stats().submits, 2);
    }

    #[test]
    fn resent_window_passes_ingress_verification_in_both_modes() {
        // A pipelined window [read, write] resent in full after a lost
        // connection: the read's DATA signature covers the value hash
        // *before* the write, so naive re-verification would reject it.
        // Duplicates are gated on their SUBMIT signature alone, answered
        // from the cache, and must not poison the shadow hash that fresh
        // traffic queued behind them is verified against.
        for batched in [false, true] {
            let (mut engine, mut clients) = setup(2, |keys| {
                if batched {
                    IngressVerification::Batched(registry(keys))
                } else {
                    IngressVerification::PerMessage(registry(keys))
                }
            });
            clients[0].set_pipeline(3);
            let w1 = clients[0].begin_write(Value::from("old")).unwrap();
            run_op(&mut engine, &mut clients[0], w1);
            let r2 = clients[0].begin_read(ClientId::new(0)).unwrap();
            let w3 = clients[0].begin_write(Value::from("new")).unwrap();
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(r2.clone()));
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(w3.clone()));
            engine.process_all();
            assert_eq!(engine.stats().rejected, 0, "batched={batched}");
            let (_, UstorMsg::Reply(reply_r2)) = engine.poll_output().unwrap() else {
                panic!("expected r2's reply");
            };
            let (_, UstorMsg::Reply(reply_w3)) = engine.poll_output().unwrap() else {
                panic!("expected w3's reply");
            };
            // Both acks are lost; the whole window is replayed, with a
            // fresh read queued behind it in the same batch.
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(r2));
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(w3));
            engine.process_all();
            assert_eq!(engine.stats().rejected, 0, "batched={batched}");
            assert_eq!(engine.stats().duplicates, 2, "batched={batched}");
            let (_, UstorMsg::Reply(rr2)) = engine.poll_output().unwrap() else {
                panic!("expected r2's replay");
            };
            let (_, UstorMsg::Reply(rw3)) = engine.poll_output().unwrap() else {
                panic!("expected w3's replay");
            };
            assert_eq!(rr2, reply_r2, "batched={batched}");
            assert_eq!(rw3, reply_w3, "batched={batched}");
            // The fail-aware client accepts the replayed replies without
            // a false violation, and a fresh read still verifies.
            clients[0].handle_reply(rr2).expect("no false violation");
            clients[0].handle_reply(rw3).expect("no false violation");
            let r4 = clients[0].begin_read(ClientId::new(0)).unwrap();
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(r4));
            engine.process_all();
            assert_eq!(engine.stats().rejected, 0, "batched={batched}");
            let (_, UstorMsg::Reply(reply_r4)) = engine.poll_output().unwrap() else {
                panic!("expected r4's reply");
            };
            let (_, done) = clients[0].handle_reply(reply_r4).unwrap();
            assert_eq!(done.read_value, Some(Some(Value::from("new"))));
        }
    }

    #[test]
    fn serve_drains_a_queue_transport() {
        let keys = KeySet::generate(1, b"engine-tests");
        let mut client = UstorClient::new(
            ClientId::new(0),
            1,
            keys.keypair(0).unwrap().clone(),
            keys.registry(),
        );
        let mut engine = ServerEngine::new(1, Box::new(UstorServer::new(1)));
        let mut transport = faust_net::QueueTransport::new();
        let submit = client.begin_write(Value::from("q")).unwrap();
        transport.push_incoming(ClientId::new(0), UstorMsg::Submit(submit));
        serve(&mut engine, &mut transport);
        let outputs: Vec<_> = transport.drain_outgoing().collect();
        assert_eq!(outputs.len(), 1);
        assert_eq!(outputs[0].0, ClientId::new(0));
    }
}
