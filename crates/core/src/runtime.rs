//! Thread-per-client runtime: the same USTOR protocol stack as the
//! simulator drives, but over real OS threads and channels — genuine
//! concurrency rather than virtual time.
//!
//! Used by the wait-freedom demonstrations and throughput benchmarks: a
//! slow (or sleeping) client provably does not delay the others, because
//! the server answers each SUBMIT immediately and never waits for
//! anybody's COMMIT.

use crossbeam::channel::{unbounded, Receiver, Sender};
use faust_crypto::sig::KeySet;
use faust_types::{ClientId, CommitMsg, ReplyMsg, SubmitMsg, Value};
use faust_ustor::{Fault, Server, UstorClient, UstorServer};
use std::time::{Duration, Instant};

/// One step of a threaded client workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadedOp {
    /// Write a value to the client's own register.
    Write(Value),
    /// Read a register.
    Read(ClientId),
    /// Sleep for this many milliseconds (a slow collaborator).
    SleepMs(u64),
}

enum ToServer {
    Submit(ClientId, SubmitMsg),
    Commit(ClientId, CommitMsg),
    Done,
}

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Completed operations per client.
    pub completions: Vec<usize>,
    /// Faults detected (none unless the server misbehaves).
    pub faults: Vec<(ClientId, Fault)>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Wall-clock duration until each client finished its own workload.
    pub per_client_elapsed: Vec<Duration>,
}

/// Runs `n` clients on threads against a correct in-process USTOR server.
///
/// Returns when every client has finished its workload. Because USTOR is
/// wait-free, a client's [`ThreadedOp::SleepMs`] steps never extend the
/// other clients' `per_client_elapsed`.
///
/// # Panics
///
/// Panics if `workloads.len() != n` or a thread panics.
pub fn run_threaded(n: usize, workloads: Vec<Vec<ThreadedOp>>, key_seed: &[u8]) -> ThreadedReport {
    assert_eq!(workloads.len(), n, "one workload per client");
    let keys = KeySet::generate(n, key_seed);
    let (server_tx, server_rx) = unbounded::<ToServer>();
    let mut reply_txs: Vec<Sender<ReplyMsg>> = Vec::with_capacity(n);
    let mut reply_rxs: Vec<Option<Receiver<ReplyMsg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<ReplyMsg>();
        reply_txs.push(tx);
        reply_rxs.push(Some(rx));
    }

    let server_thread = std::thread::spawn(move || {
        let mut server = UstorServer::new(n);
        let mut remaining = n;
        while remaining > 0 {
            let Ok(msg) = server_rx.recv() else { break };
            match msg {
                ToServer::Submit(client, m) => {
                    for (rcpt, reply) in server.on_submit(client, m) {
                        // A disconnected recipient only means the run is
                        // ending; dropped replies are fine.
                        let _ = reply_txs[rcpt.index()].send(reply);
                    }
                }
                ToServer::Commit(client, m) => {
                    server.on_commit(client, m);
                }
                ToServer::Done => remaining -= 1,
            }
        }
    });

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (i, workload) in workloads.into_iter().enumerate() {
        let id = ClientId::new(i as u32);
        let keypair = keys.keypair(i as u32).expect("generated").clone();
        let registry = keys.registry();
        let tx = server_tx.clone();
        let rx = reply_rxs[i].take().expect("one receiver per client");
        handles.push(std::thread::spawn(move || {
            let mut client = UstorClient::new(id, n, keypair, registry);
            let mut completions = 0usize;
            let mut fault = None;
            let begun = Instant::now();
            'workload: for op in workload {
                let submit = match op {
                    ThreadedOp::SleepMs(ms) => {
                        std::thread::sleep(Duration::from_millis(ms));
                        continue;
                    }
                    ThreadedOp::Write(v) => client.begin_write(v),
                    ThreadedOp::Read(j) => client.begin_read(j),
                };
                let Ok(submit) = submit else { break };
                if tx.send(ToServer::Submit(id, submit)).is_err() {
                    break;
                }
                let Ok(reply) = rx.recv() else { break };
                match client.handle_reply(reply) {
                    Ok((commit, _done)) => {
                        completions += 1;
                        if let Some(commit) = commit {
                            if tx.send(ToServer::Commit(id, commit)).is_err() {
                                break 'workload;
                            }
                        }
                    }
                    Err(f) => {
                        fault = Some(f);
                        break 'workload;
                    }
                }
            }
            let _ = tx.send(ToServer::Done);
            (completions, fault, begun.elapsed())
        }));
    }
    drop(server_tx);

    let mut completions = vec![0; n];
    let mut per_client_elapsed = vec![Duration::ZERO; n];
    let mut faults = Vec::new();
    for (i, handle) in handles.into_iter().enumerate() {
        let (done, fault, elapsed) = handle.join().expect("client thread panicked");
        completions[i] = done;
        per_client_elapsed[i] = elapsed;
        if let Some(f) = fault {
            faults.push((ClientId::new(i as u32), f));
        }
    }
    server_thread.join().expect("server thread panicked");
    ThreadedReport {
        completions,
        faults,
        elapsed: start.elapsed(),
        per_client_elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    #[test]
    fn threaded_run_completes_all_ops() {
        let workloads = vec![
            vec![
                ThreadedOp::Write(Value::from("a1")),
                ThreadedOp::Write(Value::from("a2")),
                ThreadedOp::Read(c(1)),
            ],
            vec![
                ThreadedOp::Write(Value::from("b1")),
                ThreadedOp::Read(c(0)),
            ],
        ];
        let report = run_threaded(2, workloads, b"threaded-test");
        assert_eq!(report.completions, vec![3, 2]);
        assert!(report.faults.is_empty());
    }

    #[test]
    fn slow_client_does_not_delay_fast_clients() {
        // C1 sleeps 300 ms mid-workload; C0's 20 ops must not take
        // anywhere near that long.
        let workloads = vec![
            (0..20)
                .map(|i| ThreadedOp::Write(Value::unique(0, i)))
                .collect(),
            vec![
                ThreadedOp::Write(Value::unique(1, 0)),
                ThreadedOp::SleepMs(300),
                ThreadedOp::Write(Value::unique(1, 1)),
            ],
        ];
        let report = run_threaded(2, workloads, b"slow-test");
        assert_eq!(report.completions, vec![20, 2]);
        assert!(
            report.per_client_elapsed[0] < Duration::from_millis(200),
            "wait-freedom violated: fast client took {:?}",
            report.per_client_elapsed[0]
        );
    }

    #[test]
    fn many_threads_heavy_interleaving() {
        let n = 8;
        let workloads: Vec<Vec<ThreadedOp>> = (0..n)
            .map(|i| {
                (0..25)
                    .map(|s| {
                        if s % 3 == 0 {
                            ThreadedOp::Read(c(((i as u32) + 1) % n as u32))
                        } else {
                            ThreadedOp::Write(Value::unique(i as u32, s))
                        }
                    })
                    .collect()
            })
            .collect();
        let report = run_threaded(n, workloads, b"heavy");
        assert!(report.faults.is_empty(), "{:?}", report.faults);
        assert_eq!(report.completions, vec![25; 8]);
    }
}
