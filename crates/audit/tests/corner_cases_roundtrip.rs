//! Corner cases from `crates/consistency/tests/corner_cases.rs`, pushed
//! through the on-disk `FAUSTHIS` format: encode → decode must preserve
//! the history exactly, the consistency checkers must return identical
//! verdicts on the round-tripped history, and the auditor's verdict must
//! agree with the online checker (linearizable ⇒ `Certified`, not
//! linearizable ⇒ `Diverged(HistoryNotLinearizable)`).

use faust_audit::{audit, AuditVerdict, Divergence, SessionHistory};
use faust_consistency::{certify_linearizable, check_linearizability, Budget, CertifyOutcome};
use faust_crypto::sig::KeySet;
use faust_crypto::SigScheme;
use faust_types::{ClientId, History, Value};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

/// Wraps a bare client history in a recordless container — no WAL, no
/// commits, timestamps all `None` so the schedule cross-check is vacuous
/// and the verdict is decided purely by the consistency certification.
fn container(n: usize, history: History) -> SessionHistory {
    faust_audit::export_records(n, SigScheme::Hmac, None, Vec::new(), Some(history))
}

/// Round-trips through bytes and asserts every checker agrees with
/// itself across the trip; returns the decoded container.
fn roundtrip(n: usize, history: &History) -> SessionHistory {
    let session = container(n, history.clone());
    let decoded = SessionHistory::decode(&session.encode()).expect("clean container decodes");
    let back = decoded.client_history.as_ref().unwrap();
    assert_eq!(back.ops(), history.ops(), "history survives the disk trip");
    let budget = Budget::default();
    assert_eq!(
        check_linearizability(back, &budget),
        check_linearizability(history, &budget),
        "verdict must be identical on the round-tripped history"
    );
    let (before, after) = (certify_linearizable(history), certify_linearizable(back));
    assert_eq!(
        matches!(before, CertifyOutcome::Linearizable { .. }),
        matches!(after, CertifyOutcome::Linearizable { .. }),
        "certification must be identical on the round-tripped history"
    );
    decoded
}

fn verdict(n: usize, session: &SessionHistory) -> AuditVerdict {
    let registry = KeySet::generate(n, b"corner-cases").registry();
    audit(session, &registry).expect("audit runs").verdict
}

/// Ported: `concurrent_read_may_see_old_value`.
#[test]
fn concurrent_read_old_value_roundtrips_and_certifies() {
    let mut h = History::new();
    let w1 = h.begin_write(c(0), Value::from("old"), 0);
    h.complete_write(w1, 1, None);
    let w2 = h.begin_write(c(0), Value::from("new"), 10);
    let r = h.begin_read(c(1), c(0), 12);
    h.complete_read(r, 14, Some(Value::from("old")), None);
    h.complete_write(w2, 20, None);
    let session = roundtrip(2, &h);
    match verdict(2, &session) {
        AuditVerdict::Certified {
            fork_linearizable,
            ops,
            clients,
        } => {
            assert!(fork_linearizable);
            // A recordless container has an empty replayed schedule; the
            // certified scope counts schedule operations, not history ops.
            assert_eq!(ops, 0);
            assert_eq!(clients, 2);
        }
        other => panic!("expected certification, got {other:?}"),
    }
}

/// Ported: `concurrent_read_may_see_new_value`.
#[test]
fn concurrent_read_new_value_roundtrips_and_certifies() {
    let mut h = History::new();
    let w1 = h.begin_write(c(0), Value::from("old"), 0);
    h.complete_write(w1, 1, None);
    let w2 = h.begin_write(c(0), Value::from("new"), 10);
    let r = h.begin_read(c(1), c(0), 12);
    h.complete_read(r, 14, Some(Value::from("new")), None);
    h.complete_write(w2, 20, None);
    let session = roundtrip(2, &h);
    assert!(verdict(2, &session).is_certified());
}

/// Ported: `value_reversal_not_linearizable`.
#[test]
fn value_reversal_roundtrips_and_diverges() {
    let mut h = History::new();
    let w1 = h.begin_write(c(0), Value::from("old"), 0);
    h.complete_write(w1, 1, None);
    let w2 = h.begin_write(c(0), Value::from("new"), 10);
    h.complete_write(w2, 30, None);
    let r1 = h.begin_read(c(1), c(0), 12);
    h.complete_read(r1, 14, Some(Value::from("new")), None);
    let r2 = h.begin_read(c(1), c(0), 16);
    h.complete_read(r2, 18, Some(Value::from("old")), None);
    assert!(check_linearizability(&h, &Budget::default()).is_violated());
    let session = roundtrip(2, &h);
    match verdict(2, &session) {
        AuditVerdict::Diverged {
            divergence: Divergence::HistoryNotLinearizable { witness, .. },
            ..
        } => {
            assert_ne!(witness.0, witness.1, "violation carries a witness pair");
        }
        other => panic!("expected HistoryNotLinearizable, got {other:?}"),
    }
}

/// Ported: `cross_register_observations_commute`.
#[test]
fn cross_register_commute_roundtrips_and_certifies() {
    let mut h = History::new();
    let w0 = h.begin_write(c(0), Value::from("x"), 0);
    let w1 = h.begin_write(c(1), Value::from("y"), 0);
    h.complete_write(w0, 30, None);
    h.complete_write(w1, 30, None);
    let r2y = h.begin_read(c(2), c(1), 2);
    h.complete_read(r2y, 10, Some(Value::from("y")), None);
    let r3y = h.begin_read(c(3), c(1), 2);
    h.complete_read(r3y, 10, None, None);
    let r2x = h.begin_read(c(2), c(0), 12);
    h.complete_read(r2x, 20, None, None);
    let r3x = h.begin_read(c(3), c(0), 12);
    h.complete_read(r3x, 20, Some(Value::from("x")), None);
    let session = roundtrip(4, &h);
    assert!(verdict(4, &session).is_certified());
}

/// Ported: `notion_lattice_on_forked_history` — a split-brain read that
/// is fork-linearizable but NOT linearizable. The offline auditor
/// certifies *linearizability* of the observed history, so it must
/// report the divergence, mirroring the online checker's verdict.
#[test]
fn forked_history_roundtrips_and_diverges() {
    let mut h = History::new();
    let w1 = h.begin_write(c(0), Value::from("v1"), 0);
    h.complete_write(w1, 1, None);
    let w2 = h.begin_write(c(0), Value::from("v2"), 2);
    h.complete_write(w2, 3, None);
    let r = h.begin_read(c(1), c(0), 10);
    h.complete_read(r, 11, Some(Value::from("v1")), None);
    assert!(check_linearizability(&h, &Budget::default()).is_violated());
    let session = roundtrip(2, &h);
    match verdict(2, &session) {
        AuditVerdict::Diverged {
            divergence: Divergence::HistoryNotLinearizable { .. },
            ..
        } => {}
        other => panic!("expected HistoryNotLinearizable, got {other:?}"),
    }
}

/// Ported: `single_client_histories` (the violating half) — a client
/// disagreeing with itself is rejected through the disk trip too.
#[test]
fn self_inconsistent_client_roundtrips_and_diverges() {
    let mut h = History::new();
    let w = h.begin_write(c(0), Value::from("mine"), 0);
    h.complete_write(w, 1, None);
    let r = h.begin_read(c(0), c(0), 2);
    h.complete_read(r, 3, None, None);
    let session = roundtrip(1, &h);
    match verdict(1, &session) {
        AuditVerdict::Diverged {
            divergence: Divergence::HistoryNotLinearizable { .. },
            ..
        } => {}
        other => panic!("expected HistoryNotLinearizable, got {other:?}"),
    }
}
