//! Log-file corruption suite: every way the on-disk log can rot or be
//! tampered with yields a *structured* [`StoreError`] from `recover` —
//! never a panic, never a silently-loaded prefix. The one corruption no
//! local check can catch — truncation at a record boundary — recovers
//! "successfully" into rolled-back state, which is the clients' job to
//! detect (see `tests/attacks.rs`).

use faust_store::log::{RECORD_OVERHEAD, WAL_FILE};
use faust_store::testutil::{self, clients, run_op};
use faust_store::{
    truncate_tail_records, wal_record_spans, Durability, PersistentServer, StoreConfig, StoreError,
};
use faust_types::Value;
use std::path::Path;

fn no_sync() -> StoreConfig {
    StoreConfig {
        durability: Durability::Never,
        ..StoreConfig::default()
    }
}

/// Builds a store with 6 committed records and returns its pristine log
/// bytes plus the record spans.
fn seeded_store(dir: &Path) -> (Vec<u8>, Vec<std::ops::Range<usize>>) {
    let n = 2;
    let mut server = PersistentServer::open(dir, n, no_sync()).unwrap();
    let mut cs = clients(n, b"corruption");
    for round in 0..3u64 {
        let i = (round % 2) as usize;
        let submit = cs[i].begin_write(Value::unique(i as u32, round)).unwrap();
        run_op(&mut server, &mut cs[i], submit);
    }
    assert_eq!(server.next_seq(), 6);
    drop(server);
    let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
    let spans = wal_record_spans(dir).unwrap();
    assert_eq!(spans.len(), 6);
    (bytes, spans)
}

fn write_log(dir: &Path, bytes: &[u8]) {
    std::fs::write(dir.join(WAL_FILE), bytes).unwrap();
}

#[test]
fn flipped_byte_is_a_checksum_mismatch() {
    let dir = testutil::scratch_dir("corrupt-flip");
    let (good, spans) = seeded_store(&dir);
    // Flip one payload byte of record 2 (past its length + digest).
    let mut bad = good.clone();
    bad[spans[2].start + RECORD_OVERHEAD + 3] ^= 0x40;
    write_log(&dir, &bad);
    match PersistentServer::recover(&dir, 2, no_sync()).unwrap_err() {
        StoreError::RecordChecksum { seq } => assert_eq!(seq, 2),
        other => panic!("expected RecordChecksum, got {other}"),
    }

    // Flipping a byte of the stored *digest* is the same mismatch.
    let mut bad = good.clone();
    bad[spans[4].start + 7] ^= 0x01;
    write_log(&dir, &bad);
    assert!(matches!(
        PersistentServer::recover(&dir, 2, no_sync()).unwrap_err(),
        StoreError::RecordChecksum { seq: 4 }
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_mid_record_is_a_torn_record() {
    let dir = testutil::scratch_dir("corrupt-torn");
    let (good, spans) = seeded_store(&dir);
    // Cut inside the last record's payload.
    write_log(&dir, &good[..spans[5].end - 5]);
    match PersistentServer::recover(&dir, 2, no_sync()).unwrap_err() {
        StoreError::TornRecord { seq, missing } => {
            assert_eq!(seq, 5);
            assert_eq!(missing, 5);
        }
        other => panic!("expected TornRecord, got {other}"),
    }

    // Cut inside the length/digest prefix of record 3.
    write_log(&dir, &good[..spans[3].start + 2]);
    assert!(matches!(
        PersistentServer::recover(&dir, 2, no_sync()).unwrap_err(),
        StoreError::TornRecord { seq: 3, .. }
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicated_tail_is_a_duplicate_record() {
    let dir = testutil::scratch_dir("corrupt-dup");
    let (good, spans) = seeded_store(&dir);
    // Append a byte-exact copy of the final record: every checksum
    // holds, but seq 5 appears twice.
    let mut bad = good.clone();
    bad.extend_from_slice(&good[spans[5].clone()]);
    write_log(&dir, &bad);
    assert!(matches!(
        PersistentServer::recover(&dir, 2, no_sync()).unwrap_err(),
        StoreError::DuplicateRecord {
            expected: 6,
            found: 5
        }
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spliced_out_middle_record_is_a_sequence_gap() {
    let dir = testutil::scratch_dir("corrupt-gap");
    let (good, spans) = seeded_store(&dir);
    let mut bad = good[..spans[1].start].to_vec();
    bad.extend_from_slice(&good[spans[2].start..]); // drop record 1
    write_log(&dir, &bad);
    assert!(matches!(
        PersistentServer::recover(&dir, 2, no_sync()).unwrap_err(),
        StoreError::SequenceGap {
            expected: 1,
            found: 2
        }
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hostile_length_prefix_is_rejected_without_allocating() {
    let dir = testutil::scratch_dir("corrupt-len");
    let (good, spans) = seeded_store(&dir);
    let mut bad = good[..spans[5].start].to_vec();
    bad.extend_from_slice(&u32::MAX.to_be_bytes());
    bad.extend_from_slice(&[0u8; 40]); // some trailing garbage
    write_log(&dir, &bad);
    assert!(matches!(
        PersistentServer::recover(&dir, 2, no_sync()).unwrap_err(),
        StoreError::ImplausibleRecordLength { seq: 5, .. }
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn garbage_payload_with_matching_checksum_is_record_corrupt() {
    let dir = testutil::scratch_dir("corrupt-payload");
    let (good, spans) = seeded_store(&dir);
    // Hand-craft a record whose checksum is *valid* but whose payload is
    // not a LogRecord: seq 5 followed by a bogus tag.
    let mut payload = Vec::new();
    payload.extend_from_slice(&5u64.to_be_bytes());
    payload.push(0xEE); // no such record tag
    let digest = faust_crypto::sha256::sha256(&payload);
    let mut bad = good[..spans[5].start].to_vec();
    bad.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    bad.extend_from_slice(digest.as_bytes());
    bad.extend_from_slice(&payload);
    write_log(&dir, &bad);
    assert!(matches!(
        PersistentServer::recover(&dir, 2, no_sync()).unwrap_err(),
        StoreError::RecordCorrupt { seq: 5, .. }
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_is_repairable_with_zero_record_truncation() {
    // The honest-operator path after a real crash: strict recovery
    // refuses the torn tail; `truncate_tail_records(dir, 0)` discards
    // exactly the torn bytes — no valid (acknowledged) record is lost —
    // and recovery then proceeds.
    let dir = testutil::scratch_dir("corrupt-repair");
    let (good, spans) = seeded_store(&dir);
    write_log(&dir, &good[..spans[5].end - 5]); // record 5 torn
    assert!(matches!(
        PersistentServer::recover(&dir, 2, no_sync()).unwrap_err(),
        StoreError::TornRecord { seq: 5, .. }
    ));
    assert_eq!(truncate_tail_records(&dir, 0).unwrap(), 5);
    let recovered = PersistentServer::recover(&dir, 2, no_sync()).expect("repaired");
    assert_eq!(recovered.next_seq(), 5, "all complete records kept");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn boundary_truncation_recovers_locally_but_rolls_back() {
    // The rollback attack: drop the last 2 records at a record boundary.
    // Local recovery has nothing to object to — and that is the point:
    // the resulting regression is detectable only by clients (proved
    // end-to-end in tests/attacks.rs and tests/crash_recovery.rs).
    let dir = testutil::scratch_dir("corrupt-rollback");
    let (_, spans) = seeded_store(&dir);
    assert_eq!(spans.len(), 6);
    assert_eq!(truncate_tail_records(&dir, 2).unwrap(), 4);
    let recovered = PersistentServer::recover(&dir, 2, no_sync()).unwrap();
    assert_eq!(recovered.next_seq(), 4, "state silently rolled back");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_never_panics_on_random_tail_garbage() {
    // Shotgun: append random-ish garbage of every length 1..64 to a
    // pristine log; recovery must always return Err or Ok, never panic.
    let dir = testutil::scratch_dir("corrupt-shotgun");
    let (good, _) = seeded_store(&dir);
    for len in 1..64usize {
        let mut bad = good.clone();
        for k in 0..len {
            bad.push((k as u8).wrapping_mul(37).wrapping_add(len as u8));
        }
        write_log(&dir, &bad);
        let _ = PersistentServer::recover(&dir, 2, no_sync());
    }
    std::fs::remove_dir_all(&dir).ok();
}
