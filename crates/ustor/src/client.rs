//! The USTOR client state machine — Algorithm 1 of the paper.
//!
//! [`UstorClient`] is written sans-io: [`UstorClient::begin_write`] /
//! [`UstorClient::begin_read`] produce the SUBMIT message to send, and
//! [`UstorClient::handle_reply`] consumes the server's REPLY, performs
//! every check of lines 35–52, and produces the COMMIT message plus the
//! operation's result. Any failed check yields a [`Fault`] — the paper's
//! `output fail_i; halt` — after which the client permanently refuses to
//! operate.
//!
//! The "extended" operations of the paper (which additionally return the
//! relevant versions, needed by the FAUST layer) correspond to the
//! [`OpCompletion`] struct: every completion carries the committed version
//! and, for reads, the writer's version.
//!
//! # Pipelining
//!
//! Algorithm 1 as written is sequential: one operation in flight per
//! client. Nothing in the *wire protocol* requires that — a SUBMIT's
//! signatures depend only on the client's own operation counter and
//! values, never on the server's replies — so the client optionally runs
//! with a deeper window ([`UstorClient::set_pipeline`]): up to `depth`
//! operations may be begun before the first reply is processed, and
//! replies are consumed strictly FIFO. The server needs no change at all
//! (its reply already lists *every* uncommitted operation, including the
//! submitter's own earlier ones); the client-side checks generalize:
//!
//! * **own pending operations** (line 43): a reply may list the client's
//!   own not-yet-committed earlier operations; they are folded like any
//!   other client's, with their SUBMIT-signatures verified at the exact
//!   expected timestamps. At depth 1 an own pending operation is
//!   impossible and remains [`Fault::OwnOperationPending`].
//! * **own-timestamp agreement** (line 36) is checked on the *folded*
//!   version: after accounting for every pending operation, the reply
//!   must place this operation at exactly its submitted timestamp, and
//!   the folded version must extend the client's current version under
//!   `≼` — at depth 1 these are literally the two line-36 conjuncts.
//! * **proof anchoring** (line 41): a pipelined peer's COMMITs lag its
//!   SUBMITs, so the stored PROOF-signature may trail the digest being
//!   vouched. Up to `depth` pending operations per client may go
//!   unanchored; more is [`Fault::UnanchoredPendingOverflow`]. Forks
//!   hidden in that window are caught as soon as the owner's next COMMIT
//!   circulates — before the affected operations can become *stable* in
//!   the FAUST layer, which only ever advances on committed versions.
//! * **writer freshness** (line 52): the writer's committed self-entry
//!   may trail the returned timestamp by up to the pipeline depth
//!   instead of exactly one.
//!
//! The depth is a deployment-wide protocol parameter: every client must
//! be configured with the same value (it bounds what they tolerate of
//! *each other*). The default depth 1 reproduces Algorithm 1 bit for
//! bit.

use crate::fault::Fault;
use faust_crypto::chain::chain_extend;
use faust_crypto::sha256::sha256;
use faust_crypto::sig::{Keypair, SigContext, Signature, Signer, Verifier, VerifierRegistry};
use faust_crypto::Digest;
use faust_types::op::{data_signing_bytes, proof_signing_bytes, submit_signing_bytes};
use faust_types::{
    ClientId, CommitMsg, InvocationTuple, OpKind, ReplyMsg, SignedVersion, SubmitMsg, Timestamp,
    Value, Version, Wire, WireError,
};
use std::collections::{HashMap, VecDeque};

/// Why a new operation could not be started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeginError {
    /// The pipeline window is full (for the default depth 1: an operation
    /// is already in flight — USTOR clients are sequential by default).
    Busy,
    /// The client has detected a server fault and halted.
    Halted(Fault),
}

impl std::fmt::Display for BeginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BeginError::Busy => f.write_str("the operation pipeline window is full"),
            BeginError::Halted(fault) => write!(f, "client halted after fault: {fault}"),
        }
    }
}

impl std::error::Error for BeginError {}

/// The in-flight operation.
#[derive(Debug, Clone)]
struct PendingOp {
    kind: OpKind,
    target: ClientId,
    timestamp: Timestamp,
    /// Value being written (writes only), echoed into the completion.
    value: Option<Value>,
}

/// Serializable snapshot of one in-flight operation (see
/// [`UstorClientState`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingOpState {
    /// Read or write.
    pub kind: OpKind,
    /// The register accessed.
    pub target: ClientId,
    /// The operation's timestamp `t`.
    pub timestamp: Timestamp,
    /// Value being written (writes only).
    pub value: Option<Value>,
}

impl Wire for PendingOpState {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.kind.encode_into(out);
        self.target.encode_into(out);
        self.timestamp.encode_into(out);
        self.value.encode_into(out);
    }

    fn decode_from(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(PendingOpState {
            kind: OpKind::decode_from(buf)?,
            target: ClientId::decode_from(buf)?,
            timestamp: Timestamp::decode_from(buf)?,
            value: Option::<Value>::decode_from(buf)?,
        })
    }
}

/// The resumable protocol state of a [`UstorClient`], detached from its
/// key material: everything Algorithm 1 needs to continue a session
/// across a process restart. Produced by [`UstorClient::export_state`],
/// consumed by [`UstorClient::from_state`]. Keys never appear here — the
/// caller re-supplies the keypair and registry on restore.
///
/// The signature-verification memo tables are deliberately *not* part of
/// the state (they are pure caches and refill in one reply), and neither
/// is a halted fault — a halted client has no session worth resuming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UstorClientState {
    /// The client's identity.
    pub id: ClientId,
    /// The deployment size `n`.
    pub n: u32,
    /// `x̄_i`: hash of the most recently written value.
    pub xbar: Option<Digest>,
    /// The client's version `(V_i, M_i)`.
    pub version: Version,
    /// Operations begun but not yet answered, oldest first.
    pub inflight: Vec<PendingOpState>,
    /// The pipeline depth.
    pub max_pipeline: u32,
    /// `true` = [`CommitMode::Piggyback`].
    pub piggyback: bool,
    /// In piggyback mode: the version whose COMMIT is still unsent.
    pub held_commit_version: Option<Version>,
}

impl Wire for UstorClientState {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.id.encode_into(out);
        self.n.encode_into(out);
        self.xbar.encode_into(out);
        self.version.encode_into(out);
        self.inflight.encode_into(out);
        self.max_pipeline.encode_into(out);
        u8::from(self.piggyback).encode_into(out);
        self.held_commit_version.encode_into(out);
    }

    fn decode_from(buf: &mut &[u8]) -> Result<Self, WireError> {
        let id = ClientId::decode_from(buf)?;
        let n = u32::decode_from(buf)?;
        let xbar = Option::<Digest>::decode_from(buf)?;
        let version = Version::decode_from(buf)?;
        let inflight = Vec::<PendingOpState>::decode_from(buf)?;
        let max_pipeline = u32::decode_from(buf)?;
        let piggyback = match u8::decode_from(buf)? {
            0 => false,
            1 => true,
            tag => return Err(WireError::BadTag(tag)),
        };
        let held_commit_version = Option::<Version>::decode_from(buf)?;
        Ok(UstorClientState {
            id,
            n,
            xbar,
            version,
            inflight,
            max_pipeline,
            piggyback,
            held_commit_version,
        })
    }
}

/// Result of a completed operation, in the "extended" form of the paper
/// (`writex_i` / `readx_i` return the relevant versions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpCompletion {
    /// Read or write.
    pub kind: OpKind,
    /// The register accessed.
    pub target: ClientId,
    /// The operation's timestamp `t` (monotonically increasing per
    /// client; Definition 5 integrity).
    pub timestamp: Timestamp,
    /// For reads: the value read (`None` = register still `⊥`). `None`
    /// for writes.
    pub read_value: Option<Option<Value>>,
    /// For writes: the value written.
    pub written_value: Option<Value>,
    /// The version `(V_i, M_i)` committed by this operation.
    pub version: Version,
    /// For reads: the writer's version `(V^j, M^j)` from the reply,
    /// with its COMMIT-signature. The FAUST layer stores it in `VER_i[j]`.
    pub writer_version: Option<SignedVersion>,
}

/// When the client transmits the COMMIT of each operation.
///
/// Section 5 of the paper: "Sending a COMMIT message is simply an
/// optimization to expedite garbage collection at S; this message can be
/// eliminated by piggybacking its contents on the SUBMIT message of the
/// next operation."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// Send a separate COMMIT message immediately (Algorithm 1 as
    /// written): 3 messages per operation, prompt garbage collection.
    #[default]
    Immediate,
    /// Piggyback the COMMIT on the next SUBMIT: 2 messages per operation,
    /// at the cost of a longer pending list `L` at the server.
    Piggyback,
}

/// The USTOR client protocol state (Algorithm 1).
///
/// # Example
///
/// ```
/// use faust_crypto::sig::KeySet;
/// use faust_types::{ClientId, Value};
/// use faust_ustor::{Server, UstorClient, UstorServer};
///
/// let keys = KeySet::generate(2, b"doc");
/// let mut server = UstorServer::new(2);
/// let mut alice = UstorClient::new(ClientId::new(0), 2, keys.keypair(0).unwrap().clone(), keys.registry());
///
/// let submit = alice.begin_write(Value::from("v1")).unwrap();
/// let replies = server.on_submit(ClientId::new(0), submit);
/// let (commit, done) = alice.handle_reply(replies.into_iter().next().unwrap().1).unwrap();
/// server.on_commit(ClientId::new(0), commit.expect("immediate commit mode"));
/// assert_eq!(done.timestamp, 1);
/// ```
#[derive(Debug, Clone)]
pub struct UstorClient {
    id: ClientId,
    n: usize,
    keypair: Keypair,
    registry: VerifierRegistry,
    /// `x̄_i`: hash of the most recently written value (`⊥` before the
    /// first write).
    xbar: Option<Digest>,
    /// The client's version `(V_i, M_i)`, as of the last processed reply.
    version: Version,
    /// Operations begun but whose replies have not yet been processed,
    /// oldest first. Replies are consumed strictly FIFO. Holds at most
    /// one entry at the default pipeline depth 1.
    inflight: VecDeque<PendingOp>,
    /// The deployment-wide pipeline depth (see the module docs); 1 =
    /// the paper's sequential client.
    max_pipeline: usize,
    halted: Option<Fault>,
    commit_mode: CommitMode,
    /// In piggyback mode: the version whose COMMIT has not yet been
    /// attached to a SUBMIT. Held *unsigned* and signed lazily at attach
    /// time: under pipelining a newer completion overwrites an unsent
    /// one (its version subsumes the older for both `SVER` and pruning),
    /// so eager signing would waste two signatures per overwritten
    /// commit.
    held_commit_version: Option<Version>,
    /// Memoized *successful* SUBMIT-signature checks from pending-list
    /// folds, keyed by the statement they pin (client, expected
    /// timestamp) and holding the exact verified tuple. An uncommitted
    /// operation reappears in every reply until pruned, so under
    /// concurrency (and especially pipelining) the same signature would
    /// otherwise be re-verified dozens of times. A hit requires the
    /// presented tuple to match the verified one byte for byte, so this
    /// is pure memoization — no check is weakened. Bounded (cleared at
    /// [`VERIFY_CACHE_CAP`]).
    verified_submits: HashMap<(ClientId, Timestamp), InvocationTuple>,
    /// Same memoization for vouching PROOF-signatures, keyed by
    /// (client, vouched digest).
    verified_proofs: HashMap<(ClientId, Digest), Signature>,
    /// Negative counterpart of `verified_proofs`: a proof that *failed*
    /// to vouch a digest fails deterministically, and under pipelining
    /// the same stale (honest) proof is re-presented against the same
    /// mid-fold digest on every reply — without this table each one
    /// would re-run the full verification just to fail again.
    refuted_proofs: HashMap<(ClientId, Digest), Signature>,
    /// Memoized digest-chain extensions (`chain_extend` is a pure hash):
    /// successive replies re-fold largely the same pending suffix, so
    /// the same links are recomputed on every reply — O(L) hashes that
    /// one table lookup replaces.
    chain_memo: HashMap<(Option<Digest>, u32), Digest>,
}

/// Entry cap of the signature-verification memo tables; reaching it
/// clears the table (entries are tiny and refill in one reply).
const VERIFY_CACHE_CAP: usize = 4096;

/// Builds the COMMIT message for `version`: COMMIT-signature over the
/// version, PROOF-signature over the signer's own digest entry
/// (Algorithm 1 lines 18/31).
fn sign_commit(keypair: &Keypair, id: ClientId, version: Version) -> CommitMsg {
    let commit_sig = keypair.sign(SigContext::Commit, &version.signing_bytes());
    let proof_sig = keypair.sign(SigContext::Proof, &proof_signing_bytes(version.m().get(id)));
    CommitMsg {
        version,
        commit_sig,
        proof_sig,
    }
}

impl UstorClient {
    /// Creates the client protocol state for client `id` of `n`.
    ///
    /// # Panics
    ///
    /// Panics if the keypair does not belong to `id` or `id ≥ n`.
    pub fn new(id: ClientId, n: usize, keypair: Keypair, registry: VerifierRegistry) -> Self {
        assert_eq!(keypair.signer_index(), id.as_u32(), "keypair must match id");
        assert!(id.index() < n, "client id out of range");
        UstorClient {
            id,
            n,
            keypair,
            registry,
            xbar: None,
            version: Version::initial(n),
            inflight: VecDeque::new(),
            max_pipeline: 1,
            halted: None,
            commit_mode: CommitMode::Immediate,
            held_commit_version: None,
            verified_submits: HashMap::new(),
            verified_proofs: HashMap::new(),
            refuted_proofs: HashMap::new(),
            chain_memo: HashMap::new(),
        }
    }

    /// Snapshots the resumable protocol state (keys excluded; see
    /// [`UstorClientState`]). Callers persist this across restarts and
    /// rebuild with [`UstorClient::from_state`].
    pub fn export_state(&self) -> UstorClientState {
        UstorClientState {
            id: self.id,
            n: self.n as u32,
            xbar: self.xbar,
            version: self.version.clone(),
            inflight: self
                .inflight
                .iter()
                .map(|op| PendingOpState {
                    kind: op.kind,
                    target: op.target,
                    timestamp: op.timestamp,
                    value: op.value.clone(),
                })
                .collect(),
            max_pipeline: self.max_pipeline as u32,
            piggyback: self.commit_mode == CommitMode::Piggyback,
            held_commit_version: self.held_commit_version.clone(),
        }
    }

    /// Rebuilds a client from a state snapshot plus its (externally kept)
    /// key material. The memo caches start empty and a restored client is
    /// never halted — staleness of the snapshot itself is the caller's
    /// concern (the FAUST layer detects it against the server).
    ///
    /// # Panics
    ///
    /// Panics if the keypair does not belong to the snapshot's `id` or
    /// `id ≥ n` (same contract as [`UstorClient::new`]).
    pub fn from_state(
        keypair: Keypair,
        registry: VerifierRegistry,
        state: UstorClientState,
    ) -> Self {
        assert_eq!(
            keypair.signer_index(),
            state.id.as_u32(),
            "keypair must match id"
        );
        let n = state.n as usize;
        assert!(state.id.index() < n, "client id out of range");
        UstorClient {
            id: state.id,
            n,
            keypair,
            registry,
            xbar: state.xbar,
            version: state.version,
            inflight: state
                .inflight
                .into_iter()
                .map(|op| PendingOp {
                    kind: op.kind,
                    target: op.target,
                    timestamp: op.timestamp,
                    value: op.value,
                })
                .collect(),
            max_pipeline: (state.max_pipeline as usize).max(1),
            halted: None,
            commit_mode: if state.piggyback {
                CommitMode::Piggyback
            } else {
                CommitMode::Immediate
            },
            held_commit_version: state.held_commit_version,
            verified_submits: HashMap::new(),
            verified_proofs: HashMap::new(),
            refuted_proofs: HashMap::new(),
            chain_memo: HashMap::new(),
        }
    }

    /// [`chain_extend`] through the memo table (it is a pure function of
    /// its inputs; see `chain_memo`).
    fn chain_extend_memo(&mut self, d: Option<Digest>, k: u32) -> Digest {
        if let Some(cached) = self.chain_memo.get(&(d, k)) {
            return *cached;
        }
        let out = chain_extend(d, k);
        if self.chain_memo.len() >= VERIFY_CACHE_CAP {
            self.chain_memo.clear();
        }
        self.chain_memo.insert((d, k), out);
        out
    }

    /// Switches the commit transmission strategy (see [`CommitMode`]).
    /// Call before the first operation.
    pub fn set_commit_mode(&mut self, mode: CommitMode) {
        self.commit_mode = mode;
    }

    /// Sets the pipeline depth: how many operations may be in flight at
    /// once (see the module docs). `depth` is clamped to at least 1; the
    /// default 1 is the paper's sequential client. The depth is a
    /// deployment-wide parameter — configure every client identically,
    /// because it also bounds the commit lag tolerated of *peers*.
    /// Call before the first operation.
    pub fn set_pipeline(&mut self, depth: usize) {
        self.max_pipeline = depth.max(1);
    }

    /// The configured pipeline depth.
    pub fn pipeline(&self) -> usize {
        self.max_pipeline
    }

    /// Number of operations currently in flight (begun, reply not yet
    /// processed).
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// In [`CommitMode::Piggyback`]: takes the COMMIT awaiting the next
    /// SUBMIT, if any (signing it now). Runtimes send it explicitly when
    /// the client goes idle, so the server's pending list is
    /// garbage-collected even when no further operation follows.
    pub fn take_held_commit(&mut self) -> Option<CommitMsg> {
        self.held_commit_version
            .take()
            .map(|version| sign_commit(&self.keypair, self.id, version))
    }

    /// The current commit transmission strategy.
    pub fn commit_mode(&self) -> CommitMode {
        self.commit_mode
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Number of clients `n`.
    pub fn num_clients(&self) -> usize {
        self.n
    }

    /// The current version `(V_i, M_i)` (last committed).
    pub fn version(&self) -> &Version {
        &self.version
    }

    /// The fault that halted this client, if any.
    pub fn fault(&self) -> Option<&Fault> {
        self.halted.as_ref()
    }

    /// The verifier registry this client trusts (shared at setup).
    pub fn registry(&self) -> &VerifierRegistry {
        &self.registry
    }

    /// Whether the pipeline window is full (no further operation can be
    /// begun until a reply is processed). At the default depth 1 this is
    /// simply "an operation is in flight".
    pub fn is_busy(&self) -> bool {
        self.inflight.len() >= self.max_pipeline
    }

    /// Starts `write_i(x)`: returns the SUBMIT message for the server.
    ///
    /// # Errors
    ///
    /// [`BeginError::Busy`] if an operation is in flight,
    /// [`BeginError::Halted`] if a fault was detected earlier.
    pub fn begin_write(&mut self, value: Value) -> Result<SubmitMsg, BeginError> {
        self.begin(OpKind::Write, self.id, Some(value))
    }

    /// Starts `read_i(j)`: returns the SUBMIT message for the server.
    ///
    /// # Errors
    ///
    /// [`BeginError::Busy`] if an operation is in flight,
    /// [`BeginError::Halted`] if a fault was detected earlier.
    pub fn begin_read(&mut self, register: ClientId) -> Result<SubmitMsg, BeginError> {
        self.begin(OpKind::Read, register, None)
    }

    fn begin(
        &mut self,
        kind: OpKind,
        target: ClientId,
        value: Option<Value>,
    ) -> Result<SubmitMsg, BeginError> {
        if let Some(fault) = &self.halted {
            return Err(BeginError::Halted(fault.clone()));
        }
        if self.inflight.len() >= self.max_pipeline {
            return Err(BeginError::Busy);
        }
        // Line 12/25: t ← V_i[i] + 1, counting past every in-flight
        // operation (the version's own entry advances only as replies
        // are processed).
        let t = self.version.v().get(self.id) + self.inflight.len() as Timestamp + 1;
        // Line 13: a write updates x̄_i before signing.
        if let Some(v) = &value {
            self.xbar = Some(sha256(v.as_bytes()));
        }
        // Lines 14/26: SUBMIT- and DATA-signatures.
        let submit_sig = self
            .keypair
            .sign(SigContext::Submit, &submit_signing_bytes(kind, target, t));
        let data_sig = self
            .keypair
            .sign(SigContext::Data, &data_signing_bytes(t, self.xbar));
        self.inflight.push_back(PendingOp {
            kind,
            target,
            timestamp: t,
            value: value.clone(),
        });
        // In piggyback mode, the newest unattached COMMIT rides along
        // (signed here); the server applies it before this submit.
        let piggyback = self.take_held_commit();
        Ok(SubmitMsg {
            timestamp: t,
            tuple: InvocationTuple {
                client: self.id,
                kind,
                register: target,
                sig: submit_sig,
            },
            value,
            data_sig,
            piggyback,
        })
    }

    /// Processes the server's REPLY for the in-flight operation: performs
    /// all checks of Algorithm 1 and, on success, returns the COMMIT
    /// message to send — `None` in [`CommitMode::Piggyback`], where the
    /// commit is attached to the next SUBMIT instead — plus the
    /// operation's completion.
    ///
    /// # Errors
    ///
    /// Returns the detected [`Fault`] if any check fails; the client halts
    /// permanently (the paper's `output fail_i; halt`).
    pub fn handle_reply(
        &mut self,
        reply: ReplyMsg,
    ) -> Result<(Option<CommitMsg>, OpCompletion), Fault> {
        match self.try_handle_reply(reply) {
            Ok(out) => Ok(out),
            Err(fault) => {
                self.halted = Some(fault.clone());
                self.inflight.clear();
                Err(fault)
            }
        }
    }

    fn try_handle_reply(
        &mut self,
        reply: ReplyMsg,
    ) -> Result<(Option<CommitMsg>, OpCompletion), Fault> {
        if let Some(fault) = &self.halted {
            return Err(fault.clone());
        }
        // Replies are consumed strictly FIFO: this one answers the oldest
        // in-flight operation.
        let op = self
            .inflight
            .front()
            .cloned()
            .ok_or(Fault::UnsolicitedReply)?;
        self.validate_shape(&reply, &op)?;
        self.update_version(&reply, op.timestamp)?;
        let read_value = if op.kind == OpKind::Read {
            Some(self.check_data(&reply, op.target)?)
        } else {
            None
        };
        self.inflight.pop_front();

        // Lines 18/31: COMMIT- and PROOF-signatures on the new version.
        // In piggyback mode the signing is deferred to attach time (see
        // `held_commit_version`).
        let commit = match self.commit_mode {
            CommitMode::Immediate => {
                Some(sign_commit(&self.keypair, self.id, self.version.clone()))
            }
            CommitMode::Piggyback => {
                self.held_commit_version = Some(self.version.clone());
                None
            }
        };
        let completion = OpCompletion {
            kind: op.kind,
            target: op.target,
            timestamp: op.timestamp,
            read_value,
            written_value: op.value,
            version: self.version.clone(),
            writer_version: reply.read.map(|r| r.writer_version),
        };
        Ok((commit, completion))
    }

    /// Structural validation: vector arities and index ranges. A correct
    /// server never fails these; they keep a Byzantine server from causing
    /// panics instead of clean detection.
    fn validate_shape(&self, reply: &ReplyMsg, op: &PendingOp) -> Result<(), Fault> {
        if reply.last_committer.index() >= self.n {
            return Err(Fault::MalformedReply("last committer out of range"));
        }
        if reply.commit_version.version.num_clients() != self.n {
            return Err(Fault::MalformedReply("commit version arity"));
        }
        if reply.proofs.len() != self.n {
            return Err(Fault::MalformedReply("proof vector arity"));
        }
        for tuple in &reply.pending {
            if tuple.client.index() >= self.n || tuple.register.index() >= self.n {
                return Err(Fault::MalformedReply("pending tuple index out of range"));
            }
        }
        match (&reply.read, op.kind) {
            (None, OpKind::Read) => Err(Fault::MalformedReply("missing read part")),
            (Some(r), OpKind::Read) if r.writer_version.version.num_clients() != self.n => {
                Err(Fault::MalformedReply("writer version arity"))
            }
            _ => Ok(()),
        }
    }

    /// Algorithm 1, `updateVersion` (lines 34–47), generalized to the
    /// pipelined window (see the module docs). At `max_pipeline == 1`
    /// every check is exactly the paper's, in the paper's order.
    fn update_version(&mut self, reply: &ReplyMsg, op_timestamp: Timestamp) -> Result<(), Fault> {
        let c = reply.last_committer;
        let signed = &reply.commit_version;
        let sequential = self.max_pipeline <= 1;

        // Line 35: the version is the initial one or carries a valid
        // COMMIT-signature by C_c.
        if !signed.version.is_initial() {
            let valid = signed.sig.as_ref().is_some_and(|sig| {
                self.registry.verify(
                    c.as_u32(),
                    SigContext::Commit,
                    &signed.version.signing_bytes(),
                    sig,
                )
            });
            if !valid {
                return Err(Fault::BadCommitVersionSignature);
            }
        }

        // Line 36: monotonicity and agreement on our own entry. With a
        // pipeline, our own uncommitted operations legitimately put our
        // local version *ahead* of the last committed one; the same two
        // conjuncts are enforced on the folded version below, where they
        // are meaningful in both modes.
        if sequential {
            if !self.version.le(&signed.version) {
                return Err(Fault::VersionRegression);
            }
            if signed.version.v().get(self.id) != self.version.v().get(self.id) {
                return Err(Fault::OwnTimestampMismatch);
            }
        }

        // Line 37: adopt (V^c, M^c) as the candidate to fold into.
        let mut candidate = signed.version.clone();
        // Line 38: d ← M^c[c].
        let mut d = candidate.m().get(c);
        // Pipelined mode: pending operations whose digest could not be
        // anchored by a PROOF-signature, per client (commits lag submits
        // by at most the deployment's pipeline depth).
        let mut unanchored = vec![0usize; self.n];

        // Lines 39–45: fold in the pending (concurrent) operations.
        for tuple in &reply.pending {
            let k = tuple.client;
            // Line 41: C_k's previous operation must have committed the
            // digest we hold for it, vouched by its PROOF-signature. A
            // pipelined peer's commits trail its submits, so up to
            // `max_pipeline` operations per client may go unanchored.
            if let Some(expected) = candidate.m().get(k) {
                let anchored = match reply.proofs[k.index()].as_ref() {
                    Some(proof) => {
                        if self.verified_proofs.get(&(k, expected)) == Some(proof) {
                            true
                        } else if self.refuted_proofs.get(&(k, expected)) == Some(proof) {
                            false
                        } else {
                            let ok = self.registry.verify(
                                k.as_u32(),
                                SigContext::Proof,
                                &proof_signing_bytes(Some(expected)),
                                proof,
                            );
                            let memo = if ok {
                                &mut self.verified_proofs
                            } else {
                                &mut self.refuted_proofs
                            };
                            if memo.len() >= VERIFY_CACHE_CAP {
                                memo.clear();
                            }
                            memo.insert((k, expected), *proof);
                            ok
                        }
                    }
                    None => false,
                };
                if !anchored {
                    if sequential {
                        return Err(match reply.proofs[k.index()] {
                            Some(_) => Fault::BadProofSignature,
                            None => Fault::MissingProofSignature,
                        });
                    }
                    unanchored[k.index()] += 1;
                    if unanchored[k.index()] > self.max_pipeline {
                        return Err(Fault::UnanchoredPendingOverflow);
                    }
                }
            }
            // Line 42: account for the pending operation.
            let expected_t = candidate.v_mut().increment(k);
            // Line 43: a *sequential* client never appears in its own
            // pending list; a pipelined one does — its own earlier
            // operations are folded like anyone else's, SUBMIT-signature
            // checked at the exact expected timestamp (we sign one
            // invocation per timestamp, so a replayed or reordered own
            // tuple cannot verify).
            if k == self.id && sequential {
                return Err(Fault::OwnOperationPending);
            }
            let memoized = self
                .verified_submits
                .get(&(k, expected_t))
                .is_some_and(|verified| verified == tuple);
            let ok = memoized
                || self.registry.verify(
                    k.as_u32(),
                    SigContext::Submit,
                    &submit_signing_bytes(tuple.kind, tuple.register, expected_t),
                    &tuple.sig,
                );
            if !ok {
                return Err(Fault::BadSubmitSignature);
            }
            if !memoized {
                if self.verified_submits.len() >= VERIFY_CACHE_CAP {
                    self.verified_submits.clear();
                }
                self.verified_submits.insert((k, expected_t), tuple.clone());
            }
            // Lines 44–45: extend the digest chain.
            d = Some(self.chain_extend_memo(d, k.as_u32()));
            candidate.m_mut().set(k, d.expect("just set"));
        }

        // Lines 46–47: append our own operation.
        let t_new = candidate.v_mut().increment(self.id);
        let own_digest = self.chain_extend_memo(d, self.id.as_u32());
        candidate.m_mut().set(self.id, own_digest);

        // Line 36 on the folded version: the reply must place this very
        // operation at its submitted timestamp (the server accounted for
        // every earlier own operation exactly once), and the folded
        // version must extend what we already know. In sequential mode
        // both already hold (checked above, and `≼` is transitive along
        // the fold); in pipelined mode these are the authoritative
        // checks.
        if t_new != op_timestamp {
            return Err(Fault::OwnTimestampMismatch);
        }
        if !self.version.le(&candidate) {
            return Err(Fault::VersionRegression);
        }
        self.version = candidate;
        Ok(())
    }

    /// Algorithm 1, `checkData` (lines 48–52). Returns the read value.
    fn check_data(&self, reply: &ReplyMsg, j: ClientId) -> Result<Option<Value>, Fault> {
        let read = reply.read.as_ref().expect("validated in validate_shape");
        let writer = &read.writer_version;
        let tj = read.mem_timestamp;

        // Line 49: writer's version is initial or properly signed by C_j.
        if !writer.version.is_initial() {
            let valid = writer.sig.as_ref().is_some_and(|sig| {
                self.registry.verify(
                    j.as_u32(),
                    SigContext::Commit,
                    &writer.version.signing_bytes(),
                    sig,
                )
            });
            if !valid {
                return Err(Fault::BadWriterCommitSignature);
            }
        }

        // t_j = 0 means C_j has never submitted an operation; the register
        // is necessarily `⊥`, and a correct server sends exactly
        // `(0, ⊥, ⊥)`. Enforcing that here closes the gap where a faulty
        // server returns a fabricated value with t_j = 0 to skip the
        // DATA-signature check.
        if tj == 0 && (read.mem_value.is_some() || read.mem_data_sig.is_some()) {
            return Err(Fault::MalformedReply("nonempty initial register"));
        }

        // Line 50: the value is fresh-signed by C_j under timestamp t_j.
        if tj != 0 {
            let value_hash = read.mem_value.as_ref().map(|v| sha256(v.as_bytes()));
            let valid = read.mem_data_sig.as_ref().is_some_and(|sig| {
                self.registry.verify(
                    j.as_u32(),
                    SigContext::Data,
                    &data_signing_bytes(tj, value_hash),
                    sig,
                )
            });
            if !valid {
                return Err(Fault::BadDataSignature);
            }
        }

        // Line 51: the writer's version is within the presented history,
        // and t_j is exactly the last operation of C_j we account for.
        if !writer.version.le(&reply.commit_version.version) {
            return Err(Fault::WriterVersionAhead);
        }
        if tj != self.version.v().get(j) {
            return Err(Fault::DataTimestampMismatch);
        }

        // Line 52: the writer's own entry matches t_j, give or take its
        // not-yet-received COMMITs — at most one for a sequential writer
        // (the paper's check exactly), at most the deployment's pipeline
        // depth otherwise.
        let vjj = writer.version.v().get(j);
        if !(vjj <= tj && tj - vjj <= self.max_pipeline as Timestamp) {
            return Err(Fault::WriterSelfEntryMismatch);
        }

        Ok(read.mem_value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_crypto::sig::KeySet;

    fn client(n: usize) -> UstorClient {
        let keys = KeySet::generate(n, b"client-tests");
        UstorClient::new(
            ClientId::new(0),
            n,
            keys.keypair(0).unwrap().clone(),
            keys.registry(),
        )
    }

    #[test]
    fn begin_assigns_increasing_timestamps() {
        let mut c = client(2);
        let m1 = c.begin_write(Value::from("a")).unwrap();
        assert_eq!(m1.timestamp, 1);
        // Second begin while busy fails.
        assert_eq!(
            c.begin_read(ClientId::new(1)).unwrap_err(),
            BeginError::Busy
        );
    }

    #[test]
    fn write_submit_carries_value_read_does_not() {
        let mut c = client(2);
        let w = c.begin_write(Value::from("a")).unwrap();
        assert_eq!(w.value, Some(Value::from("a")));
        assert_eq!(w.tuple.kind, OpKind::Write);
        assert_eq!(w.tuple.register, ClientId::new(0));

        let mut c2 = client(2);
        let r = c2.begin_read(ClientId::new(1)).unwrap();
        assert_eq!(r.value, None);
        assert_eq!(r.tuple.kind, OpKind::Read);
        assert_eq!(r.tuple.register, ClientId::new(1));
    }

    #[test]
    fn unsolicited_reply_is_a_fault() {
        let mut c = client(2);
        let reply = ReplyMsg {
            last_committer: ClientId::new(1),
            commit_version: SignedVersion::initial(2),
            read: None,
            pending: vec![],
            proofs: vec![None, None],
        };
        assert_eq!(c.handle_reply(reply), Err(Fault::UnsolicitedReply));
    }

    #[test]
    fn halted_client_refuses_operations() {
        let mut c = client(2);
        let reply = ReplyMsg {
            last_committer: ClientId::new(1),
            commit_version: SignedVersion::initial(2),
            read: None,
            pending: vec![],
            proofs: vec![None, None],
        };
        let _ = c.handle_reply(reply); // unsolicited → halt
        assert!(matches!(
            c.begin_write(Value::from("x")),
            Err(BeginError::Halted(_))
        ));
    }

    #[test]
    fn malformed_arity_is_detected_not_panicking() {
        let mut c = client(3);
        c.begin_write(Value::from("a")).unwrap();
        let reply = ReplyMsg {
            last_committer: ClientId::new(0),
            commit_version: SignedVersion::initial(2), // wrong arity: 2 ≠ 3
            read: None,
            pending: vec![],
            proofs: vec![None, None, None],
        };
        assert_eq!(
            c.handle_reply(reply),
            Err(Fault::MalformedReply("commit version arity"))
        );
    }

    // ── pipelined mode ────────────────────────────────────────────────

    use crate::server::{Server, UstorServer};

    fn pipelined_setup(n: usize, depth: usize) -> (UstorServer, Vec<UstorClient>) {
        let keys = KeySet::generate(n, b"pipeline-tests");
        let clients = (0..n)
            .map(|i| {
                let mut c = UstorClient::new(
                    ClientId::new(i as u32),
                    n,
                    keys.keypair(i as u32).unwrap().clone(),
                    keys.registry(),
                );
                c.set_pipeline(depth);
                c
            })
            .collect();
        (UstorServer::new(n), clients)
    }

    #[test]
    fn pipelined_burst_completes_in_order_against_a_correct_server() {
        let (mut s, mut cs) = pipelined_setup(1, 4);
        let me = ClientId::new(0);
        // Four writes begun before any reply is seen.
        let submits: Vec<_> = (0..4)
            .map(|k| cs[0].begin_write(Value::unique(0, k)).unwrap())
            .collect();
        assert_eq!(cs[0].in_flight(), 4);
        assert!(cs[0].begin_read(me).is_err(), "window full");
        let replies: Vec<_> = submits
            .into_iter()
            .map(|m| s.on_submit(me, m).pop().unwrap().1)
            .collect();
        // Replies processed strictly FIFO; each completes with its own
        // timestamp and yields an ordinary COMMIT.
        for (k, reply) in replies.into_iter().enumerate() {
            let (commit, done) = cs[0].handle_reply(reply).expect("correct server");
            assert_eq!(done.timestamp, k as u64 + 1);
            s.on_commit(me, commit.unwrap());
        }
        assert_eq!(cs[0].in_flight(), 0);
        assert_eq!(s.pending_len(), 0, "commits garbage-collected L");
        // The register holds the last value.
        let r = cs[0].begin_read(me).unwrap();
        let reply = s.on_submit(me, r).pop().unwrap().1;
        let (_, done) = cs[0].handle_reply(reply).unwrap();
        assert_eq!(done.read_value, Some(Some(Value::unique(0, 3))));
    }

    #[test]
    fn two_pipelined_clients_interleave_without_faults() {
        let n = 2;
        let (mut s, mut cs) = pipelined_setup(n, 3);
        // Interleaved schedule: A1 B1 A2 B2 A3 B3, no commits until all
        // replies are out (maximum own-pending exposure).
        let mut replies: Vec<Vec<ReplyMsg>> = vec![Vec::new(), Vec::new()];
        for round in 0..3u64 {
            for i in 0..n {
                let m = cs[i].begin_write(Value::unique(i as u32, round)).unwrap();
                replies[i].push(s.on_submit(ClientId::new(i as u32), m).pop().unwrap().1);
            }
        }
        let mut commits = Vec::new();
        for (i, rs) in replies.into_iter().enumerate() {
            for (k, reply) in rs.into_iter().enumerate() {
                let (commit, done) = cs[i].handle_reply(reply).unwrap_or_else(|f| {
                    panic!("client {i} reply {k}: unexpected fault {f}");
                });
                assert_eq!(done.timestamp, k as u64 + 1);
                commits.push((ClientId::new(i as u32), commit.unwrap()));
            }
        }
        for (id, commit) in commits {
            s.on_commit(id, commit);
        }
        assert_eq!(s.pending_len(), 0);
        // Both clients' final versions are comparable (no fork).
        assert!(cs[0].version().comparable(cs[1].version()));
    }

    #[test]
    fn pipelined_reply_replay_is_detected() {
        let (mut s, mut cs) = pipelined_setup(1, 2);
        let me = ClientId::new(0);
        let m1 = cs[0].begin_write(Value::from("one")).unwrap();
        let _m2 = cs[0].begin_write(Value::from("two")).unwrap();
        let reply1 = s.on_submit(me, m1).pop().unwrap().1;
        let (_, done) = cs[0].handle_reply(reply1.clone()).unwrap();
        assert_eq!(done.timestamp, 1);
        // Replaying reply 1 for op 2 misplaces the operation.
        assert_eq!(cs[0].handle_reply(reply1), Err(Fault::OwnTimestampMismatch));
    }

    #[test]
    fn reader_window_tolerates_a_pipelined_writers_commit_lag() {
        // Writer (depth 3) has three uncommitted writes; a reader with
        // the same deployment depth accepts the read, while a sequential
        // reader (depth 1 — the strict paper checks) rejects the reply.
        for (reader_depth, ok) in [(3usize, true), (1usize, false)] {
            let (mut s, mut cs) = pipelined_setup(2, 3);
            cs[1].set_pipeline(reader_depth);
            for k in 0..3u64 {
                let m = cs[0].begin_write(Value::unique(0, k)).unwrap();
                s.on_submit(ClientId::new(0), m);
            }
            let r = cs[1].begin_read(ClientId::new(0)).unwrap();
            let reply = s.on_submit(ClientId::new(1), r).pop().unwrap().1;
            let result = cs[1].handle_reply(reply);
            if ok {
                let (_, done) = result.expect("within the window");
                assert_eq!(done.read_value, Some(Some(Value::unique(0, 2))));
            } else {
                // The strict fold demands a proof anchor for the writer's
                // second pending operation before even reaching line 52.
                assert_eq!(result, Err(Fault::MissingProofSignature));
            }
        }
    }

    #[test]
    fn unanchored_pending_overflow_is_detected() {
        // A writer four deep exceeds what a depth-2 deployment tolerates:
        // the reader cannot anchor that many proof-less operations.
        let (mut s, mut cs) = pipelined_setup(2, 4);
        cs[1].set_pipeline(2);
        for k in 0..4u64 {
            let m = cs[0].begin_write(Value::unique(0, k)).unwrap();
            s.on_submit(ClientId::new(0), m);
        }
        let r = cs[1].begin_read(ClientId::new(0)).unwrap();
        let reply = s.on_submit(ClientId::new(1), r).pop().unwrap().1;
        assert_eq!(
            cs[1].handle_reply(reply),
            Err(Fault::UnanchoredPendingOverflow)
        );
    }

    #[test]
    fn pipelined_piggyback_commits_ride_later_submits() {
        let (mut s, mut cs) = pipelined_setup(1, 2);
        cs[0].set_commit_mode(CommitMode::Piggyback);
        let me = ClientId::new(0);
        let m1 = cs[0].begin_write(Value::from("p1")).unwrap();
        let m2 = cs[0].begin_write(Value::from("p2")).unwrap();
        assert!(m1.piggyback.is_none() && m2.piggyback.is_none());
        let r1 = s.on_submit(me, m1).pop().unwrap().1;
        let r2 = s.on_submit(me, m2).pop().unwrap().1;
        let (c1, _) = cs[0].handle_reply(r1).unwrap();
        assert!(c1.is_none(), "piggyback holds the commit");
        // The next begin carries op 1's commit.
        let m3 = cs[0].begin_write(Value::from("p3")).unwrap();
        assert!(m3.piggyback.is_some());
        let r3 = s.on_submit(me, m3).pop().unwrap().1;
        let (c2, _) = cs[0].handle_reply(r2).unwrap();
        assert!(c2.is_none());
        let (c3, _) = cs[0].handle_reply(r3).unwrap();
        assert!(c3.is_none());
        // Idle now: the held commit is taken explicitly so the server's
        // pending list is garbage-collected.
        let held = cs[0].take_held_commit().expect("one commit held");
        s.on_commit(me, held);
        assert_eq!(s.pending_len(), 0);
    }
}
