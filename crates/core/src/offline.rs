//! Offline client-to-client messages of the FAUST protocol (Section 6):
//! PROBE, VERSION, and FAILURE.
//!
//! These messages travel on the reliable offline channel, never through
//! the untrusted server. They are nevertheless signed (domain
//! [`SigContext::Offline`]) so that the channel needs no further
//! authentication assumptions; unverifiable messages are silently dropped
//! (they can only be noise — dropping preserves failure-detection
//! accuracy).

use faust_crypto::sig::{SigContext, Signature, Signer, Verifier};
use faust_types::{ClientId, Version, Wire};

/// An offline client-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfflineMsg {
    /// "Send me the maximal version you know."
    Probe {
        /// The probing client.
        from: ClientId,
        /// Signature over the message.
        sig: Signature,
    },
    /// The sender's maximal known version `VER_j[max_j]` (not necessarily
    /// committed by the sender itself).
    Version {
        /// The sending client.
        from: ClientId,
        /// The version being shared.
        version: Version,
        /// Signature over the message.
        sig: Signature,
    },
    /// The sender has proof of server misbehaviour; everyone should stop.
    Failure {
        /// The alerting client.
        from: ClientId,
        /// Signature over the message.
        sig: Signature,
    },
}

fn probe_bytes(from: ClientId) -> Vec<u8> {
    let mut out = b"faust-probe:".to_vec();
    out.extend_from_slice(&from.as_u32().to_be_bytes());
    out
}

fn version_bytes(from: ClientId, version: &Version) -> Vec<u8> {
    let mut out = b"faust-version:".to_vec();
    out.extend_from_slice(&from.as_u32().to_be_bytes());
    out.extend_from_slice(&version.signing_bytes());
    out
}

fn failure_bytes(from: ClientId) -> Vec<u8> {
    let mut out = b"faust-failure:".to_vec();
    out.extend_from_slice(&from.as_u32().to_be_bytes());
    out
}

impl OfflineMsg {
    /// Builds a signed PROBE.
    pub fn probe(signer: &impl Signer) -> Self {
        let from = ClientId::new(signer.signer_index());
        OfflineMsg::Probe {
            from,
            sig: signer.sign(SigContext::Offline, &probe_bytes(from)),
        }
    }

    /// Builds a signed VERSION.
    pub fn version(signer: &impl Signer, version: Version) -> Self {
        let from = ClientId::new(signer.signer_index());
        let sig = signer.sign(SigContext::Offline, &version_bytes(from, &version));
        OfflineMsg::Version { from, version, sig }
    }

    /// Builds a signed FAILURE.
    pub fn failure(signer: &impl Signer) -> Self {
        let from = ClientId::new(signer.signer_index());
        OfflineMsg::Failure {
            from,
            sig: signer.sign(SigContext::Offline, &failure_bytes(from)),
        }
    }

    /// The sending client.
    pub fn sender(&self) -> ClientId {
        match self {
            OfflineMsg::Probe { from, .. }
            | OfflineMsg::Version { from, .. }
            | OfflineMsg::Failure { from, .. } => *from,
        }
    }

    /// Verifies the message signature against its claimed sender.
    pub fn verify(&self, registry: &impl Verifier) -> bool {
        match self {
            OfflineMsg::Probe { from, sig } => {
                registry.verify(from.as_u32(), SigContext::Offline, &probe_bytes(*from), sig)
            }
            OfflineMsg::Version { from, version, sig } => registry.verify(
                from.as_u32(),
                SigContext::Offline,
                &version_bytes(*from, version),
                sig,
            ),
            OfflineMsg::Failure { from, sig } => registry.verify(
                from.as_u32(),
                SigContext::Offline,
                &failure_bytes(*from),
                sig,
            ),
        }
    }

    /// Approximate wire size in bytes (tag + sender + signature +
    /// version payload if present).
    pub fn size_bytes(&self) -> usize {
        match self {
            OfflineMsg::Probe { .. } | OfflineMsg::Failure { .. } => 1 + 4 + Signature::LEN,
            OfflineMsg::Version { version, .. } => {
                1 + 4 + Signature::LEN + version.encoded_len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_crypto::sig::KeySet;

    #[test]
    fn messages_verify_under_their_sender() {
        let keys = KeySet::generate(2, b"offline");
        let reg = keys.registry();
        let signer = keys.keypair(0).unwrap();
        let msgs = [
            OfflineMsg::probe(signer),
            OfflineMsg::version(signer, Version::initial(2)),
            OfflineMsg::failure(signer),
        ];
        for m in &msgs {
            assert_eq!(m.sender(), ClientId::new(0));
            assert!(m.verify(&reg));
        }
    }

    #[test]
    fn spoofed_sender_rejected() {
        let keys = KeySet::generate(2, b"offline");
        let reg = keys.registry();
        let signer = keys.keypair(0).unwrap();
        let OfflineMsg::Probe { sig, .. } = OfflineMsg::probe(signer) else {
            unreachable!()
        };
        let spoofed = OfflineMsg::Probe {
            from: ClientId::new(1),
            sig,
        };
        assert!(!spoofed.verify(&reg));
    }

    #[test]
    fn tampered_version_rejected() {
        let keys = KeySet::generate(2, b"offline");
        let reg = keys.registry();
        let signer = keys.keypair(0).unwrap();
        let OfflineMsg::Version { from, sig, .. } =
            OfflineMsg::version(signer, Version::initial(2))
        else {
            unreachable!()
        };
        let mut other = Version::initial(2);
        other.v_mut().increment(ClientId::new(0));
        other
            .m_mut()
            .set(ClientId::new(0), faust_crypto::sha256(b"d"));
        let tampered = OfflineMsg::Version {
            from,
            version: other,
            sig,
        };
        assert!(!tampered.verify(&reg));
    }
}
