//! Register values.

use std::fmt;
use std::sync::Arc;

/// Cheaply clonable byte storage backing a [`Value`].
///
/// Either a borrowed static slice (zero-copy literals) or reference-counted
/// owned bytes; cloning never copies the payload.
#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Repr {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Repr::Static(b) => b,
            Repr::Shared(b) => b,
        }
    }
}

/// An opaque register value from the paper's domain `X`.
///
/// Values are byte strings; cloning is cheap (the storage is static or
/// reference counted), which matters because the server and simulator pass
/// values around freely. The paper's initial register content `⊥ ∉ X` is
/// represented as `Option<Value>::None` wherever it can occur.
///
/// # Example
///
/// ```
/// use faust_types::Value;
/// let v = Value::from_static(b"document rev 1");
/// assert_eq!(v.as_bytes(), b"document rev 1");
/// ```
#[derive(Clone)]
pub struct Value(Repr);

impl Value {
    /// Creates a value from owned bytes.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        Value(Repr::Shared(bytes.into().into()))
    }

    /// Creates a value from a static byte string without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Value(Repr::Static(bytes))
    }

    /// A small helper for tests and workloads: encodes `(client, seq)` so
    /// that every generated value is unique, as the paper assumes.
    pub fn unique(client: u32, seq: u64) -> Self {
        let mut v = Vec::with_capacity(12);
        v.extend_from_slice(&client.to_be_bytes());
        v.extend_from_slice(&seq.to_be_bytes());
        Value::new(v)
    }

    /// The value's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Whether the value is empty (zero-length — still a real value,
    /// distinct from the register's initial `⊥`).
    pub fn is_empty(&self) -> bool {
        self.as_bytes().is_empty()
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::from_static(b"")
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Ok(s) = std::str::from_utf8(self.as_bytes()) {
            write!(f, "Value({s:?})")
        } else {
            write!(f, "Value(0x{})", hex_prefix(self.as_bytes()))
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Ok(s) = std::str::from_utf8(self.as_bytes()) {
            f.write_str(s)
        } else {
            write!(f, "0x{}", hex_prefix(self.as_bytes()))
        }
    }
}

fn hex_prefix(bytes: &[u8]) -> String {
    bytes.iter().take(8).map(|b| format!("{b:02x}")).collect()
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::new(s.as_bytes().to_vec())
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::new(v)
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_values_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in 0..10 {
            for s in 0..10 {
                assert!(seen.insert(Value::unique(c, s)));
            }
        }
    }

    #[test]
    fn debug_shows_utf8_when_possible() {
        assert_eq!(format!("{:?}", Value::from("hi")), "Value(\"hi\")");
    }

    #[test]
    fn display_falls_back_to_hex() {
        let v = Value::new(vec![0xff, 0x00]);
        assert_eq!(v.to_string(), "0xff00");
    }

    #[test]
    fn empty_value_is_not_bottom() {
        let v = Value::new(Vec::new());
        assert!(v.is_empty());
        assert_eq!(Some(v.clone()), Some(v)); // Some(empty) ≠ None (⊥)
    }

    #[test]
    fn static_and_shared_storage_compare_equal() {
        let a = Value::from_static(b"same");
        let b = Value::new(b"same".to_vec());
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }
}
