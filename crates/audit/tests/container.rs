//! Container-format tests: round-trip fidelity and typed rejection of
//! every class of damaged file. The shotgun tests mutate every
//! byte-region class — manifest, record header, record payload,
//! signature bytes — and a full sweep asserts that *any* single-byte
//! flip and *any* truncation is rejected with a typed error, never a
//! panic and never silent acceptance.

use faust_audit::{export_records, HistoryFileError, Section, SessionHistory};
use faust_crypto::SigScheme;
use faust_store::testutil::clients;
use faust_store::LogRecord;
use faust_types::{ClientId, History, Value};
use faust_ustor::{Server, UstorServer};

/// Drives an honest 2-client session against a fresh in-memory server,
/// capturing the accepted records exactly as a WAL would.
fn honest_session(ops_per_client: u64) -> SessionHistory {
    let n = 2;
    let mut server = UstorServer::new(n);
    let mut cs = clients(n, b"container-tests");
    let mut records: Vec<(u64, LogRecord)> = Vec::new();
    let mut seq = 0u64;
    let mut history = History::new();
    let mut now = 0u64;
    for round in 0..ops_per_client {
        for i in 0..n {
            let id = ClientId::new(i as u32);
            let (submit, op_id) = if i == 0 {
                let value = Value::unique(i as u32, round);
                let op = history.begin_write(id, value.clone(), now);
                (cs[i].begin_write(value).unwrap(), op)
            } else {
                let target = ClientId::new(0);
                let op = history.begin_read(id, target, now);
                (cs[i].begin_read(target).unwrap(), op)
            };
            now += 1;
            records.push((
                seq,
                LogRecord::Submit {
                    from: id,
                    msg: submit.clone(),
                },
            ));
            seq += 1;
            let replies = server.on_submit(id, submit);
            let (_, reply) = replies.into_iter().find(|(to, _)| *to == id).unwrap();
            let (commit, completion) = cs[i].handle_reply(reply).unwrap();
            let commit = commit.expect("immediate mode");
            match completion.kind {
                faust_types::OpKind::Write => {
                    history.complete_write(op_id, now, Some(completion.timestamp));
                }
                faust_types::OpKind::Read => {
                    history.complete_read(
                        op_id,
                        now,
                        completion.read_value.clone().unwrap_or(None),
                        Some(completion.timestamp),
                    );
                }
            }
            now += 1;
            records.push((
                seq,
                LogRecord::Commit {
                    from: id,
                    msg: commit.clone(),
                },
            ));
            seq += 1;
            server.on_commit(id, commit);
        }
    }
    export_records(n, SigScheme::Hmac, None, records, Some(history))
}

#[test]
fn roundtrip_preserves_everything() {
    let session = honest_session(3);
    let bytes = session.encode();
    let decoded = SessionHistory::decode(&bytes).expect("clean container decodes");
    assert_eq!(decoded.n, session.n);
    assert_eq!(decoded.scheme, session.scheme);
    assert_eq!(decoded.base_seq, session.base_seq);
    assert_eq!(decoded.records, session.records);
    assert_eq!(decoded.claimed_chain, session.claimed_chain);
    assert_eq!(decoded.claimed_proofs, session.claimed_proofs);
    let original = session.client_history.as_ref().unwrap();
    let roundtripped = decoded.client_history.as_ref().unwrap();
    assert_eq!(roundtripped.ops(), original.ops());
    // Re-encoding the decoded history is byte-identical (canonical form).
    assert_eq!(decoded.encode(), bytes);
}

#[test]
fn write_read_roundtrip_on_disk() {
    let session = honest_session(2);
    let dir = faust_store::testutil::scratch_dir("audit-container-rt");
    let path = dir.join("session.fausthis");
    session.write_to(&path).expect("write container");
    let back = SessionHistory::read_from(&path).expect("read container");
    assert_eq!(back.records, session.records);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_preamble_is_typed() {
    let bytes = honest_session(1).encode();
    assert_eq!(
        SessionHistory::decode(&bytes[..7]),
        Err(HistoryFileError::TruncatedPreamble { len: 7 })
    );
    assert_eq!(
        SessionHistory::decode(&[]),
        Err(HistoryFileError::TruncatedPreamble { len: 0 })
    );
}

#[test]
fn bad_magic_is_typed() {
    let mut bytes = honest_session(1).encode();
    bytes[0] ^= 0x01;
    assert_eq!(
        SessionHistory::decode(&bytes),
        Err(HistoryFileError::BadMagic)
    );
}

#[test]
fn unsupported_version_is_typed() {
    let mut bytes = honest_session(1).encode();
    bytes[11] = 99;
    assert_eq!(
        SessionHistory::decode(&bytes),
        Err(HistoryFileError::UnsupportedVersion { version: 99 })
    );
}

#[test]
fn manifest_bit_flip_is_pinned_to_the_manifest() {
    let mut bytes = honest_session(1).encode();
    // First manifest byte lives right after the 12-byte preamble and the
    // 36-byte manifest frame header.
    bytes[48] ^= 0x80;
    assert_eq!(
        SessionHistory::decode(&bytes),
        Err(HistoryFileError::ManifestChecksum { offset: 48 })
    );
}

#[test]
fn record_region_flips_are_pinned_to_the_record() {
    let session = honest_session(2);
    let clean = session.encode();
    // Locate the records section: everything the manifest says. Rather
    // than re-parse by hand, find the first record's frame by scanning
    // for its known payload prefix (seq 0 = 8 zero bytes after the
    // 36-byte frame header is fragile; instead use decode offsets from
    // the typed errors themselves).
    // Flip one byte at a time over the whole file; every failure inside
    // the records section must name a record index and offset.
    let mut record_errors = 0;
    for pos in 0..clean.len() {
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x40;
        match SessionHistory::decode(&bytes) {
            Err(
                HistoryFileError::RecordChecksum { index, offset }
                | HistoryFileError::RecordCorrupt { index, offset, .. }
                | HistoryFileError::RecordTorn { index, offset }
                | HistoryFileError::ImplausibleRecordLength { index, offset, .. }
                | HistoryFileError::RecordSequence { index, offset, .. },
            ) => {
                record_errors += 1;
                // The named offset is the frame of the record the flip
                // landed in (or the one it derailed); it must not point
                // past the flip.
                assert!(offset <= pos, "offset {offset} past flip at {pos}");
                assert!(index < session.records.len() as u64 + 1);
            }
            Err(_) => {}
            Ok(_) => panic!("flip at byte {pos} went undetected"),
        }
    }
    // A healthy share of the file is record bytes; the sweep must have
    // exercised the per-record path many times.
    assert!(record_errors > 100, "only {record_errors} record errors");
}

#[test]
fn every_single_byte_flip_is_rejected() {
    let clean = honest_session(1).encode();
    for pos in 0..clean.len() {
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x01;
        assert!(
            SessionHistory::decode(&bytes).is_err(),
            "flip at byte {pos}/{} went undetected",
            clean.len()
        );
    }
}

#[test]
fn every_truncation_is_rejected() {
    let clean = honest_session(1).encode();
    for len in 0..clean.len() {
        assert!(
            SessionHistory::decode(&clean[..len]).is_err(),
            "truncation to {len}/{} went undetected",
            clean.len()
        );
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = honest_session(1).encode();
    let offset = bytes.len();
    bytes.push(0);
    assert_eq!(
        SessionHistory::decode(&bytes),
        Err(HistoryFileError::TrailingBytes { offset })
    );
}

#[test]
fn section_truncation_names_the_section() {
    let session = honest_session(1);
    let bytes = session.encode();
    // Drop the final byte: the client-history section (last) is torn.
    match SessionHistory::decode(&bytes[..bytes.len() - 1]) {
        Err(HistoryFileError::SectionTruncated { section, .. }) => {
            assert_eq!(section, Section::ClientHistory);
        }
        other => panic!("expected SectionTruncated, got {other:?}"),
    }
}

#[test]
fn dimension_mismatch_is_rejected() {
    let mut session = honest_session(1);
    session.claimed_chain.pop();
    let bytes = session.encode();
    match SessionHistory::decode(&bytes) {
        Err(HistoryFileError::DimensionMismatch {
            expected, found, ..
        }) => {
            assert_eq!(expected, 2);
            assert_eq!(found, 1);
        }
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
}

#[test]
fn renumbered_records_are_rejected() {
    let mut session = honest_session(1);
    // Give the last record a gapped sequence number; the container
    // requires consecutive sequences from base_seq.
    let last = session.records.len() - 1;
    session.records[last].0 += 5;
    let bytes = session.encode();
    match SessionHistory::decode(&bytes) {
        Err(HistoryFileError::RecordSequence {
            index,
            expected,
            found,
            ..
        }) => {
            assert_eq!(index, last as u64);
            assert_eq!(expected, last as u64);
            assert_eq!(found, last as u64 + 5);
        }
        other => panic!("expected RecordSequence, got {other:?}"),
    }
}
