//! E10 (part 1): raw cryptographic costs — hashing, MACs, signatures,
//! digest chains. These dominate USTOR's per-operation CPU cost.
//!
//! The signature sections compare the two schemes of
//! `docs/trust-model.md`: shared-key HMAC (fast, unsound ingress) vs
//! in-tree Ed25519 (public-key, sound ingress), per message and batched.

use faust_bench::timing::{bench, bench_quiet, bench_throughput, report_speedup, section};
use faust_crypto::chain::chain_extend;
use faust_crypto::hmac::{hmac_sha256, PreparedHmac};
use faust_crypto::sha256::sha256;
use faust_crypto::sha512::sha512;
use faust_crypto::sig::{KeySet, SigContext, SigScheme, Signer, Verifier, VerifyItem};
use std::hint::black_box;

fn main() {
    section("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xAB; size];
        bench_throughput(&format!("sha256/{size}B"), size, || {
            black_box(sha256(black_box(&data)));
        });
    }

    section("hmac_sha256");
    for size in [64usize, 1024] {
        let data = vec![0xCD; size];
        bench_throughput(&format!("hmac_sha256/{size}B"), size, || {
            black_box(hmac_sha256(b"bench key", black_box(&data)));
        });
    }
    let prepared = PreparedHmac::new(b"bench key");
    for size in [64usize, 1024] {
        let data = vec![0xCD; size];
        bench_throughput(&format!("hmac_sha256_prepared/{size}B"), size, || {
            black_box(prepared.mac(&[black_box(&data)]));
        });
    }

    section("sha512");
    for size in [64usize, 1024] {
        let data = vec![0xAB; size];
        bench_throughput(&format!("sha512/{size}B"), size, || {
            black_box(sha512(black_box(&data)));
        });
    }

    section("signatures (per message, both schemes)");
    let msg = vec![0xEF; 128];
    for (label, scheme) in [("hmac", SigScheme::Hmac), ("ed25519", SigScheme::Ed25519)] {
        let keys = KeySet::generate_with(scheme, 4, b"bench");
        let signer = keys.keypair(0).unwrap();
        let registry = keys.registry();
        let sig = signer.sign(SigContext::Commit, &msg);
        bench(&format!("{label}_sign_128B"), || {
            black_box(signer.sign(SigContext::Commit, black_box(&msg)));
        });
        bench(&format!("{label}_verify_128B"), || {
            black_box(registry.verify(0, SigContext::Commit, black_box(&msg), &sig));
        });
    }

    section("batched verification: per-message vs one batch call");
    // The server-engine ingress workload: many short messages from a few
    // signers. HMAC amortizes the per-signer key schedule; Ed25519 runs
    // one multi-scalar batch equation that shares all point doublings.
    for (label, scheme) in [("hmac", SigScheme::Hmac), ("ed25519", SigScheme::Ed25519)] {
        for batch_size in [16usize, 64] {
            let n = 4;
            let keys = KeySet::generate_with(scheme, n, b"bench-batch");
            let registry = keys.registry();
            let items: Vec<VerifyItem> = (0..batch_size)
                .map(|k| {
                    let signer_idx = (k % n) as u32;
                    let message = format!("op {k} payload {batch_size}").into_bytes();
                    let sig = keys
                        .keypair(signer_idx)
                        .unwrap()
                        .sign(SigContext::Submit, &message);
                    VerifyItem {
                        signer: signer_idx,
                        context: SigContext::Submit,
                        message,
                        sig,
                    }
                })
                .collect();
            let per_message = bench_quiet(&format!("{label}_per_message/{batch_size}"), || {
                for item in &items {
                    assert!(registry.verify(
                        item.signer,
                        item.context,
                        black_box(&item.message),
                        &item.sig
                    ));
                }
            });
            let batched = bench_quiet(&format!("{label}_batched/{batch_size}"), || {
                let verdicts = registry.verify_batch(black_box(&items));
                assert!(verdicts.iter().all(|&v| v));
            });
            let speedup = report_speedup(&per_message, &batched);
            assert!(
                speedup > 1.0,
                "{label} batched verification must beat per-message ({speedup:.2}x)"
            );
        }
    }

    section("digest chains");
    let d = chain_extend(None, 0);
    bench("chain_extend", || {
        black_box(chain_extend(black_box(Some(d)), black_box(3)));
    });
}
