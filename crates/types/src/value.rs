//! Register values.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An opaque register value from the paper's domain `X`.
///
/// Values are byte strings; cloning is cheap ([`Bytes`] is reference
/// counted), which matters because the server and simulator pass values
/// around freely. The paper's initial register content `⊥ ∉ X` is
/// represented as `Option<Value>::None` wherever it can occur.
///
/// # Example
///
/// ```
/// use faust_types::Value;
/// let v = Value::from_static(b"document rev 1");
/// assert_eq!(v.as_bytes(), b"document rev 1");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Value(Bytes);

impl Value {
    /// Creates a value from owned bytes.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Value(bytes.into())
    }

    /// Creates a value from a static byte string without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Value(Bytes::from_static(bytes))
    }

    /// A small helper for tests and workloads: encodes `(client, seq)` so
    /// that every generated value is unique, as the paper assumes.
    pub fn unique(client: u32, seq: u64) -> Self {
        let mut v = Vec::with_capacity(12);
        v.extend_from_slice(&client.to_be_bytes());
        v.extend_from_slice(&seq.to_be_bytes());
        Value(Bytes::from(v))
    }

    /// The value's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty (zero-length — still a real value,
    /// distinct from the register's initial `⊥`).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Ok(s) = std::str::from_utf8(&self.0) {
            write!(f, "Value({s:?})")
        } else {
            write!(f, "Value(0x{})", hex_prefix(&self.0))
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Ok(s) = std::str::from_utf8(&self.0) {
            f.write_str(s)
        } else {
            write!(f, "0x{}", hex_prefix(&self.0))
        }
    }
}

fn hex_prefix(bytes: &[u8]) -> String {
    bytes.iter().take(8).map(|b| format!("{b:02x}")).collect()
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value(Bytes::from(v))
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_values_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in 0..10 {
            for s in 0..10 {
                assert!(seen.insert(Value::unique(c, s)));
            }
        }
    }

    #[test]
    fn debug_shows_utf8_when_possible() {
        assert_eq!(format!("{:?}", Value::from("hi")), "Value(\"hi\")");
    }

    #[test]
    fn display_falls_back_to_hex() {
        let v = Value::new(vec![0xff, 0x00]);
        assert_eq!(v.to_string(), "0xff00");
    }

    #[test]
    fn empty_value_is_not_bottom() {
        let v = Value::new(Vec::new());
        assert!(v.is_empty());
        assert_eq!(Some(v.clone()), Some(v)); // Some(empty) ≠ None (⊥)
    }
}
