//! Client identifiers and operation timestamps.

use std::fmt;

/// Timestamp of an operation: the value `t` a client places in its SUBMIT
/// message, drawn from its own monotone counter (`V_i[i] + 1`).
pub type Timestamp = u64;

/// Identifies one of the `n` clients, zero-based.
///
/// The paper writes `C_1 … C_n`; this implementation numbers clients
/// `0 … n-1`. Because the functionality is `n` single-writer registers with
/// `X_i` written only by `C_i`, a `ClientId` doubles as the identifier of
/// that client's register.
///
/// # Example
///
/// ```
/// use faust_types::ClientId;
/// let c = ClientId::new(2);
/// assert_eq!(c.index(), 2);
/// assert_eq!(format!("{c}"), "C2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a client id from a zero-based index.
    pub const fn new(index: u32) -> Self {
        ClientId(index)
    }

    /// The zero-based index as `usize`, for indexing vectors of length `n`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` index (matches `faust_crypto::sig::ClientIndex`).
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Iterates over all client ids `0..n`.
    pub fn all(n: usize) -> impl Iterator<Item = ClientId> {
        (0..n as u32).map(ClientId)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl From<u32> for ClientId {
    fn from(v: u32) -> Self {
        ClientId(v)
    }
}

impl std::str::FromStr for ClientId {
    type Err = std::num::ParseIntError;

    /// Parses a zero-based index, with or without the display form's `C`
    /// prefix (`"2"` and `"C2"` both parse) — how operators name clients
    /// on the `faust` CLI.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.strip_prefix('C').unwrap_or(s);
        digits.parse::<u32>().map(ClientId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_enumerate_in_order() {
        let ids: Vec<_> = ClientId::all(3).collect();
        assert_eq!(
            ids,
            vec![ClientId::new(0), ClientId::new(1), ClientId::new(2)]
        );
    }

    #[test]
    fn display_matches_paper_numbering_style() {
        assert_eq!(ClientId::new(0).to_string(), "C0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ClientId::new(1) < ClientId::new(2));
    }

    #[test]
    fn parses_with_and_without_prefix() {
        assert_eq!("2".parse::<ClientId>().unwrap(), ClientId::new(2));
        assert_eq!("C7".parse::<ClientId>().unwrap(), ClientId::new(7));
        assert!("x".parse::<ClientId>().is_err());
    }
}
