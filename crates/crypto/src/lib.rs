//! From-scratch cryptographic substrate for the FAUST / USTOR protocols.
//!
//! The paper *Fail-Aware Untrusted Storage* (Cachin, Keidar, Shraer; DSN
//! 2009) assumes a collision-resistant hash function `H` and digital
//! signatures (`sign_i` / `verify_i`). This crate provides both, built from
//! first principles so the repository has no external cryptographic
//! dependencies:
//!
//! * [`sha256`] — a complete SHA-256 implementation with incremental
//!   hashing, verified against the NIST FIPS 180-4 test vectors.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), verified against the RFC 4231 test
//!   vectors.
//! * [`sig`] — the signature abstraction of the paper: per-client signing
//!   keys, a shared verifier registry, and domain-separated signature roles
//!   (`SUBMIT`, `DATA`, `COMMIT`, `PROOF`).
//! * [`chain`] — the digest chains `D(ω_1 … ω_m)` used by USTOR to commit to
//!   view histories (Section 5 of the paper).
//!
//! # Trust model of the signature scheme
//!
//! The default scheme is HMAC-based: signing and verifying use the same
//! per-client secret. The paper's requirements are (a) only `C_i` can
//! produce `sign_i`, (b) every client can verify any signature, and (c) the
//! untrusted server can forge nothing. Inside this repository the server is
//! an ordinary Rust value that is simply never handed key material — the
//! registry of verification keys is distributed to clients only at setup
//! ([`sig::KeySet`]). The [`sig::Signer`] / [`sig::Verifier`] traits allow a
//! real asymmetric scheme to be substituted without touching protocol code.
//!
//! # Example
//!
//! ```
//! use faust_crypto::sha256::sha256;
//! use faust_crypto::sig::{KeySet, SigContext, Signer, Verifier};
//!
//! let digest = sha256(b"hello world");
//! assert_eq!(digest.to_hex().len(), 64);
//!
//! let keys = KeySet::generate(3, b"example seed");
//! let alice = keys.keypair(0).expect("client 0 exists");
//! let sig = alice.sign(SigContext::Data, b"message");
//! let registry = keys.registry();
//! assert!(registry.verify(0, SigContext::Data, b"message", &sig));
//! assert!(!registry.verify(1, SigContext::Data, b"message", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod hmac;
pub mod sha256;
pub mod sig;

pub use chain::{chain_digest, chain_extend};
pub use hmac::PreparedHmac;
pub use sha256::{sha256, Digest, Sha256};
pub use sig::{
    KeySet, Keypair, SigContext, Signature, Signer, Verifier, VerifierRegistry, VerifyItem,
};
