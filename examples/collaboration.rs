//! The collaborative-editing scenario of Section 3 and Figure 2: Alice
//! and Bob work from Europe while Carlos (America) is asleep — driven
//! through the public [`faust::client::FaustHandle`] API.
//!
//! Alice completes her operation with timestamp 10 and receives the
//! event `stable_Alice([10, 8, 3])`: she is trivially consistent with
//! herself up to timestamp 10, consistent with Bob up to her operation
//! 8, and consistent with Carlos only up to her operation 3 — Carlos
//! went to sleep after reading her morning work. Alice cannot tell
//! whether Carlos is merely asleep or the server is hiding his
//! operations; when Carlos reconnects and reads again, all operations
//! become stable, because the server is in fact correct.
//!
//! Unlike the simulator variant this runs live (real threads, real
//! waits): each `wait` serializes one operation, so the exact Figure 2
//! cut is reproduced deterministically through the handle API alone.
//!
//! Run with: `cargo run --example collaboration`

use faust::client::{Event, FaustHandle, HandleConfig};
use faust::core::runtime::spawn_engine;
use faust::core::FaustConfig;
use faust::types::{ClientId, Value};
use faust::ustor::UstorServer;
use std::time::Duration;

const ALICE: ClientId = ClientId::new(0);
const BOB: ClientId = ClientId::new(1);
const CARLOS: ClientId = ClientId::new(2);

fn main() {
    let n = 3;
    let (transport, mut conns) = faust::net::channel::pair(n);
    let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);

    // Probes would reveal everything instantly; the day is scripted
    // through reads alone, exactly as in Figure 2.
    let config = HandleConfig {
        faust: FaustConfig {
            probe_period: u64::MAX / 2,
            dummy_reads: false,
            ..FaustConfig::default()
        },
        tick_interval: Duration::from_millis(2),
        ..HandleConfig::default()
    };
    let mk = |id: ClientId, conn| FaustHandle::new(id, n, b"figure-2", &config, Box::new(conn));
    let mut carlos = {
        let c = conns.remove(2);
        mk(CARLOS, c)
    };
    let mut bob = {
        let c = conns.remove(1);
        mk(BOB, c)
    };
    let mut alice = {
        let c = conns.remove(0);
        mk(ALICE, c)
    };
    let wait = Duration::from_secs(5);

    // Alice's morning edits: timestamps 1..=3.
    for rev in 1..=3u64 {
        let t = alice.write(Value::from(format!("alice rev {rev}").as_str()));
        alice.wait(t, wait).expect("write completes");
    }
    // Carlos reads rev 3 (importing Alice's version, which covers her
    // first three operations) and goes to sleep.
    let t = carlos.read(ALICE);
    carlos.wait(t, wait).expect("read completes");

    // t = 4: Alice sees Carlos's state — his version vouches for her
    // operations up to 3.
    let t = alice.read(CARLOS);
    alice.wait(t, wait).expect("read completes");

    // t = 5..8: afternoon edits.
    for rev in 4..=7u64 {
        let t = alice.write(Value::from(format!("alice rev {rev}").as_str()));
        alice.wait(t, wait).expect("write completes");
    }
    // Bob catches up with Alice's work right after her t=8.
    let t = bob.read(ALICE);
    bob.wait(t, wait).expect("read completes");

    // t = 9: Alice sees Bob's state (covering her ops up to 8).
    let t = alice.read(BOB);
    alice.wait(t, wait).expect("read completes");

    // t = 10: one more edit -> stable_Alice([10, 8, 3]).
    let t = alice.write(Value::from("alice rev 8"));
    alice.wait(t, wait).expect("write completes");

    println!("Alice's events for the working day:");
    let mut seen_fig2_cut = false;
    for (time, event) in alice.poll() {
        match event {
            Event::Completed { completion, .. } => {
                println!(
                    "  t={time:>5}  completed op with timestamp {}",
                    completion.timestamp
                );
            }
            Event::Stable { cut } => {
                println!("  t={time:>5}  stable_Alice({cut})");
                if cut.w == vec![10, 8, 3] {
                    seen_fig2_cut = true;
                    println!("           ^^^ the stability cut of Figure 2");
                }
            }
            Event::Violation { reason } => println!("  t={time:>5}  VIOLATION: {reason}"),
            Event::Disconnected { reason } => println!("  t={time:>5}  disconnected ({reason})"),
            Event::Reconnecting { attempt, .. } => {
                println!("  t={time:>5}  reconnecting (attempt {attempt})");
            }
            Event::Resumed => println!("  t={time:>5}  resumed"),
        }
    }
    assert!(
        seen_fig2_cut,
        "expected the exact Figure 2 cut [10,8,3]; got {}",
        alice.stability_cut()
    );

    // America wakes up: Carlos reads the day's work, Bob refreshes, and
    // Alice sees both — everything becomes stable at Alice.
    let t = carlos.read(ALICE);
    carlos.wait(t, wait).expect("read completes");
    let t = bob.read(ALICE);
    bob.wait(t, wait).expect("read completes");
    let t = alice.read(CARLOS);
    alice.wait(t, wait).expect("read completes");
    let t = alice.read(BOB);
    alice.wait(t, wait).expect("read completes");

    let final_cut = alice.stability_cut();
    assert!(
        final_cut.w.iter().all(|&w| w >= 10),
        "eventual stability after Carlos returns; got {final_cut}"
    );
    println!("\nfinal cut: stable_Alice({final_cut}) — all 10 operations stable");
    println!("(Carlos reconnected; the server was correct all along.)");

    for handle in [alice, bob, carlos] {
        assert!(handle.failure().is_none(), "server is correct");
        drop(handle);
    }
    engine.join().expect("engine thread");
}
