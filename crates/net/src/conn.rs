//! The client-side handle of a transport.

use faust_types::frame::frame_into;
use faust_types::{ClientId, UstorMsg};
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A TCP socket that is shut down (not merely closed) when the last
/// handle drops.
///
/// The reader thread keeps a `try_clone`d file descriptor, so just
/// dropping the writer would never send FIN — the peer would wait
/// forever. `shutdown` acts on the socket itself: the peer sees EOF and
/// the local reader thread's blocking `read` returns 0.
pub(crate) struct OwnedStream(pub(crate) TcpStream);

impl Drop for OwnedStream {
    fn drop(&mut self) {
        let _ = self.0.shutdown(Shutdown::Both);
    }
}

/// The write half of a client's TCP connection: the socket plus a reused
/// frame buffer, so every send is exactly one allocation-free `write_all`
/// (the sockets run `TCP_NODELAY`; the explicit single write is what
/// keeps a frame in one segment, not Nagle).
pub(crate) struct TcpWriter {
    pub(crate) stream: OwnedStream,
    buf: Vec<u8>,
}

impl TcpWriter {
    pub(crate) fn new(stream: TcpStream) -> Self {
        TcpWriter {
            stream: OwnedStream(stream),
            buf: Vec::with_capacity(1024),
        }
    }

    fn send(&mut self, msg: &UstorMsg) -> std::io::Result<()> {
        self.buf.clear();
        frame_into(&mut self.buf, msg);
        self.stream.0.write_all(&self.buf)
    }
}

/// Client side of a transport: a duplex connection to one server, however
/// the bytes travel. The mirror of [`crate::ServerTransport`]: the same
/// two concrete transports back both sides (in-process channels and
/// framed TCP), and anything driving a client session — `faust-core`'s
/// `FaustHandle`, the threaded runtimes, the CLI — programs against this
/// trait, so it runs over either unchanged.
///
/// [`ClientConn`] implements it for both built-in transports; custom
/// transports (an in-memory loopback in tests, a proxied stream) only
/// need these three methods.
pub trait ClientTransport: Send {
    /// The client this connection authenticates as (transport-level
    /// identification, not authentication — see [`crate::tcp`]).
    fn id(&self) -> ClientId;

    /// Sends one message to the server.
    ///
    /// # Errors
    ///
    /// [`TransportClosed`] if the server is no longer reachable.
    fn send(&self, msg: &UstorMsg) -> Result<(), TransportClosed>;

    /// Waits up to `timeout` for a message from the server; `Ok(None)` on
    /// timeout.
    ///
    /// # Errors
    ///
    /// [`TransportClosed`] when the server has hung up and every buffered
    /// message has been consumed.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<UstorMsg>, TransportClosed>;

    /// Blocks until the next message from the server.
    ///
    /// # Errors
    ///
    /// [`TransportClosed`] when the server has hung up and every buffered
    /// message has been consumed.
    fn recv(&self) -> Result<UstorMsg, TransportClosed> {
        loop {
            if let Some(msg) = self.recv_timeout(Duration::from_secs(3600))? {
                return Ok(msg);
            }
        }
    }
}

impl ClientTransport for ClientConn {
    fn id(&self) -> ClientId {
        ClientConn::id(self)
    }

    fn send(&self, msg: &UstorMsg) -> Result<(), TransportClosed> {
        ClientConn::send(self, msg)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<UstorMsg>, TransportClosed> {
        ClientConn::recv_timeout(self, timeout)
    }

    fn recv(&self) -> Result<UstorMsg, TransportClosed> {
        ClientConn::recv(self)
    }
}

/// The peer is gone: the server hung up, or the connection failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportClosed;

impl std::fmt::Display for TransportClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("transport closed")
    }
}

impl std::error::Error for TransportClosed {}

pub(crate) enum SenderInner {
    /// In-process channel to the server's shared inbox.
    Channel {
        id: ClientId,
        tx: Sender<(ClientId, UstorMsg)>,
    },
    /// Framed writes on a TCP socket (shared with nobody but clones of
    /// this sender).
    Tcp { writer: Arc<Mutex<TcpWriter>> },
}

/// The sending half of a [`ClientConn`]; clonable so a runtime can keep a
/// handle while a forwarder thread owns the receiving half.
pub struct ConnSender(pub(crate) SenderInner);

impl Clone for ConnSender {
    fn clone(&self) -> Self {
        ConnSender(match &self.0 {
            SenderInner::Channel { id, tx } => SenderInner::Channel {
                id: *id,
                tx: tx.clone(),
            },
            SenderInner::Tcp { writer } => SenderInner::Tcp {
                writer: Arc::clone(writer),
            },
        })
    }
}

impl ConnSender {
    /// Sends one message to the server.
    ///
    /// # Errors
    ///
    /// [`TransportClosed`] if the server is no longer reachable.
    pub fn send(&self, msg: &UstorMsg) -> Result<(), TransportClosed> {
        match &self.0 {
            SenderInner::Channel { id, tx } => {
                tx.send((*id, msg.clone())).map_err(|_| TransportClosed)
            }
            SenderInner::Tcp { writer } => {
                let mut guard = writer.lock().map_err(|_| TransportClosed)?;
                guard.send(msg).map_err(|_| TransportClosed)
            }
        }
    }
}

/// A client's duplex connection to the server, independent of the
/// transport behind it.
///
/// Construct one with [`crate::channel::pair`] or [`crate::tcp::connect`].
/// Incoming messages always arrive through an in-process queue (the TCP
/// implementation pumps its socket from a reader thread), so receiving
/// with a timeout is uniformly cheap.
pub struct ClientConn {
    pub(crate) id: ClientId,
    pub(crate) tx: ConnSender,
    pub(crate) rx: Receiver<UstorMsg>,
}

impl ClientConn {
    /// The client this connection belongs to.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Sends one message to the server.
    ///
    /// # Errors
    ///
    /// [`TransportClosed`] if the server is no longer reachable.
    pub fn send(&self, msg: &UstorMsg) -> Result<(), TransportClosed> {
        self.tx.send(msg)
    }

    /// Blocks until the next message from the server.
    ///
    /// # Errors
    ///
    /// [`TransportClosed`] when the server has hung up and the queue is
    /// drained.
    pub fn recv(&self) -> Result<UstorMsg, TransportClosed> {
        self.rx.recv().map_err(|_| TransportClosed)
    }

    /// Waits up to `timeout` for a message; `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// [`TransportClosed`] when the server has hung up and the queue is
    /// drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<UstorMsg>, TransportClosed> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => Ok(Some(msg)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportClosed),
        }
    }

    /// Splits into the clonable sender and the raw receiver, for runtimes
    /// that pump incoming messages from a dedicated thread.
    pub fn split(self) -> (ConnSender, Receiver<UstorMsg>) {
        (self.tx, self.rx)
    }
}
