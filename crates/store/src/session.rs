//! The client-session file: durable storage for a resumable session's
//! state, in the same single-file container idiom as the snapshot:
//!
//! ```text
//!   "FAUSTSES" | version: u32 | payload_len: u32 | sha256(payload): 32 B | payload
//! ```
//!
//! The payload is opaque to this module — `faust-core` encodes its
//! `SessionState` there (this crate cannot name that type without a
//! dependency cycle, and the container is useful for any client-side
//! state). Writes go to a temp file that is synced and renamed into
//! place, so a crash mid-save leaves the previous session file
//! untouched; reads validate magic, version, length, and checksum before
//! returning a single byte of payload.
//!
//! Note what the checksum does **not** protect against: an old-but-valid
//! file. A session file restored after further operations ran is
//! internally consistent yet *stale*, and only the protocol itself can
//! detect that — the FAUST client's stale guard flags the mismatch
//! against the live server as `Fault::StaleClientState`.

use crate::log::sync_dir;
use crate::StoreError;
use faust_crypto::sha256::sha256;
use faust_types::Wire;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Magic string opening every session file.
pub const SESSION_MAGIC: &[u8; 8] = b"FAUSTSES";
/// Session-file format version.
pub const SESSION_VERSION: u32 = 1;

/// Atomically writes `payload` as the session file at `path`.
///
/// With `sync`, the bytes are fsynced before the rename and the parent
/// directory after it, so the rename is durable; without, both syncs are
/// skipped.
///
/// # Errors
///
/// Propagates file-system errors; a failed write never disturbs an
/// existing session file.
pub fn write_session_file(path: &Path, payload: &[u8], sync: bool) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(8 + 4 + 4 + 32 + payload.len());
    bytes.extend_from_slice(SESSION_MAGIC);
    SESSION_VERSION.encode_into(&mut bytes);
    (payload.len() as u32).encode_into(&mut bytes);
    bytes.extend_from_slice(sha256(payload).as_bytes());
    bytes.extend_from_slice(payload);

    let tmp = path.with_extension("tmp");
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)?;
    file.write_all(&bytes)?;
    if sync {
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if sync {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            sync_dir(dir)?;
        }
    }
    Ok(())
}

/// Reads and fully validates the session file at `path`, returning its
/// payload; `Ok(None)` if no file exists.
///
/// # Errors
///
/// Structured [`StoreError`]s for a bad magic, unknown version,
/// truncated header or payload, or checksum mismatch — a corrupt
/// session file is never partially loaded.
pub fn read_session_file(path: &Path) -> Result<Option<Vec<u8>>, StoreError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => f.read_to_end(&mut bytes)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    const HEADER: usize = 8 + 4 + 4 + 32;
    if bytes.len() < HEADER {
        return Err(StoreError::TruncatedHeader { file: "session" });
    }
    if &bytes[..8] != SESSION_MAGIC {
        return Err(StoreError::BadMagic { file: "session" });
    }
    let mut rest = &bytes[8..16];
    let version = u32::decode_from(&mut rest).expect("sized above");
    if version != SESSION_VERSION {
        return Err(StoreError::UnsupportedVersion {
            file: "session",
            version,
        });
    }
    let payload_len = u32::decode_from(&mut rest).expect("sized above") as usize;
    let digest = &bytes[16..HEADER];
    let Some(payload) = bytes.get(HEADER..HEADER + payload_len) else {
        // File ends inside the declared payload.
        return Err(StoreError::SessionCorrupt(
            faust_types::WireError::Truncated,
        ));
    };
    if bytes.len() > HEADER + payload_len {
        return Err(StoreError::SessionCorrupt(
            faust_types::WireError::TrailingBytes(bytes.len() - HEADER - payload_len),
        ));
    }
    if sha256(payload).as_bytes() != digest {
        return Err(StoreError::SessionChecksum);
    }
    Ok(Some(payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_dir;

    #[test]
    fn roundtrip_and_absence() {
        let dir = scratch_dir("session-roundtrip");
        let path = dir.join("alice.session");
        assert_eq!(read_session_file(&path).unwrap(), None);
        let payload = b"resumable state bytes".to_vec();
        write_session_file(&path, &payload, true).unwrap();
        assert_eq!(read_session_file(&path).unwrap(), Some(payload));
        assert!(!dir.join("alice.tmp").exists(), "temp file cleaned up");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_replaces_atomically() {
        let dir = scratch_dir("session-overwrite");
        let path = dir.join("s.session");
        write_session_file(&path, b"old", false).unwrap();
        write_session_file(&path, b"new", false).unwrap();
        assert_eq!(read_session_file(&path).unwrap().unwrap(), b"new");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_structured_not_a_panic() {
        let dir = scratch_dir("session-corrupt");
        let path = dir.join("s.session");
        write_session_file(&path, b"some session payload", false).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip a payload byte: checksum mismatch.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_session_file(&path).unwrap_err(),
            StoreError::SessionChecksum
        ));

        // Truncate inside the payload.
        std::fs::write(&path, &good[..good.len() - 4]).unwrap();
        assert!(matches!(
            read_session_file(&path).unwrap_err(),
            StoreError::SessionCorrupt(_)
        ));

        // Truncate inside the header.
        std::fs::write(&path, &good[..10]).unwrap();
        assert!(matches!(
            read_session_file(&path).unwrap_err(),
            StoreError::TruncatedHeader { file: "session" }
        ));

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_session_file(&path).unwrap_err(),
            StoreError::BadMagic { file: "session" }
        ));

        // Unknown version.
        let mut bad = good.clone();
        bad[8] = 0xEE;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_session_file(&path).unwrap_err(),
            StoreError::UnsupportedVersion {
                file: "session",
                ..
            }
        ));

        // Trailing garbage after the payload.
        let mut bad = good.clone();
        bad.push(0x00);
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_session_file(&path).unwrap_err(),
            StoreError::SessionCorrupt(faust_types::WireError::TrailingBytes(1))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
